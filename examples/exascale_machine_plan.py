#!/usr/bin/env python3
"""Plan a 100,000-node exascale machine: performance, power, reliability.

The system architect's checklist, end to end:

1. Does the node design reach 1 exaflop within 20 MW? (Fig. 14)
2. What do the power optimizations buy at machine scale? (Figs. 12-13)
3. Does the machine meet the one-intervention-per-week RAS target, and
   what protection stack gets closest? (Section II-A5)

Run:
    python examples/exascale_machine_plan.py
"""

from repro import (
    ALL_OPTIMIZATIONS,
    EHPConfig,
    ExascaleSystem,
    NodeModel,
    PAPER_BEST_MEAN,
    apply_optimizations,
    get_application,
)
from repro.ras import Chipkill, RmtCostModel, SECDED, SystemReliability
from repro.util.tables import TextTable


def compute_target() -> None:
    print("=== 1. The exaflop target (Fig. 14) ===")
    system = ExascaleSystem(n_nodes=100_000)
    maxflops = get_application("MaxFlops")
    table = TextTable(
        ["CUs/node", "Exaflops", "Machine MW", "Node TF", "Node W"],
        float_format="{:.2f}",
    )
    for n_cus in (192, 224, 256, 288, 320):
        est = system.estimate(
            maxflops, EHPConfig(n_cus=n_cus, gpu_freq=1e9, bandwidth=1e12)
        )
        table.add_row(
            [n_cus, est.exaflops, est.machine_power_mw,
             est.node_teraflops, est.node_power_w]
        )
    print(table.render())
    est = system.estimate(
        maxflops, EHPConfig(n_cus=320, gpu_freq=1e9, bandwidth=1e12)
    )
    print(
        f"  -> {est.exaflops:.2f} EF at {est.machine_power_mw:.1f} MW "
        "(peak-compute scenario): target met with over-provisioning "
        "for real application efficiency.\n"
    )


def optimization_payoff() -> None:
    print("=== 2. Machine-scale payoff of the power optimizations ===")
    base_model = NodeModel()
    opt_model = base_model.with_power_params(
        apply_optimizations(base_model.power_params, ALL_OPTIMIZATIONS)
    )
    apps = ("CoMD", "LULESH", "SNAP")
    n_nodes = 100_000
    for name in apps:
        profile = get_application(name)
        base = base_model.evaluate(
            profile, PAPER_BEST_MEAN,
            ext_fraction=profile.ext_memory_fraction,
        )
        opt = opt_model.evaluate(
            profile, PAPER_BEST_MEAN,
            ext_fraction=profile.ext_memory_fraction,
        )
        saved_mw = (
            (float(base.node_power) - float(opt.node_power)) * n_nodes / 1e6
        )
        print(
            f"  {name:8s}: {float(base.node_power):5.1f} W -> "
            f"{float(opt.node_power):5.1f} W per node  "
            f"({saved_mw:4.1f} MW across the machine)"
        )
    print()


def reliability_plan() -> None:
    print("=== 3. RAS: the one-week intervention target ===")
    stacks = [
        ("SEC-DED only", SECDED, None),
        ("chipkill", Chipkill, None),
        ("chipkill + GPU RMT", Chipkill, RmtCostModel()),
        (
            "chipkill + strong RMT",
            Chipkill,
            RmtCostModel(detection_coverage=0.999),
        ),
    ]
    table = TextTable(
        ["Protection", "Node FIT", "System MTTF (days)", "Meets week?"],
        float_format="{:.2f}",
    )
    for label, ecc, rmt in stacks:
        sr = SystemReliability(memory_ecc=ecc, rmt=rmt)
        table.add_row(
            [
                label,
                sr.node_fit(),
                sr.intervention_interval_days(),
                sr.meets_week_target(),
            ]
        )
    print(table.render())
    budget = SystemReliability().required_node_fit_for_week()
    print(
        f"  The week target implies a budget of ~{budget:.0f} FIT per "
        "node; even the strongest stack modeled here falls short — the "
        "open resiliency challenge the paper's Section VI calls out.\n"
    )
    rmt = RmtCostModel()
    for util in (0.45, 0.9):
        print(
            f"  RMT cost at GPU utilization {util:.0%}: "
            f"{rmt.slowdown(util):.2f}x runtime, "
            f"+{rmt.energy_overhead(util):.0%} dynamic energy"
        )


def main() -> None:
    compute_target()
    optimization_payoff()
    reliability_plan()


if __name__ == "__main__":
    main()
