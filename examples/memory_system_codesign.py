#!/usr/bin/env python3
"""Memory-system co-design for a capacity-hungry workload.

A supercomputer customer wants 1 TB per node but worries about power and
resilience. This walk-through uses the memory substrate to compare:

1. external-memory composition (DRAM-only vs DRAM+NVM hybrid) on node
   power for a memory-intensive workload (Fig. 9's question),
2. management policy (first-touch vs hotness migration) on the achieved
   in-package service fraction and thus end performance (Fig. 8's
   question),
3. chain redundancy (cross-links) under SerDes link failures,
4. NVM write endurance under the workload's write rate.

Run:
    python examples/memory_system_codesign.py
"""

import numpy as np

from repro import NodeModel, PAPER_BEST_MEAN, get_application
from repro.memsys import (
    ExternalMemoryNetwork,
    HotnessMigrationPolicy,
    FirstTouchPolicy,
    MemoryManager,
    NVMModule,
)
from repro.perfmodel.mlm import miss_rate_sweep
from repro.power import ExternalMemoryConfig


def external_composition(profile) -> None:
    print("=== 1. External-memory composition (Fig. 9's trade-off) ===")
    model = NodeModel()
    for name, cfg in (
        ("DRAM-only", ExternalMemoryConfig.dram_only()),
        ("DRAM+NVM hybrid", ExternalMemoryConfig.hybrid()),
    ):
        ev = model.with_ext_config(cfg).evaluate(
            profile, PAPER_BEST_MEAN,
            ext_fraction=profile.ext_memory_fraction,
        )
        p = ev.power
        print(
            f"  {name:16s} total={float(p.total):6.1f} W  "
            f"ext static={float(p.ext_memory_static + p.serdes_static):5.1f} W  "
            f"ext dynamic={float(p.ext_memory_dynamic + p.serdes_dynamic):5.1f} W"
        )
    print(
        f"  -> {profile.name}'s heavy external traffic "
        f"({profile.ext_memory_fraction:.0%}) makes NVM's access energy "
        "outweigh its static-power savings.\n"
    )


def management_policy(profile) -> None:
    print("=== 2. Placement policy drives the in-package hit fraction ===")
    rng = np.random.default_rng(1)
    page = 4096
    hot = rng.integers(0, 48, size=9000)
    cold = rng.integers(0, 4096, size=1000)
    epoch = np.concatenate([hot, cold]) * page
    warm = (np.arange(256, dtype=np.int64) + 100_000) * page

    for name, policy in (
        ("first-touch", FirstTouchPolicy()),
        ("hotness migration", HotnessMigrationPolicy()),
    ):
        mgr = MemoryManager(256 * page, policy)
        mgr.epoch(warm)
        fractions = mgr.run([epoch] * 4)
        steady_hit = fractions[-1]
        rel = miss_rate_sweep(
            profile, PAPER_BEST_MEAN.n_cus, PAPER_BEST_MEAN.gpu_freq,
            PAPER_BEST_MEAN.bandwidth,
            miss_rates=(0.0, 1.0 - steady_hit),
        )
        print(
            f"  {name:18s} steady in-package fraction={steady_hit:5.1%}  "
            f"-> {float(rel[1]):.0%} of ideal performance"
        )
    print()


def chain_redundancy() -> None:
    print("=== 3. SerDes link failures and cross-linked chains ===")
    for cross in (False, True):
        net = ExternalMemoryNetwork.dram_only(cross_linked=cross)
        net.fail_link(0, 0)  # the head link of chain 0 dies
        reachable = sum(
            net.is_reachable(0, pos)
            for pos in range(len(net.chains[0].modules))
        )
        total = len(net.chains[0].modules)
        label = "cross-linked" if cross else "plain chains"
        print(f"  {label:14s}: {reachable}/{total} of chain 0's modules "
              "remain reachable after a head-link failure")
    net = ExternalMemoryNetwork.dram_only(cross_linked=True)
    before = net.access_latency(0, 1)
    net.fail_link(0, 0)
    after = net.access_latency(0, 1)
    print(f"  rerouted access latency: {before * 1e9:.0f} ns -> "
          f"{after * 1e9:.0f} ns (longer path through the partner chain)\n")


def nvm_endurance(profile) -> None:
    print("=== 4. NVM write endurance under this workload ===")
    model = NodeModel()
    ev = model.evaluate(
        profile, PAPER_BEST_MEAN, ext_fraction=profile.ext_memory_fraction
    )
    write_rate = float(ev.metrics.ext_rate) * profile.write_fraction / 2.0
    module = NVMModule()
    years = module.lifetime_seconds(write_rate / 2) / (365 * 24 * 3600)
    print(
        f"  external write rate ~{write_rate / 1e9:.0f} GB/s split over "
        f"the hybrid's NVM modules -> ~{years:.1f} years to wear-out "
        "per module (with 90% wear-leveling efficiency)\n"
    )


def main() -> None:
    profile = get_application("SNAP")
    print(f"Workload: {profile.name} — {profile.description}\n")
    external_composition(profile)
    management_policy(profile)
    chain_redundancy()
    nvm_endurance(profile)


if __name__ == "__main__":
    main()
