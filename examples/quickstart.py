#!/usr/bin/env python3
"""Quickstart: evaluate the Table I applications on one EHP design point.

Builds the default calibrated node model, runs every catalog application
at the paper's best-mean configuration (320 CUs / 1000 MHz / 3 TB/s),
and prints achieved teraflops, node power, energy efficiency, and peak
in-package DRAM temperature.

Run:
    python examples/quickstart.py
"""

from repro import APPLICATIONS, NodeModel, PAPER_BEST_MEAN
from repro.thermal import ThermalModel
from repro.util.tables import TextTable


def main() -> None:
    model = NodeModel()
    thermal = ThermalModel()

    print(f"EHP design point: {PAPER_BEST_MEAN.label()} (CUs / MHz / TB/s)")
    print(f"Peak DP throughput: {PAPER_BEST_MEAN.peak_dp_flops / 1e12:.1f} TF")
    print(f"In-package DRAM:    {PAPER_BEST_MEAN.dram3d_capacity / 1e9:.0f} GB")
    print()

    table = TextTable(
        ["Application", "Category", "TFLOP/s", "Node W", "GF/s per W",
         "Peak DRAM C"],
        float_format="{:.1f}",
    )
    for profile in APPLICATIONS.values():
        result = model.evaluate(
            profile,
            PAPER_BEST_MEAN,
            ext_fraction=profile.ext_memory_fraction,
        )
        report = thermal.analyze(result.power)
        table.add_row(
            [
                profile.name,
                str(profile.category),
                float(result.performance) / 1e12,
                float(result.node_power),
                float(result.perf_per_watt) / 1e9,
                report.peak_dram_c,
            ]
        )
    print(table.render())
    print()
    print(
        "All applications fit the 160 W node budget and the 85 C DRAM "
        "refresh limit at this design point."
    )


if __name__ == "__main__":
    main()
