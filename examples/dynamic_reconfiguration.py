#!/usr/bin/env python3
"""Runtime reconfiguration across application phases (Section VI).

A real HPC job alternates phases: compute-heavy force kernels, then
memory-heavy neighbor updates. A statically fixed node configuration
leaves performance on the table; this example drives the
:class:`~repro.core.reconfig.PhaseReconfigurator` over a synthetic phase
sequence and compares it to (a) the static best-mean point and (b) the
oracle of Table II.

Run:
    python examples/dynamic_reconfiguration.py
"""

from repro import NodeModel, PAPER_BEST_MEAN, get_application
from repro.core.config import EHPConfig
from repro.core.reconfig import OracleReconfigurator, PhaseReconfigurator
from repro.util.tables import TextTable
from repro.util.units import MHZ, TB
from repro.workloads.kernels import KernelCategory


def main() -> None:
    model = NodeModel()

    # Palette: per-category configurations taken from the Table II
    # optima of representative applications.
    palette = {
        KernelCategory.COMPUTE_INTENSIVE: EHPConfig(
            n_cus=384, gpu_freq=925 * MHZ, bandwidth=1 * TB
        ),
        KernelCategory.BALANCED: EHPConfig(
            n_cus=224, gpu_freq=1300 * MHZ, bandwidth=6 * TB
        ),
        KernelCategory.MEMORY_INTENSIVE: EHPConfig(
            n_cus=256, gpu_freq=1100 * MHZ, bandwidth=4 * TB
        ),
    }

    # A molecular-dynamics-like job: force computation (compute), then
    # neighbour-list rebuild (memory), repeated; occasional analysis.
    phases = [
        get_application("MaxFlops"),
        get_application("LULESH"),
        get_application("CoMD"),
        get_application("MaxFlops"),
        get_application("LULESH"),
        get_application("SNAP"),
    ] * 3

    print("=== Phase-palette runtime policy vs static best-mean ===")
    for overhead_us in (0, 250, 2500):
        rc = PhaseReconfigurator(
            palette,
            fallback=PAPER_BEST_MEAN,
            model=model,
            switch_overhead=overhead_us * 1e-6,
        )
        out = rc.run(phases)
        print(
            f"  switch overhead {overhead_us:5d} us: "
            f"speedup {out['speedup']:.3f}x over static "
            f"({int(out['switches'])} reconfigurations)"
        )
    print()

    print("=== Oracle per-kernel selection (Table II) ===")
    oracle = OracleReconfigurator(model=model)
    unique = {p.name: p for p in phases}
    decisions = oracle.decide(list(unique.values()))
    table = TextTable(
        ["Phase kernel", "Oracle config", "Benefit over static (%)"],
        float_format="{:.1f}",
    )
    for d in decisions:
        table.add_row([d.application, d.config.label(), d.benefit_pct])
    print(table.render())
    print()
    print(
        "The palette policy captures part of the oracle headroom at "
        "realistic switch costs; the oracle numbers bound what any "
        "runtime can achieve."
    )


if __name__ == "__main__":
    main()
