#!/usr/bin/env python3
"""Design-space exploration: find the exascale node's sweet spot.

Reruns the paper's Section V exploration — 1617 (CU count, frequency,
bandwidth) configurations under the 160 W node budget — and reports:

* the statically fixed best-average configuration,
* each application's own best configuration and its benefit over the
  static point (Table II),
* how the optima shift when the Section V-E power optimizations free up
  budget headroom.

Run:
    python examples/design_space_exploration.py
"""

from repro import (
    ALL_OPTIMIZATIONS,
    APPLICATIONS,
    NodeModel,
    PAPER_BEST_MEAN,
    apply_optimizations,
    explore,
)
from repro.core.config import DesignSpace
from repro.util.tables import TextTable


def main() -> None:
    space = DesignSpace()
    model = NodeModel()
    apps = list(APPLICATIONS.values())

    print(f"Sweeping {space.size} configurations "
          f"({len(space.cu_counts)} CU counts x "
          f"{len(space.frequencies)} frequencies x "
          f"{len(space.bandwidths)} bandwidths), budget "
          f"{space.power_budget:.0f} W ...")
    base = explore(apps, space, model)
    print(f"Best-average configuration: {base.best_mean_config.label()}  "
          f"(paper: {PAPER_BEST_MEAN.label()})")
    print()

    table = TextTable(
        ["Application", "Best config", "Benefit over best-mean (%)"],
        float_format="{:.1f}",
    )
    for profile in apps:
        table.add_row(
            [
                profile.name,
                base.best_config(profile.name).label(),
                base.benefit_over_mean(profile.name),
            ]
        )
    print(table.render())
    print()

    # With the power optimizations enabled, the same budget admits more
    # aggressive configurations.
    opt_model = model.with_power_params(
        apply_optimizations(model.power_params, ALL_OPTIMIZATIONS)
    )
    opt = explore(apps, space, opt_model)
    print(
        "With all Section V-E power optimizations: best-average "
        f"configuration becomes {opt.best_mean_config.label()}"
    )
    moved = sum(
        1
        for p in apps
        if opt.best_config(p.name) != base.best_config(p.name)
    )
    print(f"{moved} of {len(apps)} per-application optima shift under the "
          "freed power headroom.")


if __name__ == "__main__":
    main()
