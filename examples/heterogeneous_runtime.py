#!/usr/bin/env python3
"""A heterogeneous runtime on the EHP: HSA offload, phase governance,
and resilient execution.

Walks one synthetic molecular-dynamics application through the software
stack the paper's node assumes:

1. **HSA task graphs** — the per-timestep DAG dispatched across the CPU
   and GPU agents, comparing unified-memory (HSA) dispatch against
   legacy copy-based offload (Section II-A1's programmability claim).
2. **Phase-aware power governance** — the DVFS/power-gating governor
   backs off the memory-bound phases within a 2% performance budget
   (Section VI's dynamic reconfiguration direction).
3. **Checkpointed execution** — the RAS stack's system MTTF sets the
   optimal checkpoint cadence and the machine's delivered efficiency.

Run:
    python examples/heterogeneous_runtime.py
"""

from repro import NodeModel, PAPER_BEST_MEAN
from repro.core.governor import DvfsGovernor
from repro.hsa import DagExecutor, OffloadCostModel, Task, TaskGraph
from repro.ras import Chipkill, RmtCostModel, SystemReliability
from repro.ras.checkpoint import CheckpointModel
from repro.workloads import synthetic_md_application


def timestep_graph() -> TaskGraph:
    """One MD timestep as a CPU/GPU task DAG (reference [13] style)."""
    g = TaskGraph()
    g.add(Task("decompose", "cpu", 0.4e-3))
    g.add(Task("forces", "gpu", 3.0e-3, bytes_touched=2.0e9,
               depends_on=("decompose",)))
    g.add(Task("neighbours", "gpu", 1.2e-3, bytes_touched=1.5e9,
               depends_on=("decompose",)))
    g.add(Task("integrate", "gpu", 0.8e-3, bytes_touched=0.8e9,
               depends_on=("forces", "neighbours")))
    g.add(Task("diagnostics", "cpu", 0.5e-3, depends_on=("integrate",)))
    return g


def hsa_vs_legacy() -> None:
    print("=== 1. HSA unified-memory dispatch vs legacy copies ===")
    graph = timestep_graph()
    cost = OffloadCostModel()
    for regime in ("legacy", "hsa"):
        result = DagExecutor(cost, regime=regime).run(graph)
        print(
            f"  {regime:6s}: timestep {result.makespan * 1e3:6.2f} ms, "
            f"GPU utilization {result.utilization('gpu'):5.1%}"
        )
    hsa = DagExecutor(cost, "hsa").run(graph).makespan
    legacy = DagExecutor(cost, "legacy").run(graph).makespan
    print(f"  -> {legacy / hsa:.1f}x faster timesteps from eliminating "
          "staging copies and driver round-trips.\n")


def governed_phases() -> None:
    print("=== 2. Phase-aware DVFS / power-gating governance ===")
    app = synthetic_md_application(iterations=4)
    governor = DvfsGovernor(max_perf_loss=0.02)
    print(f"  application: {app.name}, {len(app)} phases, mix "
          f"{ {k: round(v, 2) for k, v in app.category_mix().items()} }")
    out = governor.run_phases(
        [p.profile for p in app], PAPER_BEST_MEAN
    )
    print(
        f"  energy saving {out['energy_saving']:5.1%} at "
        f"{out['slowdown']:+.1%} runtime vs the fixed best-mean config"
    )
    blend = app.blended_profile()
    d = governor.decide(blend, PAPER_BEST_MEAN)
    print(
        f"  (a phase-blind governor on the blended profile would pick "
        f"{d.config.label()} for the whole run)\n"
    )


def checkpointed_execution() -> None:
    print("=== 3. Checkpoint cadence from the RAS stack ===")
    cm = CheckpointModel(checkpoint_bytes=96e9, io_bandwidth=50e9)
    for label, sr in (
        ("chipkill", SystemReliability(memory_ecc=Chipkill)),
        (
            "chipkill + RMT",
            SystemReliability(memory_ecc=Chipkill, rmt=RmtCostModel()),
        ),
    ):
        mttf_s = sr.system_mttf_hours() * 3600.0
        plan = cm.plan(mttf_s)
        print(
            f"  {label:15s}: system MTTF {mttf_s / 3600:5.1f} h -> "
            f"checkpoint every {plan.interval_s / 60:5.1f} min, "
            f"machine efficiency {plan.efficiency:5.1%}"
        )
    target = cm.required_mttf_for_efficiency(0.99)
    print(
        f"  99% efficiency needs a system MTTF of {target / 3600:.1f} h — "
        "the RAS budget behind the paper's week-scale target.\n"
    )


def main() -> None:
    hsa_vs_legacy()
    governed_phases()
    checkpointed_execution()


if __name__ == "__main__":
    main()
