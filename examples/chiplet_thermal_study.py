#!/usr/bin/env python3
"""Chiplet packaging and thermal feasibility study (Sections V-A, V-D).

Answers the packaging engineer's two questions:

1. How much performance does the chiplet decomposition cost versus a
   hypothetical monolithic die, and why so little? (Fig. 7)
2. Is stacking DRAM directly on hot GPU chiplets thermally viable with
   air cooling — and where are the hot spots? (Figs. 10-11)

Run:
    python examples/chiplet_thermal_study.py
"""

from repro import NodeModel, PAPER_BEST_MEAN, get_application
from repro.noc import EHPTopology, NocSimulator, SimMessage, route
from repro.noc.traffic import chiplet_traffic_summary
from repro.sim.apu_sim import ApuSimConfig, ApuSimulator
from repro.thermal import ThermalModel
from repro.util.tables import TextTable
from repro.workloads.traces import TraceGenerator


def chiplet_cost() -> None:
    print("=== 1a. Route anatomy: local vs remote DRAM access ===")
    topo = EHPTopology()
    local = route(topo, "gpu0", "dram0")
    remote = route(topo, "gpu0", "dram7")
    print(f"  local stack hop:  {' -> '.join(local.nodes)}  "
          f"({local.latency * 1e9:.0f} ns)")
    print(f"  remote access:    {' -> '.join(remote.nodes)}  "
          f"({remote.latency * 1e9:.0f} ns, {remote.tsv_hops} TSV hops)")
    print()

    print("=== 1b. Analytic chiplet-vs-monolithic comparison (Fig. 7) ===")
    table = TextTable(
        ["Application", "Out-of-chiplet traffic (%)", "Perf vs monolithic (%)"],
        float_format="{:.1f}",
    )
    cfg = PAPER_BEST_MEAN
    for name in ("XSBench", "SNAP", "CoMD"):
        s = chiplet_traffic_summary(
            get_application(name), cfg.n_cus, cfg.gpu_freq, cfg.bandwidth
        )
        table.add_row([name] + list(s.as_percentages()))
    print(table.render())
    print()

    print("=== 1c. Cross-check in the trace-driven simulator ===")
    profile = get_application("CoMD")
    trace = TraceGenerator(profile, seed=11).generate(8000)
    base = ApuSimulator(ApuSimConfig()).run(trace)
    chiplet = ApuSimulator(
        ApuSimConfig(chiplet_extra_latency=25e-9)
    ).run(trace)
    penalty = (1 - chiplet.flops_rate / base.flops_rate) * 100
    print(f"  CoMD simulated chiplet penalty: {penalty:.1f}% "
          "(wavefront parallelism hides the extra hops)\n")

    print("=== 1d. Interposer link contention under a traffic burst ===")
    sim = NocSimulator(link_bandwidth=256e9)
    burst = [SimMessage("gpu0", "dram7", 4096, 0.0) for _ in range(400)]
    res = sim.run(burst)
    print(f"  400 x 4 KB burst gpu0 -> dram7: mean latency "
          f"{res.mean_latency * 1e6:.1f} us, p99 "
          f"{res.p99_latency * 1e6:.1f} us, throughput "
          f"{res.throughput / 1e9:.0f} GB/s\n")


def thermal_feasibility() -> None:
    print("=== 2. Thermal feasibility of the 3D stack (Figs. 10-11) ===")
    model = NodeModel()
    thermal = ThermalModel()
    table = TextTable(
        ["Application", "Peak DRAM (C)", "Headroom to 85 C"],
        float_format="{:.1f}",
    )
    worst = None
    for name in ("MaxFlops", "CoMD-LJ", "SNAP"):
        profile = get_application(name)
        ev = model.evaluate(
            profile, PAPER_BEST_MEAN,
            ext_fraction=profile.ext_memory_fraction,
        )
        report = thermal.analyze(ev.power)
        table.add_row([name, report.peak_dram_c, report.dram_headroom_c])
        if worst is None or report.peak_dram_c > worst[1].peak_dram_c:
            worst = (name, report)
    print(table.render())
    assert worst is not None
    name, report = worst
    print(f"\n  Hottest case ({name}) bottom DRAM die heat map "
          "(columns over GPU clusters glow; CPU centre stays cool):")
    heat = report.dram_heatmap()
    lo, hi = heat.min(), heat.max()
    glyphs = " .:-=+*#%@"
    for row in heat[:: max(1, heat.shape[0] // 6)]:
        line = "".join(
            glyphs[int((v - lo) / (hi - lo + 1e-12) * (len(glyphs) - 1))]
            for v in row[:: max(1, heat.shape[1] // 64)]
        )
        print("   ", line)
    print(
        f"\n  Peak {report.peak_dram_c:.1f} C < 85 C: aggressive die "
        "stacking is feasible with high-end air cooling at 50 C ambient."
    )


def main() -> None:
    chiplet_cost()
    thermal_feasibility()


if __name__ == "__main__":
    main()
