"""Benchmark: Fig. 7: out-of-chiplet traffic and chiplet-vs-monolithic perf.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.chiplet_traffic import run_fig7


def test_bench_fig7(benchmark, show):
    """Fig. 7: out-of-chiplet traffic and chiplet-vs-monolithic perf."""
    result = benchmark(run_fig7)
    show(result)
