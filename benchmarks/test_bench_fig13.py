"""Benchmark: Fig. 13: perf/W gain of the optimized best-mean config.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.power_opts import run_fig13


def test_bench_fig13(benchmark, show):
    """Fig. 13: perf/W gain of the optimized best-mean config."""
    result = benchmark(run_fig13)
    show(result)
