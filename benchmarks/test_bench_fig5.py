"""Benchmark: Fig. 5: CoMD perf vs ops/byte at six bandwidths.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.kernel_sweeps import run_fig5


def test_bench_fig5(benchmark, show):
    """Fig. 5: CoMD perf vs ops/byte at six bandwidths."""
    result = benchmark(run_fig5)
    show(result)
