"""Benchmark: Fig. 10: peak in-package 3D-DRAM temperature.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.thermal_eval import run_fig10


def test_bench_fig10(benchmark, show):
    """Fig. 10: peak in-package 3D-DRAM temperature."""
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    show(result)
