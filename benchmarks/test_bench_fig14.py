"""Benchmark: Fig. 14: MaxFlops exaflops and MW vs CU count.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.exascale_target import run_fig14


def test_bench_fig14(benchmark, show):
    """Fig. 14: MaxFlops exaflops and MW vs CU count."""
    result = benchmark(run_fig14)
    show(result)
