"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (use ``-s`` to see them alongside the
timings). Run with::

    pytest benchmarks/ --benchmark-only

``--benchmark-json`` artifacts are rewritten compactly after the run
(see :mod:`repro.util.benchjson`): pytest-benchmark pretty-prints at
``indent=4`` (~45k lines), which swamps diffs for files we keep in the
repo. The rewrite adds a ``summary`` block with the headline stats.
"""

import pytest


@pytest.fixture
def show():
    """Print an ExperimentResult under the benchmark output."""

    def _show(result):
        print()
        print(result.render())
        return result

    return _show


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    """Compact the ``--benchmark-json`` artifact after pytest-benchmark
    writes it (its own sessionfinish is a hookwrapper that writes before
    yielding, so trylast here runs after the file exists)."""
    json_file = session.config.getoption("benchmark_json", None)
    path = getattr(json_file, "name", None)
    if not path:
        return
    from repro.util.benchjson import compact_file

    try:
        compact_file(path)
    except (OSError, ValueError):
        # A failed/aborted benchmark run may leave no (or partial) JSON;
        # compaction is cosmetic, never fail the session over it.
        pass
