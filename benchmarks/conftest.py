"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (use ``-s`` to see them alongside the
timings). Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def show():
    """Print an ExperimentResult under the benchmark output."""

    def _show(result):
        print()
        print(result.render())
        return result

    return _show
