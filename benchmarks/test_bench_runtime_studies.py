"""Benchmarks: runtime studies X3a-X3c (beyond the paper).

Governor decisions, checkpointed machine efficiency, and HSA dispatch
speedups.
"""

from repro.experiments.runtime_studies import (
    run_checkpoint_study,
    run_governor_study,
    run_hsa_dispatch_study,
)


def test_bench_governor_study(benchmark, show):
    """X3a: DVFS/power-gating governor at the best-mean configuration."""
    show(benchmark.pedantic(run_governor_study, rounds=1, iterations=1))


def test_bench_checkpoint_study(benchmark, show):
    """X3b: machine efficiency under optimal checkpointing."""
    show(benchmark(run_checkpoint_study))


def test_bench_hsa_dispatch_study(benchmark, show):
    """X3c: unified-memory vs copy-based dispatch."""
    show(benchmark(run_hsa_dispatch_study))
