"""Benchmarks for the fused whole-grid tensor evaluation (PR 6).

Times the fused ``NodeModel.evaluate_grid`` broadcast pass against the
retained per-profile ``evaluate_arrays`` oracle loop at Table-II scale,
plus the tensor-engine ``explore`` path the experiments actually use.
The >=10x ratio and argmax-identity assertions live in
``benchmarks/check_perf.py check_tensor_eval``.
"""

import numpy as np

from repro.core.config import DesignSpace
from repro.core.dse import explore
from repro.core.node import NodeModel
from repro.util import alloctune
from repro.workloads.catalog import application_names, get_application
from repro.workloads.kernels import ProfileBatch

alloctune.retain_freed_heap()


def _scaled_profiles(scales: int = 8):
    apps = [get_application(n) for n in application_names()]
    return [
        app.scaled_problem(float(2 ** k)).with_overrides(
            name=f"{app.name}/x{2 ** k}"
        )
        for app in apps
        for k in range(scales)
    ]


def test_bench_tensor_grid_64(benchmark):
    """Fused (64 profiles x 1617 points) broadcast pass."""
    model = NodeModel()
    space = DesignSpace()
    batch = ProfileBatch.from_profiles(_scaled_profiles())
    model.evaluate_grid(batch, space)  # page in scratch outside the timer
    benchmark(model.evaluate_grid, batch, space)


def test_bench_point_loop_64(benchmark):
    """The seed path: 64 per-profile evaluate_arrays sweeps."""
    model = NodeModel()
    space = DesignSpace()
    profiles = _scaled_profiles()
    cus, freqs, bws = space.grid_arrays()

    def loop():
        for profile in profiles:
            ev = model.evaluate_arrays(profile, cus, freqs, bws)
            np.asarray(ev.performance, dtype=float)
            power = np.asarray(ev.node_power, dtype=float)
            power <= space.power_budget

    benchmark.pedantic(loop, rounds=3, iterations=1)


def test_bench_explore_tensor(benchmark):
    """Full catalog DSE through the tensor engine (cache bypassed)."""
    profiles = [get_application(n) for n in application_names()]
    benchmark(explore, profiles, cache=False, engine="tensor")


def test_bench_explore_point(benchmark):
    """Full catalog DSE through the point oracle (cache bypassed)."""
    profiles = [get_application(n) for n in application_names()]
    benchmark.pedantic(
        lambda: explore(profiles, cache=False, engine="point"),
        rounds=3,
        iterations=1,
    )
