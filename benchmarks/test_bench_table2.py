"""Benchmark: Table II: dynamic reconfiguration benefit.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.reconfiguration import run_table2


def test_bench_table2(benchmark, show):
    """Table II: dynamic reconfiguration benefit."""
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    show(result)
