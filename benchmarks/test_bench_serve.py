"""Benchmarks for the serving layer (PR 7).

Times the three serve paths the check_serve gate constrains: the warm
coalescing service on a closed-loop burst, the naive
one-``pool.run``-per-request contrast, and the pool-less inline-cache
fast path. A pure :class:`~repro.serve.batcher.BatcherCore`
admit/plan/complete cycle is timed separately so state-machine
overhead is visible apart from evaluation cost. The >=5x and
p99/deadline assertions live in ``benchmarks/check_perf.py
check_serve``.
"""

import asyncio

from repro.core.node import NodeModel
from repro.perf.evalcache import EvalCache
from repro.perf.pool import ShardedPool
from repro.serve.batcher import BatcherCore, FixedPolicy
from repro.serve.bench import naive_baseline_rps, run_arrivals
from repro.serve.requests import OK
from repro.serve.service import EvalService
from repro.serve.workload import synthetic_arrivals

N_REQUESTS = 96


def test_bench_serve_warm_burst(benchmark):
    """Warm coalescing service: 96-request closed-loop burst."""
    model = NodeModel()
    cache = EvalCache()
    arrivals = synthetic_arrivals(0, N_REQUESTS, deadline_s=0.25)
    pool = ShardedPool(2)
    try:
        # Two passes outside the timer: seed caches, settle the pool.
        for _ in range(2):
            run_arrivals(arrivals, model=model, pool=pool, cache=cache)
        benchmark.pedantic(
            run_arrivals,
            args=(arrivals,),
            kwargs=dict(model=model, pool=pool, cache=cache),
            rounds=5,
            iterations=1,
        )
    finally:
        pool.shutdown()


def test_bench_serve_naive_baseline(benchmark):
    """The contrast case: one pool.run round-trip per request."""
    model = NodeModel()
    arrivals = synthetic_arrivals(0, N_REQUESTS, deadline_s=0.25)
    pool = ShardedPool(2)
    try:
        naive_baseline_rps(arrivals, pool, model)  # warm worker caches
        benchmark.pedantic(
            naive_baseline_rps,
            args=(arrivals, pool, model),
            rounds=3,
            iterations=1,
        )
    finally:
        pool.shutdown()


def test_bench_serve_inline_path(benchmark):
    """Pool-less service answering a warm burst entirely inline."""
    model = NodeModel()
    cache = EvalCache()
    arrivals = synthetic_arrivals(0, N_REQUESTS, deadline_s=0.25)
    run_arrivals(arrivals, model=model, pool=None, cache=cache)

    def burst():
        async def main():
            service = EvalService(model=model, pool=None, cache=cache)
            async with service:
                responses = await asyncio.gather(
                    *(service.submit(a.request) for a in arrivals)
                )
            assert all(r.status == OK for r in responses)

        asyncio.run(main())

    benchmark.pedantic(burst, rounds=5, iterations=1)


def test_bench_batcher_core_cycle(benchmark):
    """Pure state machine: admit 256, plan/complete/release them all."""
    policy = FixedPolicy(batch=16, est_request_s=0.0)

    def cycle():
        core = BatcherCore(policy, max_queue=512)
        now = 0.0
        for i in range(256):
            core.admit(("req", i), now, stream=f"s{i % 4}")
        while core.depth():
            planned = core.plan(now)
            now += 1e-3
            core.complete(
                planned.batch_id,
                {
                    t.seq: (OK, (("ans", t.seq), "coalesced"))
                    for t in planned.tickets
                },
                now,
            )
        outcomes = core.poll_outcomes()
        assert len(outcomes) == 256

    benchmark(cycle)
