"""Benchmark: Fig. 6: LULESH perf vs ops/byte at six bandwidths.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.kernel_sweeps import run_fig6


def test_bench_fig6(benchmark, show):
    """Fig. 6: LULESH perf vs ops/byte at six bandwidths."""
    result = benchmark(run_fig6)
    show(result)
