"""Benchmark: Fig. 9: ENA power, DRAM-only vs DRAM+NVM external memory.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.external_memory import run_fig9


def test_bench_fig9(benchmark, show):
    """Fig. 9: ENA power, DRAM-only vs DRAM+NVM external memory."""
    result = benchmark(run_fig9)
    show(result)
