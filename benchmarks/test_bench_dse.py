"""Benchmark: Section V: full design-space exploration.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.dse_summary import run_dse_summary


def test_bench_dse(benchmark, show):
    """Section V: full design-space exploration."""
    result = benchmark.pedantic(run_dse_summary, rounds=1, iterations=1)
    show(result)
