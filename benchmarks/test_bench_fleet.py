"""Benchmarks for the fleet layer (PR 8).

Times the three fleet sweep paths the check_fleet gate constrains: the
serial per-point estimate loop (the oracle and the contrast case), a
cold sharded pool run, and warm repeats on the reused pool. Measured
shard-scaling efficiency (cold 1-shard vs 2-shard wall clock) and the
deterministic assignment balance ride along in ``extra_info`` so the
compacted BENCH_pr8.json artifact records them per run. The >=5x,
bit-identity, and balance assertions live in ``benchmarks/check_perf.py
check_fleet``.
"""

import time

from repro.core.node import NodeModel
from repro.fleet.spec import synthetic_fleet
from repro.fleet.sweep import fleet_sweep, fleet_sweep_serial
from repro.perf.evalcache import clear_cache
from repro.perf.pool import ShardedPool

SPEC = synthetic_fleet(n_nodes=1000, n_groups=6, seed=0)
CUS = tuple(range(192, 385, 16))
MODEL = NodeModel()


def test_bench_fleet_serial_oracle(benchmark):
    """Serial per-point estimate loop over the whole fleet."""
    clear_cache()
    benchmark.pedantic(
        fleet_sweep_serial,
        args=(SPEC, CUS, MODEL),
        rounds=5,
        iterations=1,
    )


def test_bench_fleet_warm_pool(benchmark):
    """Warm repeats on a reused 2-shard pool (pure cache traffic)."""
    clear_cache()
    pool = ShardedPool(2)
    try:
        fleet_sweep(SPEC, CUS, MODEL, pool=pool)  # warm the workers
        benchmark.pedantic(
            fleet_sweep,
            args=(SPEC, CUS, MODEL),
            kwargs=dict(pool=pool),
            rounds=5,
            iterations=1,
        )
        benchmark.extra_info["shard_task_counts"] = (
            pool.last_shard_task_counts()
        )
        benchmark.extra_info["assignment_balance"] = (
            pool.assignment_balance()
        )
    finally:
        pool.shutdown()


def test_bench_fleet_cold_pool_scaling(benchmark):
    """Cold sharded run, plus measured 1-vs-2 shard scaling efficiency.

    The timed section is the 2-shard cold run; one cold 1-shard run is
    measured outside the timer and the wall-clock scaling efficiency
    ``t1 / (2 * t2)`` is recorded in ``extra_info`` (reported, not
    gated — CI wall clocks are noisy; the deterministic balance gate
    lives in check_fleet).
    """

    def cold_run(shards):
        clear_cache()
        with ShardedPool(shards) as pool:
            fleet_sweep(SPEC, CUS, MODEL, pool=pool)

    t0 = time.perf_counter()
    cold_run(1)
    t_one = time.perf_counter() - t0

    result = benchmark.pedantic(
        cold_run, args=(2,), rounds=3, iterations=1
    )
    del result
    t_two = benchmark.stats.stats.min
    benchmark.extra_info["cold_1shard_s"] = t_one
    benchmark.extra_info["scaling_efficiency_1_to_2"] = (
        t_one / (2.0 * t_two) if t_two > 0 else 0.0
    )
