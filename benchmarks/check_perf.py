#!/usr/bin/env python
"""Perf-regression gate for the PR-1 performance layer.

Measures the fast paths against seed-equivalent reference
implementations kept in-repo (the triple-loop assembly +
``spsolve``-per-call thermal path; the heap/dict/graph-object NoC loop
replicated below) and asserts the speedup ratios the layer promises:

* repeat ``ThermalGrid.solve`` >= 10x over re-factorizing every call,
* ``solve_many`` over 20 maps >= 15x over 20 sequential seed solves,
* a 100k-message NoC run >= 5x over the seed hot loop,
* the APU simulator's array engine >= 5x over the event-driven oracle
  on the default calibration trace,
* the memsys array engines (row buffer + DRAM-cache capacity sweep +
  page-migration epochs) >= 5x combined over the seed scalar references
  on the 50k-address miss-sensitivity stream (the manager's seed — the
  quadratic re-sort-per-eviction loop — is kept in-repo below, since
  the shipped scalar oracle now evicts via an incremental heap),
* a warm MemsysCache replay of that same sweep >= 5x over the cold run
  (the ROADMAP's cold-vs-warm evaluation-cache ratio),
* the always-on observability layer costs <= 5% on the APU simulator
  (instrumented run vs the same run under ``obs.metrics.disabled()``),
* a warm repeat DSE sweep on a reused ``ShardedPool`` >= 5x over the
  cold spawn-a-pool-per-call baseline, with zero cross-worker
  recomputation of warm cache keys and bit-identical results to the
  serial ``core.dse.explore`` (affinity and round-robin policies, and
  after a simulated worker death/restart),
* the fused whole-grid tensor evaluation
  (``NodeModel.evaluate_grid``) >= 10x over the seed per-profile
  ``evaluate_arrays`` loop on a full Table-II-scale sweep, with the
  DSE's ``best_mean_index``/``per_app_best_index`` selections
  bit-identical between the two engines,
* the serving layer: warm sustained throughput >= 5x the naive
  one-request-per-``pool.run`` baseline, p99 latency within the
  configured deadline with < 1% shed at the rated open-loop load, and
  every served response bit-identical to a direct serial evaluation,
* transient thermal stepping: amortized-factorization backward-Euler
  steps >= 10x the refactorize-per-step oracle on a Fig. 10-scale
  grid with an absolute steps/sec floor, the transient fixed point
  matching the steady-state ``solve`` within 1e-6 C, per-step
  factored-vs-oracle agreement within 1e-9 C, lockstep batched
  stepping bit-identical to per-scenario integration, and the
  closed-loop governor keeping the simulated DRAM stack under the
  85 C limit on a schedule whose uncontrolled replay exceeds it,

plus numerical agreement (1e-9) between fast and reference paths.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/check_perf.py [--quick]
        [--metrics-out obs/manifest.json] [--trace-out obs/trace.json]

``--metrics-out``/``--trace-out`` write the same run manifest / Chrome
trace-event JSON as ``python -m repro`` does, with one span per check.

Exits non-zero (with a report) if any ratio regresses, so future PRs
can use it as a trajectory check alongside::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only \
        --benchmark-json=BENCH_pr1.json

``--bench-summary BENCH_pr3.json`` prints the headline stats of such an
artifact (compact or legacy pretty format) and exits.
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import sys
import time

import numpy as np
from scipy.sparse.linalg import spsolve

from repro.memsys.dramcache import DramCache
from repro.memsys.manager import HotnessMigrationPolicy, MemoryManager
from repro.memsys.rowbuffer import RowBufferSim
from repro.noc.routing import route
from repro.noc.simulator import LinkStats, NocSimulator, SimMessage
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.perf.evalcache import MemsysCache
from repro.sim.apu_sim import ApuSimulator
from repro.thermal.grid import ThermalGrid
from repro.util.benchjson import load_summary
from repro.workloads.calibration import default_calibration_trace


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Seed-equivalent reference paths
# ----------------------------------------------------------------------
def seed_thermal_solve(grid: ThermalGrid, maps: np.ndarray) -> np.ndarray:
    """The seed behaviour: reuse the assembled matrix but factorize on
    every call (``spsolve``)."""
    if getattr(grid, "_seed_system", None) is None:
        grid._seed_system = grid._assemble_reference()
    matrix, b_amb = grid._seed_system
    rhs = maps.ravel() + b_amb * grid.stack.ambient_c
    return spsolve(matrix, rhs)


class SeedResortHotnessPolicy(HotnessMigrationPolicy):
    """The seed eviction loop: re-sort the candidate set per eviction.

    PR 5 replaced this with an incremental heap inside
    :class:`HotnessMigrationPolicy` (same victims, same (count, page)
    tie-break — equivalence is unit-tested); this subclass keeps the
    quadratic original as the benchmark reference. Being a subclass, it
    also forces ``MemoryManager.epoch_array`` onto the scalar fallback,
    so the "event" side of the memsys check runs the true seed path.
    """

    def place(self, access_counts, current, capacity_pages):
        from repro.memsys.manager import MemoryLevel, PagePlacement

        ranked = sorted(
            access_counts, key=lambda p: access_counts[p], reverse=True
        )
        want_in = set(ranked[:capacity_pages])
        placement = dict(current)
        for page in access_counts:
            placement.setdefault(page, MemoryLevel.EXTERNAL)
        to_promote = [
            p
            for p in ranked[:capacity_pages]
            if placement.get(p) is not MemoryLevel.IN_PACKAGE
        ]
        if self.migration_limit is not None:
            to_promote = to_promote[: self.migration_limit]
        resident = {
            p for p, lvl in placement.items() if lvl is MemoryLevel.IN_PACKAGE
        }
        migrated = 0
        for page in to_promote:
            if len(resident) >= capacity_pages:
                evictable = sorted(
                    (p for p in resident if p not in want_in),
                    key=lambda p: (access_counts.get(p, 0), p),
                )
                if not evictable:
                    break
                victim = evictable[0]
                placement[victim] = MemoryLevel.EXTERNAL
                resident.discard(victim)
            placement[page] = MemoryLevel.IN_PACKAGE
            resident.add(page)
            migrated += 1
        return PagePlacement(level_of_page=placement, migrated_pages=migrated)


def seed_noc_run(sim: NocSimulator, messages: list[SimMessage]):
    """The seed hot loop: a heap of message objects, per-hop
    ``frozenset`` keys, dict link stats and graph-edge lookups."""
    links: dict[frozenset, LinkStats] = {}
    counter = itertools.count()
    heap: list[tuple[float, int, SimMessage]] = []
    for m in messages:
        heapq.heappush(heap, (m.inject_time, next(counter), m))
    route_cache: dict[tuple[str, str], tuple[str, ...]] = {}
    latencies: list[float] = []
    makespan = 0.0
    while heap:
        now, _, msg = heapq.heappop(heap)
        key = (msg.src, msg.dst)
        if key not in route_cache:
            route_cache[key] = route(sim.topology, msg.src, msg.dst).nodes
        path = route_cache[key]
        t = now
        for a, b in zip(path, path[1:]):
            edge = sim.topology.graph.edges[a, b]
            link = links.setdefault(frozenset((a, b)), LinkStats())
            start = max(t, link.busy_until)
            serialize = msg.size_bytes / sim.link_bandwidth
            done = start + serialize + edge["latency"]
            link.busy_until = start + serialize
            link.bytes_carried += msg.size_bytes
            link.messages += 1
            t = done
        latencies.append(t - msg.inject_time)
        makespan = max(makespan, t)
    return latencies, makespan


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def check_thermal(quick: bool) -> list[str]:
    nx = ny = 66 if quick else 132
    repeats = 2 if quick else 3
    grid = ThermalGrid(66.0, 22.0, nx=nx, ny=ny)
    rng = np.random.default_rng(0)
    maps = rng.random((grid.stack.n_layers, ny, nx))

    fast_field = grid.solve(maps)  # factorizes once
    ref = seed_thermal_solve(grid, maps)
    err = float(np.abs(fast_field.celsius.ravel() - ref).max())

    t_fast = _best_of(lambda: grid.solve(maps), repeats)
    t_seed = _best_of(lambda: seed_thermal_solve(grid, maps), repeats)
    resolve_ratio = t_seed / t_fast

    n_batch = 20
    batch = np.stack([maps * (1.0 + 0.01 * k) for k in range(n_batch)])
    t_batch = _best_of(lambda: grid.solve_many(batch), repeats)
    batch_ratio = n_batch * t_seed / t_batch

    print(f"thermal {nx}x{ny}: repeat solve {t_fast * 1e3:.1f} ms vs seed "
          f"{t_seed * 1e3:.1f} ms -> {resolve_ratio:.1f}x "
          f"(max |dT| = {err:.2e} C)")
    print(f"thermal solve_many({n_batch}): {t_batch * 1e3:.1f} ms vs "
          f"{n_batch} seed solves -> {batch_ratio:.1f}x")

    failures = []
    if err > 1e-9:
        failures.append(f"thermal mismatch vs spsolve: {err:.2e} > 1e-9")
    if resolve_ratio < 10.0:
        failures.append(
            f"thermal repeat-solve speedup {resolve_ratio:.1f}x < 10x"
        )
    if batch_ratio < 15.0:
        failures.append(
            f"thermal solve_many speedup {batch_ratio:.1f}x < 15x"
        )
    return failures


def check_thermal_transient(quick: bool) -> list[str]:
    """The transient thermal stepping + closed-loop control gates.

    Runs :func:`repro.thermal.bench.run_thermal_loop_bench` on the
    Fig. 10 grid (quick) or a 4x-refined one (full) and asserts:
    amortized stepping >= 10x the refactorize-per-step oracle and above
    an absolute steps/sec floor; the transient fixed point equals the
    steady solve (<= 1e-6 C); a factored step equals an oracle step
    from the same state (<= 1e-9 C); lockstep batched stepping is
    bit-identical to per-scenario stepping; and the governed run stays
    under the DRAM limit while the uncontrolled replay exceeds it with
    at least one throttle intervention recorded.
    """
    from repro.thermal.bench import run_thermal_loop_bench

    if quick:
        report = run_thermal_loop_bench(factored_steps=300, oracle_steps=8)
        steps_floor = 250.0
    else:
        report = run_thermal_loop_bench(
            nx=132, ny=44, factored_steps=300, oracle_steps=6
        )
        steps_floor = 60.0

    g, r = report.governed, report.replay
    print(f"thermal transient {report.cells} cells: "
          f"{report.steps_per_s:.0f} steps/s factored vs "
          f"{report.oracle_steps / report.oracle_s:.0f} oracle -> "
          f"{report.speedup:.1f}x (converge err {report.converge_err_c:.2e}, "
          f"step err {report.oracle_step_err_c:.2e}, batched identical: "
          f"{report.batch_identical})")
    print(f"thermal loop: governed peak {g.max_peak_dram_c:.1f} C / "
          f"{len(g.throttle_events)} throttles vs uncontrolled "
          f"{r.max_peak_dram_c:.1f} C ({r.time_over_limit_s:.1f} s over "
          f"the {r.limit_c:.0f} C limit)")

    failures = []
    if report.speedup < 10.0:
        failures.append(
            f"transient stepping speedup {report.speedup:.1f}x < 10x"
        )
    if report.steps_per_s < steps_floor:
        failures.append(
            f"transient stepping {report.steps_per_s:.0f} steps/s < "
            f"{steps_floor:.0f} floor"
        )
    if report.converge_err_c > 1e-6:
        failures.append(
            f"transient fixed point vs steady solve: "
            f"{report.converge_err_c:.2e} C > 1e-6"
        )
    if report.oracle_step_err_c > 1e-9:
        failures.append(
            f"factored step vs oracle step: "
            f"{report.oracle_step_err_c:.2e} C > 1e-9"
        )
    if not report.batch_identical:
        failures.append(
            "lockstep batched stepping diverged from per-scenario steps"
        )
    if not g.within_limit:
        failures.append(
            f"governed run peaked at {g.max_peak_dram_c:.1f} C over the "
            f"{g.limit_c:.0f} C limit"
        )
    if r.within_limit:
        failures.append(
            "uncontrolled replay stayed under the limit — the scenario "
            "exercises no thermal constraint"
        )
    if not g.throttle_events:
        failures.append("governed run recorded no throttle events")
    return failures


def check_noc(quick: bool) -> list[str]:
    n = 20_000 if quick else 100_000
    rng = np.random.default_rng(1)
    nodes = [f"gpu{i}" for i in range(8)] + [f"dram{i}" for i in range(8)]
    src = rng.integers(0, len(nodes), size=n)
    dst = (src + 1 + rng.integers(0, len(nodes) - 1, size=n)) % len(nodes)
    msgs = [
        SimMessage(nodes[s], nodes[d], 4096.0, k * 1e-9)
        for k, (s, d) in enumerate(zip(src, dst))
    ]

    sim = NocSimulator()
    ref_lat, ref_mk = seed_noc_run(sim, msgs)
    res = sim.run(msgs)
    identical = res.latencies == ref_lat and res.makespan == ref_mk

    t_fast = _best_of(lambda: NocSimulator().run(msgs), 3)
    t_seed = _best_of(lambda: seed_noc_run(NocSimulator(), msgs), 2)
    ratio = t_seed / t_fast
    print(f"noc {n // 1000}k messages: {t_fast * 1e3:.0f} ms vs seed "
          f"{t_seed * 1e3:.0f} ms -> {ratio:.1f}x "
          f"(latencies identical: {identical})")

    failures = []
    if not identical:
        failures.append("NoC fast path diverged from the seed loop")
    if ratio < 5.0:
        failures.append(f"NoC speedup {ratio:.1f}x < 5x")
    return failures


def check_apu_sim(quick: bool) -> list[str]:
    n = 10_000 if quick else 50_000
    trace = default_calibration_trace(n_accesses=n)
    sim = ApuSimulator()

    array = sim.run(trace)
    event = sim.run(trace, engine="event")
    fields = {
        "elapsed": (array.elapsed, event.elapsed),
        "total_flops": (array.total_flops, event.total_flops),
        "mean_memory_latency": (
            array.mean_memory_latency, event.mean_memory_latency
        ),
        "cu_utilization": (array.cu_utilization, event.cu_utilization),
    }
    err = max(
        abs(a - e) / max(abs(e), 1e-300) for a, e in fields.values()
    )
    counts_match = (
        array.dram_accesses == event.dram_accesses
        and array.hit_rates == event.hit_rates
    )

    t_array = _best_of(lambda: sim.run(trace), 3)
    t_event = _best_of(lambda: sim.run(trace, engine="event"), 2)
    ratio = t_event / t_array
    print(f"apu_sim {n // 1000}k accesses: array {t_array * 1e3:.0f} ms vs "
          f"event {t_event * 1e3:.0f} ms -> {ratio:.1f}x "
          f"(max rel err = {err:.2e})")

    failures = []
    if err > 1e-9 or not counts_match:
        failures.append(
            f"apu_sim array engine diverged from event oracle "
            f"(rel err {err:.2e}, counts match: {counts_match})"
        )
    if ratio < 5.0:
        failures.append(f"apu_sim array-engine speedup {ratio:.1f}x < 5x")
    return failures


_MEMSYS_CAPACITY_FRACTIONS = (0.02, 0.05, 0.1, 0.25, 0.5, 1.0)


def _memsys_sweep_params(quick: bool):
    n = 10_000 if quick else 50_000
    trace = default_calibration_trace(n_accesses=n)
    capacities = [
        max(4096.0 * 8, fraction * trace.footprint_bytes)
        for fraction in _MEMSYS_CAPACITY_FRACTIONS
    ]
    # Manager capacity at 20% of the stream's unique pages: the
    # migration machinery runs under eviction pressure, as the low end
    # of the experiments' capacity sweep does.
    unique_pages = int(np.unique(trace.addresses // 4096).size)
    manager_capacity = max(4096.0, unique_pages // 5 * 4096.0)
    return n, trace, capacities, manager_capacity


def check_memsys(quick: bool) -> list[str]:
    from dataclasses import astuple

    n, trace, capacities, manager_capacity = _memsys_sweep_params(quick)
    addrs, writes = trace.addresses, trace.is_write
    epochs = np.array_split(addrs, 4)

    def replay(engine: str):
        rb = RowBufferSim(engine=engine)
        rb.run(addrs)
        dram = []
        for capacity in capacities:
            cache = DramCache(capacity, 4096, 8, engine=engine)
            cache.run_trace(addrs, writes)
            dram.append(astuple(cache.stats))
        # The "event" side drives the seed's quadratic re-sort-per-
        # eviction policy: the shipped scalar oracle now uses an
        # incremental heap (PR 5), so the seed-equivalent reference
        # lives here like the thermal/NoC ones do.
        policy = (
            SeedResortHotnessPolicy()
            if engine == "event"
            else HotnessMigrationPolicy()
        )
        manager = MemoryManager(manager_capacity, policy, 4096, engine=engine)
        fractions = manager.run_batch(epochs)
        return astuple(rb.stats), dram, fractions

    array_out = replay("array")
    event_out = replay("event")
    identical = (
        array_out[0] == event_out[0]
        and array_out[1] == event_out[1]
        and all(
            abs(a - e) <= 1e-9 * max(abs(e), 1e-300)
            for a, e in zip(array_out[2], event_out[2])
        )
    )

    t_array = _best_of(lambda: replay("array"), 3)
    t_event = _best_of(lambda: replay("event"), 1)  # scalar manager is slow
    ratio = t_event / t_array
    print(f"memsys {n // 1000}k addresses (row buffer + "
          f"{len(capacities)}-capacity DRAM-cache sweep + 4 migration "
          f"epochs): array {t_array * 1e3:.0f} ms vs event "
          f"{t_event * 1e3:.0f} ms -> {ratio:.1f}x "
          f"(outputs identical: {identical})")

    failures = []
    if not identical:
        failures.append("memsys array engines diverged from the oracles")
    if ratio < 5.0:
        failures.append(f"memsys array-engine speedup {ratio:.1f}x < 5x")
    return failures


def check_memsys_cache(quick: bool) -> list[str]:
    n, trace, capacities, manager_capacity = _memsys_sweep_params(quick)
    addrs, writes = trace.addresses, trace.is_write

    def sweep(cache: MemsysCache):
        cache.rowbuffer_stats(addrs)
        for capacity in capacities:
            cache.dram_stats(addrs, writes, capacity_bytes=capacity)
        cache.manager_fractions(
            addrs, n_epochs=4, capacity_bytes=manager_capacity
        )

    cache = MemsysCache()
    t_cold = _best_of(lambda: sweep(cache), 1)  # first run computes
    t_warm = _best_of(lambda: sweep(cache), 3)  # later runs only look up
    ratio = t_cold / t_warm
    stats = cache.stats()
    print(f"memsys cache {n // 1000}k addresses: cold {t_cold * 1e3:.0f} ms "
          f"vs warm {t_warm * 1e3:.1f} ms -> {ratio:.1f}x "
          f"(hits {stats.hits}, misses {stats.misses})")

    failures = []
    if stats.misses != len(capacities) + 2:
        failures.append(
            f"memsys cache recomputed warm entries "
            f"({stats.misses} misses for {len(capacities) + 2} keys)"
        )
    if ratio < 5.0:
        failures.append(f"memsys cold-vs-warm ratio {ratio:.1f}x < 5x")
    return failures


def check_obs_overhead(quick: bool) -> list[str]:
    """The observability layer's always-on cost on the hottest path.

    Runs the APU simulator's array engine with metrics enabled and again
    under :func:`repro.obs.metrics.disabled`, and requires the
    instrumented run to stay within 5% — the layer's 'cheap enough to
    never turn off' promise. Also asserts the counters actually fired.

    A second gate covers the serving path with *tracing active*: warm
    closed-loop bursts through the in-process service with a live
    tracer (request spans, queue-wait spans, batch spans, SLO
    publication) vs the same bursts with metrics disabled and no
    tracer, again within 5%.
    """
    import gc
    import statistics

    n = 10_000 if quick else 50_000
    rounds, per_batch = 10, 2
    trace = default_calibration_trace(n_accesses=n)
    sim = ApuSimulator()
    sim.run(trace)  # warm-up: JIT-free, but page-in + allocator steady state

    def batch() -> float:
        t0 = time.perf_counter()
        for _ in range(per_batch):
            sim.run(trace)
        return time.perf_counter() - t0

    def measure() -> float:
        # The true per-run cost of the layer is microseconds, far below
        # this environment's run-to-run jitter, so the estimator has to
        # be noise robust: time instrumented/disabled batches
        # back-to-back (alternating which side goes first so drift and
        # warm-second-run effects cancel), and take the median of the
        # per-pair ratios with the cyclic GC parked.
        ratios = []
        gc.collect()
        gc.disable()
        try:
            for k in range(rounds):
                if k % 2 == 0:
                    t_on = batch()
                    with obs_metrics.disabled():
                        t_off = batch()
                else:
                    with obs_metrics.disabled():
                        t_off = batch()
                    t_on = batch()
                ratios.append(t_on / t_off)
        finally:
            gc.enable()
        return statistics.median(ratios) - 1.0

    registry = obs_metrics.default_registry()
    runs_before = registry.snapshot().counter("sim.apu.runs")
    # On a loaded machine a single measurement can still read high, so
    # a measurement over the limit is retried: noise passes eventually,
    # a real systematic regression fails every attempt.
    attempts = 3
    for attempt in range(attempts):
        overhead = measure()
        if overhead <= 0.05:
            break
    runs_delta = registry.snapshot().counter("sim.apu.runs") - runs_before
    expected_runs = (attempt + 1) * rounds * per_batch
    print(f"obs overhead {n // 1000}k accesses ({rounds} paired batches "
          f"of {per_batch}, attempt {attempt + 1}/{attempts}): median "
          f"instrumented/disabled ratio {overhead * 100.0:+.1f}% "
          f"(counter delta: {runs_delta})")

    failures = []
    if runs_delta != expected_runs:
        failures.append(
            f"sim.apu.runs advanced by {runs_delta}, expected "
            f"{expected_runs} (instrumentation not firing?)"
        )
    if overhead > 0.05:
        failures.append(
            f"observability overhead {overhead * 100.0:.1f}% > 5% "
            f"({attempts} attempts)"
        )

    # --- serve path, tracing active -------------------------------
    from repro.perf.evalcache import EvalCache
    from repro.serve.bench import run_arrivals
    from repro.serve.workload import Arrival, synthetic_arrivals

    n_req = 48 if quick else 120
    serve_rounds = 6
    arrivals = [
        Arrival(0.0, a.request)
        for a in synthetic_arrivals(3, n_req, deadline_s=None)
    ]
    cache = EvalCache()
    run_arrivals(arrivals, pool=None, cache=cache)  # warm the caches

    def serve_burst(traced: bool) -> float:
        t0 = time.perf_counter()
        if traced:
            with obs_trace.trace():
                run_arrivals(arrivals, pool=None, cache=cache)
        else:
            with obs_metrics.disabled():
                run_arrivals(arrivals, pool=None, cache=cache)
        return time.perf_counter() - t0

    def measure_serve() -> float:
        ratios = []
        gc.collect()
        gc.disable()
        try:
            for k in range(serve_rounds):
                if k % 2 == 0:
                    t_on = serve_burst(True)
                    t_off = serve_burst(False)
                else:
                    t_off = serve_burst(False)
                    t_on = serve_burst(True)
                ratios.append(t_on / t_off)
        finally:
            gc.enable()
        return statistics.median(ratios) - 1.0

    with obs_trace.trace() as tracer:
        run_arrivals(arrivals, pool=None, cache=cache)
    if not any(e["name"].startswith("serve.") for e in tracer.events):
        failures.append(
            "active tracer recorded no serve.* spans on the serve "
            "path (tracing not wired?)"
        )

    for attempt in range(attempts):
        serve_overhead = measure_serve()
        if serve_overhead <= 0.05:
            break
    print(f"serve obs overhead {n_req} warm requests ({serve_rounds} "
          f"paired bursts, attempt {attempt + 1}/{attempts}): median "
          f"traced/disabled ratio {serve_overhead * 100.0:+.1f}%")
    if serve_overhead > 0.05:
        failures.append(
            f"serve-path observability overhead (tracing active) "
            f"{serve_overhead * 100.0:.1f}% > 5% ({attempts} attempts)"
        )
    return failures


def check_pool_affinity(quick: bool) -> list[str]:
    """The persistent sharded pool's cache-affinity promise.

    A warm repeat sweep on a reused :class:`ShardedPool` must beat the
    cold spawn-per-call baseline >= 5x, recompute zero warm cache keys
    (merged worker ``cache.eval`` deltas: no misses, one hit per tensor
    slab task), and stay bit-identical to the serial DSE — cold, warm,
    under the round-robin policy, and after a worker is killed and
    respawned. Since PR 6 the unit of work is a fused (profile-block x
    CU-slab) tensor slab, so the task count is ``n_blocks * n_slabs``
    rather than ``len(profiles) * n_chunks``.
    """
    from repro.core.config import DesignSpace
    from repro.core.dse import explore
    from repro.perf.evalcache import clear_cache
    from repro.perf.parallel import parallel_explore
    from repro.perf.pool import ShardedPool
    from repro.workloads.catalog import application_names, get_application

    n_shards, n_chunks = 2, 4
    if quick:
        names = ["MaxFlops", "CoMD", "MiniAMR", "SNAP"]
        frequencies = tuple(700e6 + 10e6 * k for k in range(81))
    else:
        names = application_names()
        frequencies = tuple(700e6 + 5e6 * k for k in range(161))
    space = DesignSpace(
        cu_counts=tuple(range(192, 385, 4)),
        frequencies=frequencies,
        bandwidths=tuple(1e12 + 0.25e12 * k for k in range(25)),
    )
    profiles = [get_application(n) for n in names]
    # Mirrors the slab split in repro.perf.parallel._explore_slabs.
    n_blocks = max(1, min(n_chunks, len(profiles)))
    n_slabs = max(1, min(n_chunks, len(space.cu_counts)))
    n_tasks = n_blocks * n_slabs

    serial = explore(profiles, space, cache=False)

    def matches_serial(result) -> bool:
        return (
            result.best_mean_index == serial.best_mean_index
            and dict(result.per_app_best_index)
            == dict(serial.per_app_best_index)
            and all(
                np.array_equal(result.performance[n], serial.performance[n])
                and np.array_equal(result.node_power[n], serial.node_power[n])
                for n in names
            )
        )

    # Cold baseline: what every sweep pays without a persistent pool —
    # spawn workers, compute everything, tear the pool down. The parent
    # caches are cleared first: forked workers inherit the parent's
    # memory, so a warm parent would leak warmth into the "cold" pool.
    clear_cache()
    t0 = time.perf_counter()
    with ShardedPool(n_shards) as cold_pool:
        cold_result = parallel_explore(
            profiles, space, n_chunks=n_chunks, pool=cold_pool
        )
    t_cold = time.perf_counter() - t0

    # Persistent pool: the first sweep warms each worker's own shard;
    # repeat sweeps must be pure cache traffic. batch_size covers each
    # worker's whole queue in one dispatch, so no task is stolen onto a
    # worker that never owned its cache entries.
    clear_cache()
    pool = ShardedPool(n_shards, batch_size=n_tasks)
    try:
        first_result = parallel_explore(
            profiles, space, n_chunks=n_chunks, pool=pool
        )
        t_warm = float("inf")
        snap = None
        for _ in range(3):
            t0 = time.perf_counter()
            warm_result, warm_snap = parallel_explore(
                profiles, space, n_chunks=n_chunks, pool=pool, metrics=True
            )
            elapsed = time.perf_counter() - t0
            if elapsed < t_warm:
                t_warm, snap = elapsed, warm_snap
        ratio = t_cold / t_warm
        misses = snap.counter("cache.eval.misses")
        hits = snap.counter("cache.eval.hits")

        restarts_before = pool.stats().worker_restarts
        pool.kill_worker(0)
        killed_result = parallel_explore(
            profiles, space, n_chunks=n_chunks, pool=pool
        )
        restarts_after = pool.stats().worker_restarts
    finally:
        pool.shutdown()

    with ShardedPool(n_shards, policy="roundrobin") as rr_pool:
        rr_result = parallel_explore(
            profiles, space, n_chunks=n_chunks, pool=rr_pool
        )

    identical = all(
        matches_serial(r)
        for r in (cold_result, first_result, warm_result, killed_result,
                  rr_result)
    )
    print(f"pool affinity {len(profiles)} profiles x {space.size // 1000}k "
          f"points: cold per-call pool {t_cold * 1e3:.0f} ms vs warm reused "
          f"{t_warm * 1e3:.0f} ms -> {ratio:.1f}x (warm misses {misses}, "
          f"hits {hits}/{n_tasks}, identical to serial: {identical})")

    failures = []
    if not identical:
        failures.append("pooled DSE diverged from the serial explore")
    if ratio < 5.0:
        failures.append(f"pool warm-vs-cold speedup {ratio:.1f}x < 5x")
    if misses != 0:
        failures.append(
            f"warm sweep recomputed {misses} cache keys across workers"
        )
    if hits != n_tasks:
        failures.append(
            f"warm sweep saw {hits} cache.eval hits, expected {n_tasks}"
        )
    if restarts_after != restarts_before + 1:
        failures.append(
            f"worker kill produced {restarts_after - restarts_before} "
            f"restarts, expected 1"
        )
    return failures


def check_tensor_eval(quick: bool) -> list[str]:
    """The fused whole-grid tensor evaluation's two promises.

    Speed: one ``NodeModel.evaluate_grid`` broadcast pass over a full
    Table-II-scale ``(P, CU, freq, BW)`` sweep must beat the seed
    per-profile path — ``evaluate_arrays`` plus the
    performance/node-power property materializations and the
    feasibility compare, per profile, exactly what the seed
    ``core.dse.explore`` loop did — by >= 10x.

    Identity: ``explore(engine="tensor")`` and ``explore(
    engine="point")`` must select bit-identical ``best_mean_index`` and
    ``per_app_best_index`` optima on the catalog, and the grids must
    agree to rtol 1e-12 with exactly equal feasibility masks (the
    fused kernel reassociates arithmetic, so values differ by a few
    ULPs — ~8 orders of magnitude below the catalog's tightest argmax
    and budget margins).
    """
    from repro.core.config import DesignSpace
    from repro.core.dse import explore
    from repro.core.node import NodeModel
    from repro.util import alloctune
    from repro.workloads.catalog import application_names, get_application
    from repro.workloads.kernels import ProfileBatch

    # Without this, glibc returns every freed scratch tensor to the OS
    # and the tensor pass re-faults its pages each call (~2x slower).
    alloctune.retain_freed_heap()

    apps = [get_application(n) for n in application_names()]
    scales = 4 if quick else 8
    profiles = [
        app.scaled_problem(float(2 ** k)).with_overrides(
            name=f"{app.name}/x{2 ** k}"
        )
        for app in apps
        for k in range(scales)
    ]
    space = DesignSpace()
    model = NodeModel()
    cus, freqs, bws = space.grid_arrays()
    repeats = 3 if quick else 5

    def point_sweep():
        out = {}
        for profile in profiles:
            ev = model.evaluate_arrays(profile, cus, freqs, bws)
            perf = np.asarray(ev.performance, dtype=float)
            power = np.asarray(ev.node_power, dtype=float)
            out[profile.name] = (perf, power, power <= space.power_budget)
        return out

    batch = ProfileBatch.from_profiles(profiles)

    grid = model.evaluate_grid(batch, space)
    ref = point_sweep()
    max_rel = 0.0
    masks_equal = True
    for i, name in enumerate(grid.names):
        perf, power, feas = ref[name]
        max_rel = max(
            max_rel,
            float(np.abs(grid.performance[i] / perf - 1.0).max()),
            float(np.abs(grid.power[i] / power - 1.0).max()),
        )
        masks_equal = masks_equal and np.array_equal(grid.feasible[i], feas)

    t_tensor = _best_of(lambda: model.evaluate_grid(batch, space), repeats)
    t_point = _best_of(point_sweep, repeats)
    ratio = t_point / t_tensor

    serial_point = explore(apps, space, model, cache=False, engine="point")
    serial_tensor = explore(apps, space, model, cache=False, engine="tensor")
    argmax_identical = (
        serial_tensor.best_mean_index == serial_point.best_mean_index
        and dict(serial_tensor.per_app_best_index)
        == dict(serial_point.per_app_best_index)
    )

    print(f"tensor eval {len(profiles)} profiles x {space.size} points: "
          f"fused {t_tensor * 1e3:.2f} ms vs per-profile "
          f"{t_point * 1e3:.1f} ms -> {ratio:.1f}x "
          f"(max rel err = {max_rel:.2e}, argmax identical: "
          f"{argmax_identical})")

    failures = []
    if max_rel > 1e-12:
        failures.append(
            f"tensor grid diverged from per-profile path: {max_rel:.2e} "
            f"> 1e-12"
        )
    if not masks_equal:
        failures.append("tensor feasibility masks diverged")
    if not argmax_identical:
        failures.append(
            "tensor/point engines selected different DSE optima"
        )
    if ratio < 10.0:
        failures.append(f"tensor evaluation speedup {ratio:.1f}x < 10x")
    return failures


def check_serve(quick: bool) -> list[str]:
    """The serving layer's three acceptance gates.

    * **Identity** — a mixed burst of point/sweep requests served
      through the pooled, coalescing service must answer bit-identical
      to :func:`repro.serve.service.serial_answer` on every request.
    * **Capacity** — warm sustained closed-loop throughput must beat
      the naive one-``pool.run``-per-request baseline >= 5x (the
      coalescing + inline-cache promise).
    * **Tail latency** — replaying an open-loop Poisson schedule at a
      rated load (a quarter of measured capacity, capped) must keep
      p99 within the configured deadline with < 1% shed + expiry.
    """
    import asyncio

    from repro.core.node import NodeModel
    from repro.perf.evalcache import EvalCache
    from repro.perf.pool import ShardedPool
    from repro.serve.bench import naive_baseline_rps, run_arrivals
    from repro.serve.requests import OK, PointResult
    from repro.serve.service import EvalService, serial_answer
    from repro.serve.workload import synthetic_arrivals

    n = 96 if quick else 240
    deadline_s = 0.25
    model = NodeModel()
    cache = EvalCache()  # private: the gate measures its own warmth
    failures: list[str] = []

    with ShardedPool(2) as pool:
        # Identity: every served answer vs the serial oracle.
        identity_arrivals = synthetic_arrivals(7, 32, deadline_s=None)

        async def serve_burst():
            service = EvalService(
                model=model, pool=pool, cache=EvalCache(),
                batch_window_s=0.01,
            )
            async with service:
                return await asyncio.gather(
                    *(service.submit(a.request) for a in identity_arrivals)
                )

        responses = asyncio.run(serve_burst())
        mismatches = 0
        for arrival, response in zip(identity_arrivals, responses):
            if response.status != OK:
                mismatches += 1
                continue
            oracle = serial_answer(arrival.request, model)
            if isinstance(oracle, PointResult):
                same = response.value == oracle
            else:  # DseResult
                same = (
                    response.value.best_mean_index
                    == oracle.best_mean_index
                    and dict(response.value.per_app_best_index)
                    == dict(oracle.per_app_best_index)
                    and all(
                        np.array_equal(
                            response.value.performance[a],
                            oracle.performance[a],
                        )
                        for a in oracle.performance
                    )
                )
            if not same:
                mismatches += 1

        # Capacity: warm closed-loop burst vs the naive baseline.
        # Best-of on both sides, like the other timing gates: one bad
        # scheduler quantum must not fail the run.
        repeats = 2 if quick else 3
        arrivals = synthetic_arrivals(0, n, deadline_s=deadline_s)
        run_arrivals(arrivals, model=model, pool=pool, cache=cache)  # warm
        report = max(
            (
                run_arrivals(arrivals, model=model, pool=pool, cache=cache)
                for _ in range(repeats)
            ),
            key=lambda r: r.throughput_rps,
        )
        base_rps = max(
            naive_baseline_rps(arrivals, pool, model)
            for _ in range(repeats)
        )
        speedup = report.throughput_rps / base_rps if base_rps else 0.0

        # Tail latency at the rated open-loop load.
        rate_hz = max(100.0, min(report.throughput_rps / 4.0, 5000.0))
        open_arrivals = synthetic_arrivals(
            1, n, rate_hz=rate_hz, deadline_s=deadline_s
        )
        open_report = run_arrivals(
            open_arrivals, model=model, pool=pool, cache=cache
        )

    print(f"serve {n} requests: warm {report.throughput_rps:.0f} req/s vs "
          f"naive {base_rps:.0f} req/s -> {speedup:.1f}x; open loop @ "
          f"{rate_hz:.0f} Hz: p99 {open_report.p99_ms:.2f} ms "
          f"(deadline {deadline_s * 1e3:.0f} ms), shed "
          f"{open_report.shed_fraction * 100.0:.2f}% "
          f"(identity mismatches: {mismatches})")

    if mismatches:
        failures.append(
            f"serve answers diverged from serial oracle on "
            f"{mismatches}/{len(identity_arrivals)} requests"
        )
    if speedup < 5.0:
        failures.append(
            f"serve warm throughput {speedup:.1f}x naive baseline < 5x"
        )
    if open_report.p99_ms > deadline_s * 1e3:
        failures.append(
            f"serve open-loop p99 {open_report.p99_ms:.1f} ms over the "
            f"{deadline_s * 1e3:.0f} ms deadline"
        )
    if open_report.shed_fraction >= 0.01:
        failures.append(
            f"serve shed {open_report.shed_fraction * 100.0:.1f}% >= 1% "
            f"at the rated load"
        )
    return failures


def check_fleet(quick: bool) -> list[str]:
    """The sharded multi-node fleet sweep's promises.

    Correctness: the sharded sweep must be bit-identical to the serial
    :meth:`ExascaleSystem.estimate` loop — cold, warm on the reused
    pool, after a worker death, and on a fresh pool warmed only by the
    shared spill directory. Speed: the warm reused pool must beat the
    serial loop >= 5x with zero recomputed cache keys. Scheduling: the
    group-fingerprint shard keys must spread the chunk tasks evenly
    (assignment balance >= 0.75 — deterministic, no wall-clock noise).
    """
    import shutil
    import tempfile

    from repro.fleet.bench import identical_results
    from repro.fleet.spec import synthetic_fleet
    from repro.fleet.sweep import fleet_sweep, fleet_sweep_serial
    from repro.perf.evalcache import clear_cache
    from repro.perf.pool import ShardedPool

    n_shards, n_chunks = 2, 4
    if quick:
        spec = synthetic_fleet(n_nodes=1000, n_groups=6, seed=0)
        cu_counts = tuple(range(192, 385, 16))
    else:
        spec = synthetic_fleet(n_nodes=1000, n_groups=8, seed=0)
        cu_counts = tuple(range(192, 385, 8))
    n_tasks = spec.n_series * max(1, min(n_chunks, len(cu_counts)))

    clear_cache()
    t0 = time.perf_counter()
    serial = fleet_sweep_serial(spec, cu_counts)
    t_serial = time.perf_counter() - t0

    spill = tempfile.mkdtemp(prefix="fleet-spill-")
    # Forked workers inherit the parent's memory: clear the parent's
    # caches so the "cold" pool really starts cold. batch_size covers
    # each worker's whole queue in one dispatch, so no chunk is stolen
    # onto a worker that never owned its cache entries.
    clear_cache()
    pool = ShardedPool(n_shards, batch_size=n_tasks)
    try:
        t0 = time.perf_counter()
        cold = fleet_sweep(
            spec, cu_counts, pool=pool,
            n_chunks=n_chunks, spill_dir=spill,
        )
        t_cold = time.perf_counter() - t0

        t_warm = float("inf")
        snap = warm = None
        for _ in range(3):
            t0 = time.perf_counter()
            result, delta = fleet_sweep(
                spec, cu_counts, pool=pool,
                n_chunks=n_chunks, metrics=True, spill_dir=spill,
            )
            elapsed = time.perf_counter() - t0
            if elapsed < t_warm:
                t_warm, warm, snap = elapsed, result, delta
        ratio = t_serial / t_warm
        misses = snap.counter("cache.eval.misses")
        hits = snap.counter("cache.eval.hits")
        counts = pool.last_shard_task_counts()
        balance = pool.assignment_balance()

        restarts_before = pool.stats().worker_restarts
        pool.kill_worker(0)
        killed = fleet_sweep(
            spec, cu_counts, pool=pool,
            n_chunks=n_chunks, spill_dir=spill,
        )
        restarts_after = pool.stats().worker_restarts
    finally:
        pool.shutdown()

    # A brand-new pool pointed at the same spill directory must start
    # warm: zero recomputation, all traffic served by the spill tier.
    clear_cache()
    try:
        with ShardedPool(n_shards, batch_size=n_tasks) as fresh_pool:
            respill, spill_snap = fleet_sweep(
                spec, cu_counts, pool=fresh_pool,
                n_chunks=n_chunks, metrics=True, spill_dir=spill,
            )
        spill_misses = spill_snap.counter("cache.eval.misses")
        spill_hits = spill_snap.counter("cache.eval.spill_hits")
        # Content-duplicate chunks (two groups drawing the same config
        # and profile) hit in memory after the first spill load; every
        # task must be served by one warm tier or the other.
        spill_served = spill_hits + spill_snap.counter("cache.eval.hits")
    finally:
        shutil.rmtree(spill, ignore_errors=True)

    identical = all(
        identical_results(serial, r) for r in (cold, warm, killed, respill)
    )
    print(f"fleet {spec.n_nodes} nodes / {len(spec.groups)} groups x "
          f"{len(cu_counts)} CU points: serial {t_serial * 1e3:.0f} ms vs "
          f"warm pool {t_warm * 1e3:.0f} ms -> {ratio:.1f}x (warm misses "
          f"{misses}, hits {hits}/{n_tasks}, shards {counts} balance "
          f"{balance:.2f}, spill rewarm {spill_hits} hits, identical to "
          f"serial: {identical})")

    failures = []
    if not identical:
        failures.append("fleet sweep diverged from the serial estimate loop")
    if ratio < 5.0:
        failures.append(f"fleet warm-vs-serial speedup {ratio:.1f}x < 5x")
    if misses != 0:
        failures.append(
            f"warm fleet sweep recomputed {misses} cache keys"
        )
    if hits != n_tasks:
        failures.append(
            f"warm fleet sweep saw {hits} cache.eval hits, "
            f"expected {n_tasks}"
        )
    if balance < 0.75:
        failures.append(
            f"fleet shard assignment balance {balance:.2f} < 0.75 "
            f"(counts {counts})"
        )
    if restarts_after != restarts_before + 1:
        failures.append(
            f"worker kill produced {restarts_after - restarts_before} "
            f"restarts, expected 1"
        )
    if spill_misses != 0 or spill_hits == 0 or spill_served != n_tasks:
        failures.append(
            f"spill rewarm on a fresh pool: {spill_misses} misses, "
            f"{spill_hits} spill hits, {spill_served}/{n_tasks} served warm"
        )
    if t_cold <= 0:  # pragma: no cover - sanity
        failures.append("cold fleet run measured non-positive time")
    return failures


CHECKS = (
    ("thermal", check_thermal),
    ("thermal_transient", check_thermal_transient),
    ("noc", check_noc),
    ("apu_sim", check_apu_sim),
    ("memsys", check_memsys),
    ("memsys_cache", check_memsys_cache),
    ("obs_overhead", check_obs_overhead),
    ("pool_affinity", check_pool_affinity),
    ("tensor_eval", check_tensor_eval),
    ("serve", check_serve),
    ("fleet", check_fleet),
)


def print_bench_summary(path: str) -> None:
    """Headline stats of a ``--benchmark-json`` artifact (either the
    compact format with a ``summary`` block or the legacy pretty one)."""
    summary = load_summary(path)
    width = max((len(n) for n in summary), default=0)
    for name, stats in sorted(summary.items()):
        mean = stats.get("mean_s")
        stddev = stats.get("stddev_s")
        rounds = stats.get("rounds")
        mean_txt = f"{mean * 1e3:10.2f} ms" if mean is not None else "?"
        sd_txt = f"+/- {stddev * 1e3:.2f}" if stddev is not None else ""
        print(f"{name:<{width}}  {mean_txt} {sd_txt}  ({rounds} rounds)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller problem sizes (CI smoke run)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a run manifest JSON for the gate run to PATH",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write Chrome trace-event JSON (one span per check) to PATH",
    )
    parser.add_argument(
        "--bench-summary",
        metavar="BENCH_JSON",
        default=None,
        help="print the summary of a --benchmark-json artifact and exit",
    )
    args = parser.parse_args(argv)

    if args.bench_summary:
        print_bench_summary(args.bench_summary)
        return 0

    from contextlib import nullcontext

    failures: list[str] = []
    wall_times: dict[str, float] = {}
    t_start = time.perf_counter()
    tracer_cm = obs_trace.trace() if args.trace_out else nullcontext(None)
    with tracer_cm as tracer:
        for name, check in CHECKS:
            t0 = time.perf_counter()
            with obs_trace.span(f"check.{name}"):
                failures += check(args.quick)
            wall_times[name] = time.perf_counter() - t0
    wall_times["total"] = time.perf_counter() - t_start
    if args.trace_out and tracer is not None:
        tracer.write(args.trace_out)
    if args.metrics_out:
        from repro.obs import manifest as obs_manifest

        obs_manifest.write_manifest(
            args.metrics_out,
            command="check_perf" + (" --quick" if args.quick else ""),
            experiments=[name for name, _ in CHECKS],
            wall_times=wall_times,
        )

    if failures:
        print("\nPERF REGRESSION:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nall perf ratios hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
