"""Benchmarks for the PR-1 performance layer's hot paths.

These time the fast paths directly (repeat thermal solve against a
cached factorization, batched back-substitution, the integer-route NoC
loop, the cached full-suite experiment run) so the recorded
``BENCH_*.json`` trajectory tracks them PR over PR. The speedup *ratio*
assertions against the seed implementations live in
``benchmarks/check_perf.py``.
"""

import numpy as np

from repro.memsys.dramcache import DramCache
from repro.memsys.manager import HotnessMigrationPolicy, MemoryManager
from repro.memsys.rowbuffer import RowBufferSim
from repro.noc.simulator import NocSimulator, SimMessage
from repro.perf.evalcache import EvalCache, MemsysCache
from repro.perf.parallel import run_all_experiments
from repro.sim.apu_sim import ApuSimulator
from repro.thermal.grid import ThermalGrid
from repro.workloads.calibration import default_calibration_trace
from repro.workloads.catalog import APPLICATIONS

GRID_NX = GRID_NY = 132


def _hot_grid():
    grid = ThermalGrid(66.0, 22.0, nx=GRID_NX, ny=GRID_NY)
    rng = np.random.default_rng(0)
    maps = rng.random((grid.stack.n_layers, grid.ny, grid.nx))
    grid.solve(maps)  # factorize once, outside the timed region
    return grid, maps


def test_bench_thermal_repeat_solve(benchmark):
    """Repeat steady-state solve on a 132x132 grid (cached splu)."""
    grid, maps = _hot_grid()
    benchmark(grid.solve, maps)


def test_bench_thermal_solve_many(benchmark):
    """Batched solve of 20 power maps against one factorization."""
    grid, maps = _hot_grid()
    batch = np.stack([maps * (1.0 + 0.01 * k) for k in range(20)])
    benchmark.pedantic(grid.solve_many, args=(batch,), rounds=3, iterations=1)


def _noc_messages(n=100_000):
    rng = np.random.default_rng(1)
    nodes = [f"gpu{i}" for i in range(8)] + [f"dram{i}" for i in range(8)]
    src = rng.integers(0, len(nodes), size=n)
    dst = (src + 1 + rng.integers(0, len(nodes) - 1, size=n)) % len(nodes)
    return [
        SimMessage(nodes[s], nodes[d], 4096.0, k * 1e-9)
        for k, (s, d) in enumerate(zip(src, dst))
    ]


def test_bench_noc_100k(benchmark):
    """100k-message store-and-forward run over the EHP topology."""
    msgs = _noc_messages()
    benchmark.pedantic(
        lambda: NocSimulator().run(msgs), rounds=3, iterations=1
    )


def test_bench_apu_sim_array_50k(benchmark):
    """Array-engine simulation of the 50k-access calibration trace."""
    trace = default_calibration_trace()
    sim = ApuSimulator()
    benchmark.pedantic(sim.run, args=(trace,), rounds=3, iterations=1)


def test_bench_apu_sim_event_50k(benchmark):
    """Event-engine oracle on the same trace (tracks the ratio)."""
    trace = default_calibration_trace()
    sim = ApuSimulator(engine="event")
    benchmark.pedantic(sim.run, args=(trace,), rounds=2, iterations=1)


def test_bench_apu_sim_batch(benchmark):
    """run_batch over the eight Table I applications' traces."""
    from repro.workloads.traces import TraceGenerator

    traces = [
        TraceGenerator(p, seed=42).generate(10_000)
        for p in APPLICATIONS.values()
    ]
    sim = ApuSimulator()
    benchmark.pedantic(sim.run_batch, args=(traces,), rounds=2, iterations=1)


def _memsys_replay_params(n_accesses):
    trace = default_calibration_trace(n_accesses=n_accesses)
    footprint = trace.footprint_bytes
    capacities = [
        max(4096.0 * 8, f * footprint)
        for f in (0.02, 0.05, 0.1, 0.25, 0.5, 1.0)
    ]
    unique_pages = int(np.unique(trace.addresses // 4096).size)
    manager_capacity = max(4096.0, unique_pages // 5 * 4096.0)
    return trace, capacities, manager_capacity


def _memsys_replay(trace, capacities, manager_capacity, engine):
    addrs, writes = trace.addresses, trace.is_write
    RowBufferSim(engine=engine).run(addrs)
    for capacity in capacities:
        DramCache(capacity, 4096, 8, engine=engine).run_trace(addrs, writes)
    manager = MemoryManager(
        manager_capacity, HotnessMigrationPolicy(), 4096, engine=engine
    )
    manager.run_batch(np.array_split(addrs, 4))


def test_bench_memsys_array_50k(benchmark):
    """Array-engine memsys replay of the 50k-address calibration trace
    (row buffer + 6-capacity DRAM-cache sweep + 4 migration epochs)."""
    trace, capacities, manager_capacity = _memsys_replay_params(50_000)
    benchmark.pedantic(
        _memsys_replay,
        args=(trace, capacities, manager_capacity, "array"),
        rounds=3,
        iterations=1,
    )


def test_bench_memsys_event_10k(benchmark):
    """Event-engine oracle on a 10k-address replay (tracks the ratio;
    the scalar manager is quadratic under eviction pressure, so the
    full 50k stream is left to check_perf's one-shot timing)."""
    trace, capacities, manager_capacity = _memsys_replay_params(10_000)
    benchmark.pedantic(
        _memsys_replay,
        args=(trace, capacities, manager_capacity, "event"),
        rounds=2,
        iterations=1,
    )


def test_bench_memsys_cache_warm(benchmark):
    """Warm MemsysCache sweep (row buffer, DRAM capacities, manager)."""
    trace, capacities, manager_capacity = _memsys_replay_params(50_000)
    addrs, writes = trace.addresses, trace.is_write
    cache = MemsysCache()

    def sweep():
        cache.rowbuffer_stats(addrs)
        for capacity in capacities:
            cache.dram_stats(addrs, writes, capacity_bytes=capacity)
        cache.manager_fractions(
            addrs, n_epochs=4, capacity_bytes=manager_capacity
        )

    sweep()  # populate outside the timed region
    benchmark(sweep)


def test_bench_eval_cache_warm(benchmark):
    """Warm-cache full-grid evaluation of all eight applications."""
    from repro.core.dse import explore

    cache = EvalCache()
    profiles = list(APPLICATIONS.values())
    explore(profiles, cache=cache)  # populate
    benchmark(lambda: explore(profiles, cache=cache))


def test_bench_run_all_experiments_serial(benchmark):
    """Every figure/table driver, serial, shared evaluation cache."""
    benchmark.pedantic(
        lambda: run_all_experiments(parallel=False), rounds=1, iterations=1
    )
