"""Benchmark: Fig. 12: power savings per optimization.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.power_opts import run_fig12


def test_bench_fig12(benchmark, show):
    """Fig. 12: power savings per optimization."""
    result = benchmark(run_fig12)
    show(result)
