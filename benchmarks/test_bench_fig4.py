"""Benchmark: Fig. 4: MaxFlops perf vs ops/byte at six bandwidths.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.kernel_sweeps import run_fig4


def test_bench_fig4(benchmark, show):
    """Fig. 4: MaxFlops perf vs ops/byte at six bandwidths."""
    result = benchmark(run_fig4)
    show(result)
