"""Benchmark: Table I: application catalog.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark, show):
    """Table I: application catalog."""
    result = benchmark(run_table1)
    show(result)
