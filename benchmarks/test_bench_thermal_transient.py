"""Benchmarks for the transient thermal layer (PR 10).

Times the paths the ``check_thermal_transient`` gate constrains on the
Fig. 10-scale grid: amortized-factorization backward-Euler stepping,
the refactorize-per-step oracle, lockstep multi-scenario stepping, the
one-time ``(C/dt + G)`` factorization, and one full closed-loop
governed schedule. Steps/sec and the governed/uncontrolled peak
temperatures ride along in ``extra_info`` so the compacted
BENCH_pr10.json artifact records them per run. The >=10x, convergence,
bit-identity, and under-the-limit assertions live in
``benchmarks/check_perf.py check_thermal_transient``.
"""

import numpy as np

from repro.core.node import NodeModel
from repro.core.thermal_governor import ThermalGovernor, ThermalPhase
from repro.thermal.analysis import ThermalModel
from repro.thermal.bench import HOT_CONFIG
from repro.thermal.transient import TransientSolver
from repro.workloads.catalog import get_application

DT = 0.01
MODEL = NodeModel()
THERMAL = ThermalModel()
MAXFLOPS = get_application("MaxFlops")
COMD = get_application("CoMD")
MAPS = THERMAL.build_power_maps(MODEL.evaluate(MAXFLOPS, HOT_CONFIG).power)


def _stepper(engine: str, n_steps: int):
    solver = TransientSolver(THERMAL.grid, dt=DT, engine=engine)

    def run():
        temps = solver.initial_temps()
        for _ in range(n_steps):
            temps = solver.step(temps, MAPS)
        return temps

    return run


def test_bench_transient_factored_steps(benchmark):
    """100 amortized-factorization steps (one substitution each)."""
    THERMAL.grid._ensure_transient_factor(DT)
    run = _stepper("factored", 100)
    benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["steps_per_s"] = 100.0 / benchmark.stats["min"]


def test_bench_transient_oracle_steps(benchmark):
    """5 refactorize-per-step oracle steps (the seed-equivalent cost)."""
    run = _stepper("oracle", 5)
    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_s"] = 5.0 / benchmark.stats["min"]


def test_bench_transient_factorization(benchmark):
    """The one-time ``(C/dt + G)`` factorization a dt change pays."""

    def factorize():
        THERMAL.grid._transient.clear()
        THERMAL.grid._ensure_transient_factor(DT)

    benchmark.pedantic(factorize, rounds=5, iterations=1)


def test_bench_transient_lockstep_batch(benchmark):
    """8 scenarios x 50 steps through one multi-RHS substitution each."""
    solver = TransientSolver(THERMAL.grid, dt=DT)
    batch = np.stack([MAPS * s for s in np.linspace(0.3, 1.0, 8)])
    THERMAL.grid._ensure_transient_factor(DT)
    benchmark.pedantic(
        solver.run_many, args=(batch, 50), rounds=5, iterations=1
    )
    benchmark.extra_info["scenario_steps_per_s"] = (
        8 * 50.0 / benchmark.stats["min"]
    )


def test_bench_thermal_loop_governed(benchmark):
    """One governed sprint/cool schedule, closed loop end to end."""
    governor = ThermalGovernor(model=MODEL, thermal=THERMAL, dt=DT)
    phases = [
        ThermalPhase(MAXFLOPS, 1.0),
        ThermalPhase(COMD, 0.5),
    ]
    governor.thermal_cap(MAXFLOPS, HOT_CONFIG)  # warm the cap cache
    result = benchmark.pedantic(
        governor.run, args=(phases, HOT_CONFIG), rounds=3, iterations=1
    )
    benchmark.extra_info["governed_peak_c"] = result.max_peak_dram_c
    benchmark.extra_info["throttle_events"] = len(result.throttle_events)
    replay = governor.replay(phases, HOT_CONFIG)
    benchmark.extra_info["uncontrolled_peak_c"] = replay.max_peak_dram_c
