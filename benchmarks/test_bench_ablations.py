"""Benchmarks: model/design ablations (beyond the paper).

X1 — latency-hiding and contention/thrashing terms of the performance
model; X2 — two-level memory management policies.
"""

from repro.experiments.ablations import (
    run_contention_ablation,
    run_latency_hiding_ablation,
    run_memory_management_ablation,
)


def test_bench_ablation_latency_hiding(benchmark, show):
    """X1a: chiplet penalty with and without wavefront latency hiding."""
    show(benchmark(run_latency_hiding_ablation))


def test_bench_ablation_contention(benchmark, show):
    """X1b: thrashing/contention terms vs the over-provisioning fall-off."""
    show(benchmark(run_contention_ablation))


def test_bench_ablation_memory_management(benchmark, show):
    """X2: first-touch vs hotness-migration placement."""
    show(benchmark(run_memory_management_ablation))
