"""Benchmark: Fig. 8: performance vs in-package DRAM miss rate.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.miss_sensitivity import run_fig8


def test_bench_fig8(benchmark, show):
    """Fig. 8: performance vs in-package DRAM miss rate."""
    result = benchmark(run_fig8)
    show(result)
