"""Benchmark: Fig. 11: SNAP bottom DRAM-die heat map, two configs.

Regenerates the paper artifact and prints the reproduced rows/series.
"""

from repro.experiments.thermal_eval import run_fig11


def test_bench_fig11(benchmark, show):
    """Fig. 11: SNAP bottom DRAM-die heat map, two configs."""
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    show(result)
