"""Benchmark: X4 technology-parameter sensitivity (beyond the paper)."""

from repro.experiments.sensitivity import run_sensitivity_study


def test_bench_sensitivity(benchmark, show):
    """X4: tornado sensitivity of perf and power to technology constants."""
    show(benchmark.pedantic(run_sensitivity_study, rounds=1, iterations=1))
