"""Transient thermal stepping, the closed-loop governor, and the
serve-path thermal monitor (PR 10)."""

import asyncio

import numpy as np
import pytest

from repro.core.config import EHPConfig, PAPER_BEST_MEAN
from repro.core.node import NodeModel
from repro.core.thermal_governor import (
    ThermalGovernor,
    ThermalPhase,
)
from repro.thermal.analysis import DRAM_LIMIT_C, ThermalModel
from repro.thermal.grid import (
    STEP_ENGINES,
    TemperatureFieldBatch,
    ThermalGrid,
)
from repro.thermal.transient import (
    PowerPhase,
    ThermalMonitor,
    TransientSolver,
)
from repro.workloads.catalog import get_application

HOT = EHPConfig(n_cus=384, gpu_freq=1.5e9, bandwidth=3e12)


@pytest.fixture(scope="module")
def grid():
    return ThermalGrid(66.0, 22.0, nx=22, ny=8)


@pytest.fixture(scope="module")
def maps(grid):
    rng = np.random.default_rng(7)
    return 0.5 * rng.random((grid.stack.n_layers, grid.ny, grid.nx))


class TestStepTransient:
    def test_constant_power_converges_to_steady(self, grid, maps):
        steady = grid.solve(maps)
        solver = TransientSolver(grid, dt=0.05)
        field, steps = solver.converge(maps, tol_c=1e-10)
        assert steps < 20_000
        err = float(np.abs(field.celsius - steady.celsius).max())
        assert err < 1e-6

    def test_oracle_and_factored_agree_per_step(self, grid, maps):
        solver = TransientSolver(grid, dt=0.01)
        temps = solver.initial_temps()
        for _ in range(5):
            temps = grid.step_transient(temps, maps, 0.01)
        fact = grid.step_transient(temps, maps, 0.01)
        oracle = grid.step_transient(temps, maps, 0.01, engine="oracle")
        assert float(np.abs(fact - oracle).max()) < 1e-9

    def test_factorization_cached_per_dt(self, grid, maps):
        temps = np.full(maps.shape, grid.stack.ambient_c)
        grid.step_transient(temps, maps, 0.01)
        grid.step_transient(temps, maps, 0.02)
        grid.step_transient(temps, maps, 0.01)
        assert set(grid._transient) >= {0.01, 0.02}

    def test_step_preserves_shape_and_input(self, grid, maps):
        temps = np.full(maps.shape, grid.stack.ambient_c)
        before = temps.copy()
        out = grid.step_transient(temps, maps, 0.01)
        assert out.shape == maps.shape
        assert np.array_equal(temps, before)

    def test_validation(self, grid, maps):
        temps = np.full(maps.shape, grid.stack.ambient_c)
        with pytest.raises(ValueError):
            grid.step_transient(temps, maps, 0.0)
        with pytest.raises(ValueError):
            grid.step_transient(temps, maps, 0.01, engine="magic")
        with pytest.raises(ValueError):
            grid.step_transient(temps[0], maps, 0.01)
        with pytest.raises(ValueError):
            grid.step_transient(temps, maps[:, :4], 0.01)
        assert STEP_ENGINES == ("factored", "oracle")

    def test_lockstep_many_matches_per_scenario(self, grid, maps):
        batch = np.stack([maps * s for s in (0.3, 0.7, 1.0)])
        temps = np.full(batch.shape, grid.stack.ambient_c)
        stepped = temps
        for _ in range(4):
            stepped = grid.step_transient_many(stepped, batch, 0.01)
        for s in range(3):
            solo = temps[s]
            for _ in range(4):
                solo = grid.step_transient(solo, batch[s], 0.01)
            assert np.array_equal(stepped[s], solo)

    def test_lockstep_many_oracle_engine(self, grid, maps):
        batch = np.stack([maps, maps * 0.5])
        temps = np.full(batch.shape, grid.stack.ambient_c)
        fact = grid.step_transient_many(temps, batch, 0.01)
        oracle = grid.step_transient_many(
            temps, batch, 0.01, engine="oracle"
        )
        assert float(np.abs(fact - oracle).max()) < 1e-9

    def test_lockstep_many_empty(self, grid):
        empty = np.empty((0, grid.stack.n_layers, grid.ny, grid.nx))
        out = grid.step_transient_many(empty, empty, 0.01)
        assert out.shape == empty.shape


class TestSolveBatch:
    def test_solve_many_matches_sequential_solves(self, grid, maps):
        batch = np.stack([maps * (1.0 + 0.1 * k) for k in range(4)])
        fields = grid.solve_many(batch)
        for k in range(4):
            solo = grid.solve(batch[k])
            assert np.array_equal(fields[k].celsius, solo.celsius)

    def test_solve_batch_peaks(self, grid, maps):
        batch = np.stack([maps, maps * 2.0])
        out = grid.solve_batch(batch)
        assert isinstance(out, TemperatureFieldBatch)
        assert len(out) == 2
        peaks = out.peaks("dram")
        assert peaks.shape == (2,)
        assert peaks[1] > peaks[0]
        assert np.array_equal(
            out.peaks(), out.celsius.max(axis=(1, 2, 3))
        )

    def test_solve_batch_empty(self, grid):
        empty = np.empty((0, grid.stack.n_layers, grid.ny, grid.nx))
        out = grid.solve_batch(empty)
        assert len(out) == 0
        assert out.fields() == []


class TestInvalidateGuard:
    def test_mutated_grid_never_serves_stale_factorization(self, maps):
        grid = ThermalGrid(66.0, 22.0, nx=22, ny=8)
        grid.solve(maps)  # caches system + factorization
        grid.width_m = 0.033  # narrower package, hotter cells
        fresh = ThermalGrid(33.0, 22.0, nx=22, ny=8)
        assert np.array_equal(
            grid.solve(maps).celsius, fresh.solve(maps).celsius
        )

    def test_mutation_invalidates_transient_cache(self, maps):
        grid = ThermalGrid(66.0, 22.0, nx=22, ny=8)
        temps = np.full(maps.shape, grid.stack.ambient_c)
        grid.step_transient(temps, maps, 0.01)
        assert grid._transient
        grid.stack = grid.stack.__class__(ambient_c=40.0)
        assert not grid._transient
        fresh = ThermalGrid(
            66.0, 22.0, nx=22, ny=8, stack=grid.stack
        )
        t_mut = np.full(maps.shape, 40.0)
        assert np.array_equal(
            grid.step_transient(t_mut, maps, 0.01),
            fresh.step_transient(t_mut, maps, 0.01),
        )

    def test_mutation_before_first_solve_is_free(self, maps):
        grid = ThermalGrid(66.0, 22.0, nx=22, ny=8)
        grid.nx = 22  # no cached state yet: plain attribute set
        assert grid._system is None
        grid.solve(maps)


class TestTransientSolver:
    def test_run_trace_shapes(self, grid, maps):
        solver = TransientSolver(grid, dt=0.01)
        trace = solver.run([
            PowerPhase(maps, 0.1), PowerPhase(maps * 0.2, 0.05),
        ])
        assert trace.steps == 15
        assert trace.times.shape == trace.peak_c.shape == (15,)
        assert np.all(np.diff(trace.times) > 0)
        assert trace.max_peak_c == trace.layer_peak_c.max()
        assert trace.final.celsius.shape == maps.shape
        # Warm-up under power: the watched peak must have risen.
        assert trace.peak_c[-1] > grid.stack.ambient_c

    def test_empty_schedule_rejected(self, grid):
        with pytest.raises(ValueError):
            TransientSolver(grid).run([])

    def test_phase_and_solver_validation(self, grid, maps):
        with pytest.raises(ValueError):
            PowerPhase(maps, 0.0)
        with pytest.raises(ValueError):
            TransientSolver(grid, dt=-1.0)
        with pytest.raises(ValueError):
            TransientSolver(grid, engine="nope")

    def test_watch_layer_fallback(self, grid):
        solver = TransientSolver(grid, watch_layer="no-such-layer")
        assert solver.watch_layer is None

    def test_run_many_constant_and_per_step_traces(self, grid, maps):
        solver = TransientSolver(grid, dt=0.01)
        batch = np.stack([maps, maps * 0.5])
        final, peaks = solver.run_many(batch, 6)
        assert final.shape == batch.shape
        assert peaks.shape == (2, 6)
        # A per-step trace holding the same map every step is the same
        # integration.
        per_step = np.repeat(batch[:, None], 6, axis=1)
        final2, peaks2 = solver.run_many(per_step, 6)
        assert np.array_equal(final, final2)
        assert np.array_equal(peaks, peaks2)

    def test_run_many_validation(self, grid, maps):
        solver = TransientSolver(grid)
        batch = np.stack([maps])
        with pytest.raises(ValueError):
            solver.run_many(batch, 0)
        with pytest.raises(ValueError):
            solver.run_many(maps, 4)  # 3-D: missing scenario axis
        with pytest.raises(ValueError):
            solver.run_many(np.repeat(batch[:, None], 3, axis=1), 4)


class TestThermalMonitor:
    def test_fake_clock_stepping_is_deterministic(self, grid, maps):
        now = [100.0]
        solver = TransientSolver(grid, dt=0.01)
        monitor = ThermalMonitor(
            solver, maps, clock=lambda: now[0]
        )
        assert monitor.advance() == monitor.layer_peak_c  # no time passed
        now[0] += 0.055
        monitor.advance()
        expected = solver.initial_temps()
        for _ in range(5):
            expected = solver.step(expected, maps)
        assert np.array_equal(monitor.temps, expected)
        # The un-stepped 5 ms remainder carries into the next advance.
        now[0] += 0.005
        monitor.advance()
        expected = solver.step(expected, maps)
        assert np.array_equal(monitor.temps, expected)

    def test_catchup_is_bounded(self, grid, maps):
        now = [0.0]
        solver = TransientSolver(grid, dt=0.01)
        monitor = ThermalMonitor(
            solver, maps, clock=lambda: now[0], max_steps_per_advance=8
        )
        now[0] += 1e6  # an hour-scale gap must not integrate 1e8 steps
        monitor.advance()
        expected = solver.initial_temps()
        for _ in range(8):
            expected = solver.step(expected, maps)
        assert np.array_equal(monitor.temps, expected)

    def test_set_power_changes_trajectory(self, grid, maps):
        now = [0.0]
        solver = TransientSolver(grid, dt=0.01)
        monitor = ThermalMonitor(solver, maps, clock=lambda: now[0])
        now[0] += 0.1
        hot_peak = monitor.advance()
        monitor.set_power(np.zeros_like(maps))
        now[0] += 5.0
        cooled = monitor.advance()
        assert cooled < hot_peak


class TestThermalGovernor:
    @pytest.fixture(scope="class")
    def governor(self):
        return ThermalGovernor()

    @pytest.fixture(scope="class")
    def phases(self):
        return [
            ThermalPhase(get_application("MaxFlops"), 0.6),
            ThermalPhase(get_application("CoMD"), 0.3),
        ]

    def test_replay_exceeds_limit_governed_does_not(
        self, governor, phases
    ):
        replay = governor.replay(phases, HOT)
        governed = governor.run(phases, HOT)
        assert not replay.within_limit
        assert replay.max_peak_dram_c > DRAM_LIMIT_C
        assert governed.within_limit
        assert governed.time_over_limit_s == 0.0
        assert governed.throttle_events
        assert governed.steps == replay.steps

    def test_governor_only_backs_off(self, governor, phases):
        governed = governor.run(phases, HOT)
        for _, cfg in governed.phase_configs:
            assert cfg.gpu_freq <= HOT.gpu_freq
            assert cfg.n_cus <= HOT.n_cus
        for event in governed.throttle_events:
            assert event.gpu_freq <= HOT.gpu_freq
            assert event.n_cus <= HOT.n_cus

    def test_governed_work_costs_less_energy(self, governor, phases):
        replay = governor.replay(phases, HOT)
        governed = governor.run(phases, HOT)
        assert 0.0 < governed.work_flops < replay.work_flops
        assert 0.0 < governed.energy_j < replay.energy_j

    def test_cool_point_untouched(self, governor):
        phases = [ThermalPhase(get_application("CoMD"), 0.2)]
        governed = governor.run(phases, PAPER_BEST_MEAN)
        assert governed.phase_configs[0][1] == PAPER_BEST_MEAN
        assert not governed.throttle_events

    def test_empty_schedule_rejected(self, governor):
        with pytest.raises(ValueError):
            governor.run([], HOT)

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            ThermalPhase(get_application("CoMD"), 0.0)

    def test_cap_is_memoized(self, governor):
        p = get_application("MaxFlops")
        a = governor.thermal_cap(p, HOT)
        solves_before = len(governor._steady_peak_cache)
        b = governor.thermal_cap(p, HOT)
        assert a is b
        assert len(governor._steady_peak_cache) == solves_before

    def test_as_dict_round_trips_to_json(self, governor, phases):
        import json

        governed = governor.run(phases, HOT)
        blob = json.dumps(governed.as_dict())
        assert "throttle_events" in blob


class TestServeThermalMonitor:
    def test_drain_advances_monitor_and_stats_report_peak(self):
        from repro.serve.requests import OK, PointRequest
        from repro.serve.service import EvalService

        now = [0.0]

        def clock():
            return now[0]

        model = NodeModel()
        thermal = ThermalModel(nx=22, ny=8)
        maps = thermal.build_power_maps(
            model.evaluate(get_application("MaxFlops"), HOT).power
        )
        solver = TransientSolver(thermal.grid, dt=0.01)
        monitor = ThermalMonitor(solver, maps, clock=clock)

        async def scenario():
            service = EvalService(
                model=model, clock=clock, thermal_monitor=monitor,
                batch_window_s=0.0,
            )
            async with service:
                now[0] += 0.2  # simulated time passes before traffic
                request = PointRequest(
                    get_application("CoMD"), 320, 1.0e9, 3.0e12
                )
                response = await service.submit(request)
                assert response.status == OK
                return service.stats()

        stats = asyncio.run(scenario())
        # The drain's throttled publish advanced the simulated package.
        assert monitor.temps.max() > thermal.stack.ambient_c
        assert stats["thermal_dram_peak_c"] == monitor.layer_peak_c


def test_thermal_loop_cli_smoke(capsys):
    from repro.__main__ import main

    code = main([
        "thermal-loop", "--thermal-steps", "30", "--thermal-cycles", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "governed" in out and "EXCEEDS" in out
