"""EHPConfig and DesignSpace."""

import pytest

from repro.core.config import (
    PAPER_BEST_MEAN,
    PAPER_BEST_MEAN_OPTIMIZED,
    DesignSpace,
    EHPConfig,
)
from repro.util.units import GHZ, MHZ, TB


class TestEHPConfig:
    def test_defaults_match_paper_structure(self):
        c = EHPConfig()
        assert c.n_gpu_chiplets == 8
        assert c.n_cpu_cores == 32
        assert c.dram3d_capacity == pytest.approx(256e9)

    def test_area_budget_enforced(self):
        with pytest.raises(ValueError, match="area budget"):
            EHPConfig(n_cus=416)
        EHPConfig(n_cus=384)  # the Section VI cap itself is fine

    def test_chiplet_divisibility(self):
        with pytest.raises(ValueError, match="chiplets"):
            EHPConfig(n_cus=300)
        assert EHPConfig(n_cus=320).cus_per_chiplet == 40

    def test_peak_flops(self):
        c = EHPConfig(n_cus=320, gpu_freq=1 * GHZ)
        assert c.peak_dp_flops == pytest.approx(20.48e12)

    def test_ops_per_byte(self):
        c = PAPER_BEST_MEAN
        assert c.ops_per_byte == pytest.approx(320 / 3000, rel=1e-6)

    def test_label(self):
        assert PAPER_BEST_MEAN.label() == "320 / 1000 / 3"
        assert PAPER_BEST_MEAN_OPTIMIZED.label() == "288 / 1100 / 3"

    def test_with_axes(self):
        c = PAPER_BEST_MEAN.with_axes(n_cus=256)
        assert c.n_cus == 256
        assert c.gpu_freq == PAPER_BEST_MEAN.gpu_freq

    def test_with_axes_validates(self):
        with pytest.raises(ValueError):
            PAPER_BEST_MEAN.with_axes(n_cus=999)


class TestDesignSpace:
    def test_default_grid_exceeds_thousand(self):
        # The paper's "over a thousand different hardware configurations".
        space = DesignSpace()
        assert space.size > 1000

    def test_default_grid_includes_all_table2_configs(self):
        space = DesignSpace()
        table2 = [
            (256, 1100, 4), (256, 1200, 4), (224, 1400, 5), (384, 700, 5),
            (192, 1500, 6), (224, 1300, 6), (352, 900, 7), (384, 925, 1),
            (320, 1000, 3),
        ]
        for n, f, b in table2:
            assert n in space.cu_counts
            assert f * MHZ in space.frequencies
            assert b * TB in space.bandwidths

    def test_grid_arrays_cover_size(self):
        space = DesignSpace()
        cus, freqs, bws = space.grid_arrays()
        assert len(cus) == len(freqs) == len(bws) == space.size

    def test_config_at_roundtrip(self):
        space = DesignSpace()
        for index in (0, 1, 100, space.size - 1):
            cfg = space.config_at(index)
            # Recompute the flat index from axis positions.
            i_cu = list(space.cu_counts).index(cfg.n_cus)
            i_f = list(space.frequencies).index(cfg.gpu_freq)
            i_b = list(space.bandwidths).index(cfg.bandwidth)
            flat = (
                i_cu * len(space.frequencies) + i_f
            ) * len(space.bandwidths) + i_b
            assert flat == index

    def test_config_at_bounds(self):
        space = DesignSpace()
        with pytest.raises(IndexError):
            space.config_at(space.size)
        with pytest.raises(IndexError):
            space.config_at(-1)

    def test_grid_arrays_match_config_at(self):
        space = DesignSpace(
            cu_counts=(192, 320), frequencies=(1e9,), bandwidths=(1e12, 3e12)
        )
        cus, freqs, bws = space.grid_arrays()
        for i in range(space.size):
            cfg = space.config_at(i)
            assert cfg.n_cus == int(cus[i])
            assert cfg.gpu_freq == freqs[i]
            assert cfg.bandwidth == bws[i]

    def test_iter_configs(self):
        space = DesignSpace(
            cu_counts=(192,), frequencies=(1e9, 1.1e9), bandwidths=(1e12,)
        )
        configs = list(space.iter_configs())
        assert len(configs) == 2
        assert configs[0].gpu_freq == 1e9

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(cu_counts=())

    def test_area_budget_checked(self):
        with pytest.raises(ValueError):
            DesignSpace(cu_counts=(448,))
