"""Traffic matrices and the event-driven NoC simulator."""

import numpy as np
import pytest

from repro.noc.simulator import NocSimulator, SimMessage
from repro.noc.topology import EHPTopology
from repro.noc.traffic import (
    TrafficMatrix,
    chiplet_traffic_summary,
    gpu_dram_traffic_matrix,
)
from repro.workloads.catalog import get_application


@pytest.fixture(scope="module")
def topo():
    return EHPTopology()


class TestTrafficMatrix:
    def test_shape_checked(self):
        with pytest.raises(ValueError):
            TrafficMatrix(("a",), ("b", "c"), np.zeros((1, 1)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix(("a",), ("b",), np.array([[-1.0]]))

    def test_uniform_interleave_remote_fraction(self, topo):
        # Pure 1/8 locality: 7/8 of traffic leaves the chiplet.
        m = gpu_dram_traffic_matrix(
            topo, 1e9, locality=1 / 8, coherence_fraction=0.0
        )
        assert m.out_of_chiplet_fraction(topo) == pytest.approx(7 / 8)

    def test_full_locality_keeps_traffic_home(self, topo):
        m = gpu_dram_traffic_matrix(
            topo, 1e9, locality=1.0, coherence_fraction=0.0
        )
        assert m.out_of_chiplet_fraction(topo) == pytest.approx(0.0)

    def test_coherence_traffic_is_always_remote(self, topo):
        m = gpu_dram_traffic_matrix(
            topo, 1e9, locality=1.0, coherence_fraction=0.1
        )
        assert m.out_of_chiplet_fraction(topo) == pytest.approx(0.1)

    def test_total_conserved(self, topo):
        m = gpu_dram_traffic_matrix(topo, 3.5e9)
        assert m.total == pytest.approx(3.5e9)

    def test_mean_latency_grows_with_remote_share(self, topo):
        local = gpu_dram_traffic_matrix(topo, 1e9, locality=1.0)
        remote = gpu_dram_traffic_matrix(topo, 1e9, locality=1 / 8)
        assert remote.mean_latency(topo) > local.mean_latency(topo)


class TestChipletTrafficSummary:
    def test_fig7_ranges(self, topo):
        # Paper: remote traffic 60-95%, perf >= 87% of monolithic.
        for name in ("XSBench", "SNAP", "CoMD"):
            s = chiplet_traffic_summary(
                get_application(name), 320, 1e9, 3e12, topology=topo
            )
            remote, perf = s.as_percentages()
            assert 55.0 <= remote <= 95.0, name
            assert 80.0 <= perf <= 100.5, name

    def test_chiplet_never_faster_than_monolithic(self, topo):
        for name in ("XSBench", "SNAP", "CoMD", "MaxFlops"):
            s = chiplet_traffic_summary(
                get_application(name), 320, 1e9, 3e12, topology=topo
            )
            assert s.perf_vs_monolithic <= 1.0 + 1e-9


class TestNocSimulator:
    def test_empty_run(self):
        res = NocSimulator().run([])
        assert res.delivered == 0

    def test_single_message_latency(self):
        sim = NocSimulator(link_bandwidth=1e12)
        res = sim.run([SimMessage("gpu0", "dram0", 64, 0.0)])
        assert res.delivered == 1
        # One 3D-stack hop (2 ns) plus 64 B serialization.
        assert res.mean_latency == pytest.approx(2e-9 + 64 / 1e12)

    def test_contention_increases_latency(self):
        sim = NocSimulator(link_bandwidth=64e9)
        sparse = [
            SimMessage("gpu0", "dram5", 4096, i * 1e-6) for i in range(50)
        ]
        dense = [
            SimMessage("gpu0", "dram5", 4096, 0.0) for _ in range(50)
        ]
        lat_sparse = sim.run(sparse).mean_latency
        lat_dense = NocSimulator(link_bandwidth=64e9).run(dense).mean_latency
        assert lat_dense > lat_sparse

    def test_throughput_bounded_by_link(self):
        bw = 100e9
        sim = NocSimulator(link_bandwidth=bw)
        msgs = [SimMessage("gpu0", "dram5", 8192, 0.0) for _ in range(200)]
        res = sim.run(msgs)
        assert res.throughput <= bw * 1.05

    def test_disjoint_paths_do_not_contend(self):
        sim = NocSimulator(link_bandwidth=64e9)
        local = [
            SimMessage(f"gpu{i}", f"dram{i}", 4096, 0.0) for i in range(8)
        ] * 20
        res = sim.run(local)
        # All local 3D hops: latency stays near the uncontended value
        # for one chiplet's queue (messages to distinct stacks never
        # share links).
        single = NocSimulator(link_bandwidth=64e9).run(
            [SimMessage("gpu0", "dram0", 4096, 0.0)] * 20
        )
        assert res.mean_latency == pytest.approx(
            single.mean_latency, rel=1e-6
        )

    def test_message_validation(self):
        with pytest.raises(ValueError):
            SimMessage("a", "b", 0.0, 0.0)
        with pytest.raises(ValueError):
            SimMessage("a", "b", 64.0, -1.0)

    def test_p99_at_least_mean(self):
        sim = NocSimulator()
        msgs = [
            SimMessage("gpu0", "dram5", 4096, i * 1e-8) for i in range(500)
        ]
        res = sim.run(msgs)
        assert res.p99_latency >= res.mean_latency * 0.99

    def test_links_property_removed(self):
        # The deprecated NocSimulator.links alias was removed after one
        # deprecation cycle; link stats live on the SimResult.
        sim = NocSimulator()
        msgs = [
            SimMessage("gpu0", "dram5", 4096, i * 1e-8) for i in range(50)
        ]
        res = sim.run(msgs)
        assert res.link_stats
        with pytest.raises(AttributeError):
            sim.links
