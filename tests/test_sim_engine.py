"""Discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue, Simulator


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while (e := q.pop()) is not None:
            e.action()
        assert order == ["a", "b", "c"]

    def test_stable_tie_breaking(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, lambda i=i: order.append(i))
        while (e := q.pop()) is not None:
            e.action()
        assert order == [0, 1, 2, 3, 4]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        handle = q.push(1.0, lambda: fired.append(1))
        handle.cancelled = True
        assert q.pop() is None
        assert not fired

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        h.cancelled = True
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, lambda: times.append(sim.now))
        end = sim.run()
        assert times == [1.0, 2.5]
        assert end == 2.5

    def test_chained_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(1.0, second)

        def second():
            log.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 2.0]

    def test_run_until_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)
