"""EHP topology and routing."""

import networkx as nx
import pytest

from repro.noc.routing import hop_latency, monolithic_latency, route
from repro.noc.topology import EHPTopology, NodeKind


@pytest.fixture(scope="module")
def topo():
    t = EHPTopology()
    t.validate()
    return t


class TestTopologyStructure:
    def test_counts(self, topo):
        assert len(topo.gpu_chiplets) == 8
        assert len(topo.cpu_chiplets) == 8
        assert len(topo.dram_stacks) == 8
        assert len(topo.nodes_of_kind(NodeKind.INTERPOSER)) == 6
        assert len(topo.nodes_of_kind(NodeKind.EXT_INTERFACE)) == 8

    def test_connected(self, topo):
        assert nx.is_connected(topo.graph)

    def test_every_gpu_has_local_dram(self, topo):
        for gpu in topo.gpu_chiplets:
            dram = topo.local_dram(gpu)
            assert dram in topo.dram_stacks
            assert topo.graph.has_edge(gpu, dram)

    def test_local_dram_rejects_non_gpu(self, topo):
        with pytest.raises(ValueError):
            topo.local_dram("cpu0")

    def test_cpu_clusters_central(self, topo):
        # CPU chiplets sit on interposers 2 and 3 (the center of the
        # 6-interposer row), per Fig. 2's NUMA-minimizing placement.
        interposers = {topo.interposer_of(c) for c in topo.cpu_chiplets}
        assert interposers == {2, 3}

    def test_gpu_clusters_flank(self, topo):
        interposers = {topo.interposer_of(g) for g in topo.gpu_chiplets}
        assert interposers == {0, 1, 4, 5}

    def test_same_chiplet_relation(self, topo):
        assert topo.same_chiplet("gpu0", "dram0")
        assert topo.same_chiplet("gpu0", "gpu0")
        assert not topo.same_chiplet("gpu0", "dram1")
        assert not topo.same_chiplet("gpu0", "cpu0")


class TestRouting:
    def test_local_dram_is_one_stack_hop(self, topo):
        r = route(topo, "gpu0", "dram0")
        assert r.n_hops == 1
        assert not r.crosses_chiplet
        assert r.tsv_hops == 0

    def test_remote_dram_pays_two_tsvs(self, topo):
        # Section V-A: out-of-chiplet messages pay two vertical hops.
        r = route(topo, "gpu0", "dram7")
        assert r.tsv_hops == 2
        assert r.crosses_chiplet
        assert r.interposer_hops >= 1

    def test_remote_latency_exceeds_local(self, topo):
        assert hop_latency(topo, "gpu0", "dram7") > hop_latency(
            topo, "gpu0", "dram0"
        )

    def test_farther_interposers_cost_more(self, topo):
        # gpu0 is on interposer 0; gpu7's stack is on interposer 5.
        near = hop_latency(topo, "gpu0", "dram2")  # interposer 1
        far = hop_latency(topo, "gpu0", "dram7")  # interposer 5
        assert far > near

    def test_monolithic_latency_removes_tsv_hops(self, topo):
        chiplet = hop_latency(topo, "gpu0", "dram7")
        mono = monolithic_latency(topo, "gpu0", "dram7")
        assert mono < chiplet
        # Exactly the two TSV hops' worth (5 ns each).
        assert chiplet - mono == pytest.approx(2 * 5e-9)

    def test_cpu_to_gpu_route_exists(self, topo):
        r = route(topo, "cpu0", "gpu0")
        assert r.latency > 0

    def test_unknown_endpoint_raises(self, topo):
        with pytest.raises(KeyError):
            route(topo, "gpu0", "nonexistent")

    def test_routes_symmetric_latency(self, topo):
        assert hop_latency(topo, "gpu1", "dram6") == pytest.approx(
            hop_latency(topo, "dram6", "gpu1")
        )
