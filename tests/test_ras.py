"""RAS substrate: faults, ECC, RMT, MTTF."""

import pytest

from repro.ras.ecc import (
    Chipkill,
    NoEcc,
    SECDED,
    ecc_overhead_bits,
    interleaving_factor_for_rate,
    silent_error_rate,
)
from repro.ras.faults import ComponentFaultRates, FaultModel, fit_to_mttf_hours
from repro.ras.mttf import SystemReliability
from repro.ras.rmt import RmtCostModel


class TestFaultModel:
    def test_fit_to_mttf(self):
        assert fit_to_mttf_hours(1000.0) == pytest.approx(1e6)
        assert fit_to_mttf_hours(0.0) == float("inf")

    def test_raw_fit_scales_with_memory(self):
        small = FaultModel(ext_dram_gb=512.0)
        big = FaultModel(ext_dram_gb=2048.0)
        assert big.raw_node_fit() > small.raw_node_fit()

    def test_protection_reduces_fit(self):
        fm = FaultModel()
        assert fm.uncorrected_node_fit(
            memory_coverage=0.999, gpu_coverage=0.95, cpu_coverage=0.99,
            memory_hard_coverage=0.99,
        ) < fm.raw_node_fit()

    def test_coverage_bounds_checked(self):
        with pytest.raises(ValueError):
            FaultModel().uncorrected_node_fit(memory_coverage=1.5)

    def test_component_rates_validated(self):
        with pytest.raises(ValueError):
            ComponentFaultRates("x", transient_fit=-1.0, hard_fit=0.0)


class TestEcc:
    def test_hamming_overhead_72_64(self):
        # The canonical SEC-DED word: 64 data bits need 8 check bits.
        assert ecc_overhead_bits(64) == 8

    def test_overhead_grows_slowly(self):
        assert ecc_overhead_bits(128) == 9
        assert ecc_overhead_bits(256) == 10

    def test_secded_is_one_eighth(self):
        assert SECDED.storage_overhead == pytest.approx(8 / 64)

    def test_chipkill_covers_more_hard_faults(self):
        assert Chipkill.coverage_hard > SECDED.coverage_hard
        assert Chipkill.storage_overhead > SECDED.storage_overhead

    def test_effective_capacity(self):
        assert SECDED.effective_capacity(72e9) == pytest.approx(
            72e9 / 1.125
        )

    def test_silent_error_rate(self):
        assert silent_error_rate(1000.0, NoEcc) == 1000.0
        assert silent_error_rate(1000.0, Chipkill) < 1.0

    def test_interleaving_factor_power_of_two(self):
        k = interleaving_factor_for_rate(1e-4, 1e-9)
        assert k >= 1 and (k & (k - 1)) == 0

    def test_interleaving_trivial_when_target_met(self):
        assert interleaving_factor_for_rate(1e-12, 0.5) == 1


class TestRmt:
    def test_free_on_idle_gpu(self):
        rmt = RmtCostModel()
        assert rmt.slowdown(0.4) == pytest.approx(1.0)

    def test_two_x_on_saturated_gpu(self):
        rmt = RmtCostModel(compare_overhead=0.0)
        assert rmt.slowdown(1.0) == pytest.approx(2.0)

    def test_paper_motivation_underutilized_gpus(self):
        # Section II-A5: RMT exploits the GPU not being fully utilized.
        rmt = RmtCostModel()
        assert rmt.slowdown(0.45) < rmt.slowdown(0.9)

    def test_energy_always_paid(self):
        rmt = RmtCostModel()
        assert rmt.energy_overhead(0.4) > 0.0

    def test_covered_fit(self):
        rmt = RmtCostModel(detection_coverage=0.95)
        assert rmt.covered_fit_reduction(100.0) == pytest.approx(95.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RmtCostModel(detection_coverage=1.1)
        with pytest.raises(ValueError):
            RmtCostModel().slowdown(1.5)


class TestSystemReliability:
    def test_stronger_protection_longer_mttf(self):
        weak = SystemReliability(memory_ecc=SECDED)
        strong = SystemReliability(memory_ecc=Chipkill, rmt=RmtCostModel())
        assert strong.system_mttf_hours() > weak.system_mttf_hours()

    def test_system_mttf_divides_by_nodes(self):
        one = SystemReliability(n_nodes=1)
        many = SystemReliability(n_nodes=100_000)
        assert many.system_mttf_hours() == pytest.approx(
            one.system_mttf_hours() / 100_000
        )

    def test_week_target_budget(self):
        sr = SystemReliability()
        # 1e9 / (168 h * 1e5 nodes) ~= 59.5 FIT per node.
        assert sr.required_node_fit_for_week() == pytest.approx(59.5, abs=0.5)

    def test_week_target_is_open_challenge(self):
        # The paper calls resiliency an open research problem; with
        # current technique parameters the target is indeed not met.
        best = SystemReliability(
            memory_ecc=Chipkill,
            rmt=RmtCostModel(detection_coverage=0.999),
        )
        assert not best.meets_week_target()
        assert best.intervention_interval_days() > 1.0

    def test_intervention_days_consistent(self):
        sr = SystemReliability()
        assert sr.intervention_interval_days() == pytest.approx(
            sr.system_mttf_hours() / 24.0
        )
