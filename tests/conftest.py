"""Shared fixtures for the test suite."""

import pytest

from repro.core.config import DesignSpace, EHPConfig
from repro.core.node import NodeModel
from repro.perfmodel.machine import MachineParams
from repro.workloads.catalog import APPLICATIONS
from repro.workloads.kernels import KernelCategory, KernelProfile


@pytest.fixture(scope="session")
def model() -> NodeModel:
    """The default calibrated node model."""
    return NodeModel()


@pytest.fixture(scope="session")
def machine() -> MachineParams:
    """Default machine parameters."""
    return MachineParams()


@pytest.fixture(scope="session")
def space() -> DesignSpace:
    """The paper's full exploration grid."""
    return DesignSpace()


@pytest.fixture(scope="session")
def small_space() -> DesignSpace:
    """A coarse grid for fast sweep tests."""
    return DesignSpace(
        cu_counts=(192, 256, 320, 384),
        frequencies=(700e6, 1000e6, 1300e6),
        bandwidths=(1e12, 3e12, 5e12, 7e12),
    )


@pytest.fixture(scope="session")
def apps() -> dict:
    """The Table I catalog."""
    return dict(APPLICATIONS)


@pytest.fixture(scope="session")
def maxflops() -> KernelProfile:
    return APPLICATIONS["MaxFlops"]


@pytest.fixture(scope="session")
def lulesh() -> KernelProfile:
    return APPLICATIONS["LULESH"]


@pytest.fixture(scope="session")
def comd() -> KernelProfile:
    return APPLICATIONS["CoMD"]


@pytest.fixture
def generic_profile() -> KernelProfile:
    """A mid-range synthetic profile independent of the catalog."""
    return KernelProfile(
        name="generic",
        category=KernelCategory.BALANCED,
        description="synthetic test kernel",
        flops=1.0e12,
        bytes_per_flop=0.4,
        parallel_fraction=0.8,
        cache_hit_rate=0.5,
        thrash_pressure=0.2,
        latency_sensitivity=0.3,
        mlp_per_cu=32.0,
        ext_memory_fraction=0.5,
        cu_utilization=0.6,
    )


@pytest.fixture(scope="session")
def best_mean_config() -> EHPConfig:
    """The paper's best-mean design point."""
    return EHPConfig(n_cus=320, gpu_freq=1.0e9, bandwidth=3.0e12)
