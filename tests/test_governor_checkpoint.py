"""DVFS governor and checkpoint/restart models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import EHPConfig, PAPER_BEST_MEAN
from repro.core.governor import (
    DvfsGovernor,
    GovernorDecision,
    PhaseObservation,
)
from repro.core.node import NodeModel
from repro.ras.checkpoint import CheckpointModel
from repro.workloads.catalog import get_application


class TestPhaseObservation:
    def test_measure_from_model(self):
        obs = PhaseObservation.measure(
            NodeModel(), get_application("LULESH"), PAPER_BEST_MEAN
        )
        assert obs.ops_per_byte > 0
        assert 0.0 <= obs.bw_utilization <= 1.0

    def test_compute_kernel_high_ops_per_byte(self):
        hot = PhaseObservation.measure(
            NodeModel(), get_application("MaxFlops"), PAPER_BEST_MEAN
        )
        cold = PhaseObservation.measure(
            NodeModel(), get_application("SNAP"), PAPER_BEST_MEAN
        )
        assert hot.ops_per_byte > cold.ops_per_byte

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseObservation(-1.0, 0.5, 0.5)
        with pytest.raises(ValueError):
            PhaseObservation(1.0, 1.5, 0.5)


class TestDvfsGovernor:
    @pytest.fixture(scope="class")
    def governor(self):
        return DvfsGovernor(max_perf_loss=0.02)

    def test_compute_kernel_left_alone(self, governor):
        # MaxFlops uses everything; any back-off costs >2% performance.
        d = governor.decide(get_application("MaxFlops"), PAPER_BEST_MEAN)
        assert d.config == PAPER_BEST_MEAN
        assert d.gated_cus == 0

    def test_memory_kernel_backed_off(self, governor):
        # Thrash-prone kernels gain efficiency (and sometimes raw
        # performance) from gating CUs or lowering frequency.
        d = governor.decide(get_application("LULESH"), PAPER_BEST_MEAN)
        changed = d.config != PAPER_BEST_MEAN
        assert changed
        assert d.predicted_perf_loss <= 0.02

    def test_decision_improves_perf_per_watt(self, governor):
        model = NodeModel()
        p = get_application("SNAP")
        d = governor.decide(p, PAPER_BEST_MEAN)
        base = model.evaluate(p, PAPER_BEST_MEAN)
        governed = model.evaluate(p, d.config)
        assert float(governed.perf_per_watt) >= float(base.perf_per_watt)

    def test_governor_never_raises_frequency(self, governor):
        for name in ("LULESH", "CoMD", "SNAP"):
            d = governor.decide(get_application(name), PAPER_BEST_MEAN)
            assert d.config.gpu_freq <= PAPER_BEST_MEAN.gpu_freq

    def test_run_phases_saves_energy(self, governor):
        phases = [
            get_application("LULESH"),
            get_application("SNAP"),
            get_application("MaxFlops"),
        ]
        out = governor.run_phases(phases, PAPER_BEST_MEAN)
        assert out["energy_saving"] > 0.0
        assert out["governed_energy_j"] < out["base_energy_j"]

    def test_perf_loss_budget_respected(self):
        strict = DvfsGovernor(max_perf_loss=0.0)
        d = strict.decide(get_application("CoMD"), PAPER_BEST_MEAN)
        assert d.predicted_perf_loss <= 0.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            DvfsGovernor(freq_ladder=[])
        with pytest.raises(ValueError):
            DvfsGovernor(cu_gate_step=0)
        with pytest.raises(ValueError):
            DvfsGovernor(max_perf_loss=1.0)
        with pytest.raises(ValueError):
            DvfsGovernor().run_phases([], PAPER_BEST_MEAN)


class TestRunPhasesEdgeCases:
    def test_empty_phase_list_rejected(self):
        with pytest.raises(ValueError):
            DvfsGovernor().run_phases([], PAPER_BEST_MEAN)

    def test_single_candidate_config_is_noop(self):
        # A one-entry ladder at the config's own frequency plus a gate
        # step spanning every CU leaves exactly one candidate — the
        # starting point itself — so the governor must sit still.
        governor = DvfsGovernor(
            freq_ladder=[PAPER_BEST_MEAN.gpu_freq],
            cu_gate_step=PAPER_BEST_MEAN.n_cus,
        )
        profile = get_application("LULESH")
        assert governor._candidates(PAPER_BEST_MEAN) == [
            (PAPER_BEST_MEAN, 0)
        ]
        d = governor.decide(profile, PAPER_BEST_MEAN)
        assert d.config == PAPER_BEST_MEAN
        assert d.gated_cus == 0
        assert d.predicted_perf_loss == 0.0
        out = governor.run_phases([profile], PAPER_BEST_MEAN)
        assert out["slowdown"] == pytest.approx(0.0)
        assert out["energy_saving"] == pytest.approx(0.0)

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(("MaxFlops", "CoMD", "LULESH", "SNAP")),
        n_chiplets=st.sampled_from((1, 2, 4, 8)),
        cus_per_chiplet=st.integers(min_value=1, max_value=48),
        freq_mhz=st.integers(min_value=700, max_value=1500),
        ladder_mhz=st.lists(
            st.integers(min_value=500, max_value=2000),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        max_perf_loss=st.floats(min_value=0.0, max_value=0.2),
    )
    def test_governor_only_backs_off(
        self, name, n_chiplets, cus_per_chiplet, freq_mhz, ladder_mhz,
        max_perf_loss,
    ):
        # The DSE sets the cap; whatever the ladder offers (including
        # frequencies above the cap), the governor may only move down
        # in both frequency and CU count.
        config = EHPConfig(
            n_cus=n_chiplets * cus_per_chiplet,
            gpu_freq=freq_mhz * 1e6,
            n_gpu_chiplets=n_chiplets,
        )
        governor = DvfsGovernor(
            freq_ladder=[f * 1e6 for f in ladder_mhz],
            max_perf_loss=max_perf_loss,
        )
        d = governor.decide(get_application(name), config)
        assert d.config.gpu_freq <= config.gpu_freq
        assert d.config.n_cus <= config.n_cus
        assert d.config.n_cus == config.n_cus - d.gated_cus
        assert d.config.n_cus % config.n_gpu_chiplets == 0


class TestCheckpointModel:
    def test_optimal_interval_is_young(self):
        cm = CheckpointModel()
        mttf = 3600.0
        assert cm.optimal_interval(mttf) == pytest.approx(
            math.sqrt(2.0 * cm.checkpoint_cost_s * mttf)
        )

    def test_efficiency_increases_with_mttf(self):
        cm = CheckpointModel()
        effs = [cm.efficiency(m) for m in (600.0, 3600.0, 86400.0)]
        assert effs == sorted(effs)
        assert all(0.0 < e < 1.0 for e in effs)

    def test_optimal_interval_beats_fixed(self):
        cm = CheckpointModel()
        mttf = 7200.0
        best = cm.efficiency(mttf)
        for factor in (0.2, 0.5, 2.0, 5.0):
            tau = cm.optimal_interval(mttf) * factor
            assert cm.efficiency(mttf, tau) <= best + 1e-3

    def test_plan_summary(self):
        cm = CheckpointModel()
        plan = cm.plan(3600.0)
        assert plan.overhead == pytest.approx(1.0 - plan.efficiency)
        assert plan.mttf_s == 3600.0

    def test_cheaper_checkpoints_raise_efficiency(self):
        slow = CheckpointModel(io_bandwidth=10e9)
        fast = CheckpointModel(io_bandwidth=200e9)
        assert fast.efficiency(3600.0) > slow.efficiency(3600.0)

    def test_required_mttf_inverts_efficiency(self):
        cm = CheckpointModel()
        mttf = cm.required_mttf_for_efficiency(0.98)
        assert cm.efficiency(mttf) == pytest.approx(0.98, abs=0.002)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointModel(io_bandwidth=0.0)
        with pytest.raises(ValueError):
            CheckpointModel().efficiency(0.0)
        with pytest.raises(ValueError):
            CheckpointModel().required_mttf_for_efficiency(1.5)


class TestRasToCheckpointPipeline:
    def test_system_mttf_drives_machine_efficiency(self):
        # End-to-end: protection choice -> system MTTF -> delivered
        # machine efficiency under optimal checkpointing.
        from repro.ras.ecc import Chipkill, SECDED
        from repro.ras.mttf import SystemReliability
        from repro.ras.rmt import RmtCostModel

        cm = CheckpointModel()
        weak = SystemReliability(memory_ecc=SECDED)
        strong = SystemReliability(
            memory_ecc=Chipkill, rmt=RmtCostModel(detection_coverage=0.999)
        )
        eff_weak = cm.efficiency(weak.system_mttf_hours() * 3600.0)
        eff_strong = cm.efficiency(strong.system_mttf_hours() * 3600.0)
        assert eff_strong > eff_weak
        assert eff_strong > 0.9
