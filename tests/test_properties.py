"""Hypothesis property tests on core invariants across modules.

These complement the per-module tests with randomized invariants: the
performance model's monotonicities and conservation laws, the power
model's positivity and scaling, and the data-structure substrates'
behavioural contracts.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.config import EHPConfig
from repro.core.node import NodeModel
from repro.memsys.dramcache import DramCache
from repro.memsys.interleave import AddressInterleaver
from repro.perfmodel.roofline import evaluate_kernel
from repro.power.components import PowerParams
from repro.ras.checkpoint import CheckpointModel
from repro.ras.ecc import ecc_overhead_bits
from repro.workloads.kernels import KernelCategory, KernelProfile

cus = st.sampled_from([192, 224, 256, 288, 320, 352, 384])
freqs = st.floats(min_value=0.7e9, max_value=1.5e9)
bws = st.floats(min_value=1e12, max_value=7e12)


def random_profile(draw) -> KernelProfile:
    return KernelProfile(
        name="h",
        category=KernelCategory.BALANCED,
        description="hypothesis",
        flops=1e12,
        bytes_per_flop=draw(st.floats(min_value=0.001, max_value=2.5)),
        parallel_fraction=draw(st.floats(min_value=0.3, max_value=1.0)),
        cache_hit_rate=draw(st.floats(min_value=0.05, max_value=0.9)),
        thrash_pressure=draw(st.floats(min_value=0.0, max_value=1.5)),
        latency_sensitivity=draw(st.floats(min_value=0.005, max_value=0.9)),
        mlp_per_cu=draw(st.floats(min_value=4.0, max_value=96.0)),
        cu_utilization=draw(st.floats(min_value=0.2, max_value=0.98)),
    )


profiles = st.builds(lambda d: random_profile(lambda s: d.draw(s)), st.data())


class TestPerformanceModelInvariants:
    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=50, deadline=None)
    def test_time_and_rates_positive(self, data, n, f, b):
        p = random_profile(data.draw)
        m = evaluate_kernel(p, n, f, b)
        assert float(m.time) > 0
        assert float(m.flops_rate) > 0
        assert float(m.hit_rate) >= 0

    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=50, deadline=None)
    def test_achieved_close_to_hardware_peak(self, data, n, f, b):
        # The CU-scaling power law anchors at the 256-CU reference, so
        # strongly sub-linear kernels evaluated *below* the anchor can
        # slightly exceed the naive N*64*f peak (fewer CUs -> less
        # divergence/contention -> higher per-CU throughput). Bounded by
        # (256/N)^(1-alpha) * issue_efficiency ~= 1.11 at the grid edge.
        p = random_profile(data.draw)
        peak = 64.0 * n * f
        assert float(evaluate_kernel(p, n, f, b).flops_rate) <= peak * 1.15

    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=50, deadline=None)
    def test_traffic_conservation(self, data, n, f, b):
        p = random_profile(data.draw)
        m = evaluate_kernel(p, n, f, b, ext_fraction=0.4)
        miss = float(m.dram_traffic + m.ext_traffic)
        assert miss <= float(m.llc_traffic) + 1e-6

    @given(st.data(), cus, freqs)
    @settings(max_examples=40, deadline=None)
    def test_bandwidth_monotone(self, data, n, f):
        p = random_profile(data.draw)
        t1 = float(evaluate_kernel(p, n, f, 2e12).time)
        t2 = float(evaluate_kernel(p, n, f, 2.5e12).time)
        assert t2 <= t1 * (1 + 1e-9)

    @given(st.data(), cus, bws)
    @settings(max_examples=40, deadline=None)
    def test_frequency_degradation_bounded(self, data, n, b):
        # Higher frequency can *hurt* memory-bound kernels (the
        # contention-driven decline the paper's Section IV describes).
        # The bounded queueing term caps the loss: steepest right at the
        # saturation knee (low-bandwidth, latency-bound corner cases),
        # never a collapse (worst case: the latency multiplier rises
        # from 1+2*rho^4 toward its 3x cap as rho crosses 1).
        p = random_profile(data.draw)
        t1 = float(evaluate_kernel(p, n, 1.0e9, b).time)
        t2 = float(evaluate_kernel(p, n, 1.1e9, b).time)
        assert t2 <= t1 * 1.5


class TestPowerModelInvariants:
    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=40, deadline=None)
    def test_node_power_positive_and_bounded(self, data, n, f, b):
        p = random_profile(data.draw)
        model = NodeModel()
        ev = model.evaluate_arrays(p, float(n), f, b)
        power = float(ev.node_power)
        assert 30.0 < power < 600.0

    @given(cus, freqs)
    @settings(max_examples=40, deadline=None)
    def test_cu_dynamic_monotone_in_frequency(self, n, f):
        params = PowerParams()
        assume(f * 1.1 <= 1.6e9)
        lo = float(params.cu_dynamic_power(n, f, 0.5))
        hi = float(params.cu_dynamic_power(n, f * 1.1, 0.5))
        assert hi > lo

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_activity_scales_dynamic_power(self, activity):
        params = PowerParams()
        full = float(params.cu_dynamic_power(320, 1e9, 1.0))
        part = float(params.cu_dynamic_power(320, 1e9, activity))
        assert part == pytest.approx(full * activity, rel=1e-9)


class TestSubstrateContracts:
    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_ecc_overhead_monotone_nonincreasing_relative(self, bits):
        # Wider words amortize check bits: relative overhead at 2x the
        # width never exceeds the overhead at 1x.
        r1 = ecc_overhead_bits(bits) / bits
        r2 = ecc_overhead_bits(2 * bits) / (2 * bits)
        assert r2 <= r1 + 1e-12

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 30),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_interleaver_partitions_addresses(self, addrs):
        il = AddressInterleaver()
        hist = il.channel_histogram(np.array(addrs))
        assert hist.sum() == len(addrs)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_dram_cache_accounting(self, addrs):
        cache = DramCache(capacity_bytes=64 * 4096, associativity=4)
        stats = cache.run_trace(np.array(addrs))
        assert stats.hits + stats.misses == len(addrs)
        assert cache.resident_pages <= 64
        assert stats.writebacks <= stats.evictions

    @given(
        st.floats(min_value=3600.0, max_value=1e7),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_checkpoint_optimal_interval_is_optimal(self, mttf, factor):
        # Young's interval is the first-order optimum, valid for
        # MTTF >> checkpoint cost; within that regime no fixed interval
        # beats it by more than the approximation error.
        cm = CheckpointModel()
        assume(abs(factor - 1.0) > 0.05)
        best = cm.efficiency(mttf)
        other = cm.efficiency(mttf, cm.optimal_interval(mttf) * factor)
        assert other <= best + 2e-2

    @given(st.integers(min_value=192, max_value=384))
    @settings(max_examples=30, deadline=None)
    def test_config_validation_total(self, n):
        if n % 8:
            with pytest.raises(ValueError):
                EHPConfig(n_cus=n)
        else:
            assert EHPConfig(n_cus=n).cus_per_chiplet == n // 8
