"""Hypothesis property tests on core invariants across modules.

These complement the per-module tests with randomized invariants: the
performance model's monotonicities and conservation laws, the power
model's positivity and scaling, and the data-structure substrates'
behavioural contracts.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.config import EHPConfig
from repro.core.node import NodeModel
from repro.memsys.dramcache import DramCache
from repro.memsys.interleave import AddressInterleaver
from repro.memsys.rowbuffer import RowBufferSim
from repro.perfmodel.roofline import evaluate_kernel
from repro.power.components import PowerParams
from repro.ras.checkpoint import CheckpointModel
from repro.ras.ecc import ecc_overhead_bits
from repro.sim.apu_sim import ApuSimConfig, ApuSimulator
from repro.sim.cache_sim import CacheLevel, CacheSim
from repro.workloads.kernels import KernelCategory, KernelProfile
from repro.workloads.traces import MemoryTrace

cus = st.sampled_from([192, 224, 256, 288, 320, 352, 384])
freqs = st.floats(min_value=0.7e9, max_value=1.5e9)
bws = st.floats(min_value=1e12, max_value=7e12)


def random_profile(draw) -> KernelProfile:
    return KernelProfile(
        name="h",
        category=KernelCategory.BALANCED,
        description="hypothesis",
        flops=1e12,
        bytes_per_flop=draw(st.floats(min_value=0.001, max_value=2.5)),
        parallel_fraction=draw(st.floats(min_value=0.3, max_value=1.0)),
        cache_hit_rate=draw(st.floats(min_value=0.05, max_value=0.9)),
        thrash_pressure=draw(st.floats(min_value=0.0, max_value=1.5)),
        latency_sensitivity=draw(st.floats(min_value=0.005, max_value=0.9)),
        mlp_per_cu=draw(st.floats(min_value=4.0, max_value=96.0)),
        cu_utilization=draw(st.floats(min_value=0.2, max_value=0.98)),
    )


profiles = st.builds(lambda d: random_profile(lambda s: d.draw(s)), st.data())


class TestPerformanceModelInvariants:
    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=50, deadline=None)
    def test_time_and_rates_positive(self, data, n, f, b):
        p = random_profile(data.draw)
        m = evaluate_kernel(p, n, f, b)
        assert float(m.time) > 0
        assert float(m.flops_rate) > 0
        assert float(m.hit_rate) >= 0

    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=50, deadline=None)
    def test_achieved_close_to_hardware_peak(self, data, n, f, b):
        # The CU-scaling power law anchors at the 256-CU reference, so
        # strongly sub-linear kernels evaluated *below* the anchor can
        # slightly exceed the naive N*64*f peak (fewer CUs -> less
        # divergence/contention -> higher per-CU throughput). Bounded by
        # (256/N)^(1-alpha) * issue_efficiency ~= 1.11 at the grid edge.
        p = random_profile(data.draw)
        peak = 64.0 * n * f
        assert float(evaluate_kernel(p, n, f, b).flops_rate) <= peak * 1.15

    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=50, deadline=None)
    def test_traffic_conservation(self, data, n, f, b):
        p = random_profile(data.draw)
        m = evaluate_kernel(p, n, f, b, ext_fraction=0.4)
        miss = float(m.dram_traffic + m.ext_traffic)
        assert miss <= float(m.llc_traffic) + 1e-6

    @given(st.data(), cus, freqs)
    @settings(max_examples=40, deadline=None)
    def test_bandwidth_monotone(self, data, n, f):
        p = random_profile(data.draw)
        t1 = float(evaluate_kernel(p, n, f, 2e12).time)
        t2 = float(evaluate_kernel(p, n, f, 2.5e12).time)
        assert t2 <= t1 * (1 + 1e-9)

    @given(st.data(), cus, bws)
    @settings(max_examples=40, deadline=None)
    def test_frequency_degradation_bounded(self, data, n, b):
        # Higher frequency can *hurt* memory-bound kernels (the
        # contention-driven decline the paper's Section IV describes).
        # The bounded queueing term caps the loss: steepest right at the
        # saturation knee (low-bandwidth, latency-bound corner cases),
        # never a collapse (worst case: the latency multiplier rises
        # from 1+2*rho^4 toward its 3x cap as rho crosses 1).
        p = random_profile(data.draw)
        t1 = float(evaluate_kernel(p, n, 1.0e9, b).time)
        t2 = float(evaluate_kernel(p, n, 1.1e9, b).time)
        assert t2 <= t1 * 1.5


class TestPowerModelInvariants:
    @given(st.data(), cus, freqs, bws)
    @settings(max_examples=40, deadline=None)
    def test_node_power_positive_and_bounded(self, data, n, f, b):
        p = random_profile(data.draw)
        model = NodeModel()
        ev = model.evaluate_arrays(p, float(n), f, b)
        power = float(ev.node_power)
        assert 30.0 < power < 600.0

    @given(cus, freqs)
    @settings(max_examples=40, deadline=None)
    def test_cu_dynamic_monotone_in_frequency(self, n, f):
        params = PowerParams()
        assume(f * 1.1 <= 1.6e9)
        lo = float(params.cu_dynamic_power(n, f, 0.5))
        hi = float(params.cu_dynamic_power(n, f * 1.1, 0.5))
        assert hi > lo

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_activity_scales_dynamic_power(self, activity):
        params = PowerParams()
        full = float(params.cu_dynamic_power(320, 1e9, 1.0))
        part = float(params.cu_dynamic_power(320, 1e9, activity))
        assert part == pytest.approx(full * activity, rel=1e-9)


class TestSubstrateContracts:
    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_ecc_overhead_monotone_nonincreasing_relative(self, bits):
        # Wider words amortize check bits: relative overhead at 2x the
        # width never exceeds the overhead at 1x.
        r1 = ecc_overhead_bits(bits) / bits
        r2 = ecc_overhead_bits(2 * bits) / (2 * bits)
        assert r2 <= r1 + 1e-12

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 30),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_interleaver_partitions_addresses(self, addrs):
        il = AddressInterleaver()
        hist = il.channel_histogram(np.array(addrs))
        assert hist.sum() == len(addrs)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_dram_cache_accounting(self, addrs):
        cache = DramCache(capacity_bytes=64 * 4096, associativity=4)
        stats = cache.run_trace(np.array(addrs))
        assert stats.hits + stats.misses == len(addrs)
        assert cache.resident_pages <= 64
        assert stats.writebacks <= stats.evictions

    @given(
        st.floats(min_value=3600.0, max_value=1e7),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_checkpoint_optimal_interval_is_optimal(self, mttf, factor):
        # Young's interval is the first-order optimum, valid for
        # MTTF >> checkpoint cost; within that regime no fixed interval
        # beats it by more than the approximation error.
        cm = CheckpointModel()
        assume(abs(factor - 1.0) > 0.05)
        best = cm.efficiency(mttf)
        other = cm.efficiency(mttf, cm.optimal_interval(mttf) * factor)
        assert other <= best + 2e-2

    @given(st.integers(min_value=192, max_value=384))
    @settings(max_examples=30, deadline=None)
    def test_config_validation_total(self, n):
        if n % 8:
            with pytest.raises(ValueError):
                EHPConfig(n_cus=n)
        else:
            assert EHPConfig(n_cus=n).cus_per_chiplet == n // 8


def _small_hierarchy() -> CacheSim:
    return CacheSim(
        [
            CacheLevel("L1", 8 * 1024, 64, 4),
            CacheLevel("LLC", 64 * 1024, 64, 8),
        ]
    )


def _trace_from(addresses, flops) -> MemoryTrace:
    addresses = np.asarray(addresses, dtype=np.int64) * 64
    return MemoryTrace(
        addresses=addresses,
        is_write=np.zeros(len(addresses), dtype=bool),
        flops_between=np.asarray(flops, dtype=float),
        footprint_bytes=float(addresses.max() + 64),
    )


class TestSimulatorInvariants:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_cache_hit_rates_bounded_and_conserved(self, lines):
        sim = _small_hierarchy()
        stats = sim.run_trace(np.asarray(lines, dtype=np.int64) * 64)
        for rate in stats.values():
            assert 0.0 <= rate <= 1.0
        l1, llc = sim.levels
        # Inclusive hierarchy: every L1 miss reaches the LLC, every LLC
        # miss reaches DRAM.
        assert l1.stats.accesses == len(lines)
        assert llc.stats.accesses == l1.stats.misses
        assert sim.dram_accesses == llc.stats.misses

    @given(
        st.integers(min_value=1, max_value=600),
        st.integers(min_value=1, max_value=1200),
    )
    @settings(max_examples=30, deadline=None)
    def test_dram_fraction_monotone_in_working_set(self, w1, delta):
        # Cyclic sweeps over a working set of W lines: under LRU a larger
        # working set can only miss more (W/n compulsory misses while the
        # set fits, every access once it thrashes).
        w2 = w1 + delta
        n = 2400
        fractions = []
        for w in (w1, w2):
            sim = _small_hierarchy()
            addrs = (np.arange(n, dtype=np.int64) % w) * 64
            fractions.append(sim.run_trace(addrs)["dram_fraction"])
        assert fractions[1] >= fractions[0] - 1e-12

    @given(
        st.data(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_flops_rate_bounded_by_peak(self, data, n_cus, wpc):
        n = data.draw(st.integers(min_value=1, max_value=120))
        lines = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=1 << 16),
                min_size=n,
                max_size=n,
            )
        )
        flops = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e6),
                min_size=n,
                max_size=n,
            )
        )
        config = ApuSimConfig(n_cus=n_cus, wavefronts_per_cu=wpc)
        res = ApuSimulator(config).run(_trace_from(lines, flops))
        peak = config.n_cus * config.flops_per_cu_cycle * config.freq_hz
        assert res.flops_rate <= peak * (1.0 + 1e-9)
        assert 0.0 <= res.cu_utilization <= 1.0
        assert 0.0 <= res.dram_fraction <= 1.0
        for rate in res.hit_rates.values():
            assert 0.0 <= rate <= 1.0
        assert res.mean_memory_latency >= config.l1_latency - 1e-18

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_engines_agree_on_random_traces(self, data):
        # Randomized counterpart of tests/test_sim_oracle.py: both
        # engines agree on arbitrary (not generator-shaped) traces.
        n = data.draw(st.integers(min_value=1, max_value=80))
        lines = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=1 << 12),
                min_size=n,
                max_size=n,
            )
        )
        flops = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e5),
                min_size=n,
                max_size=n,
            )
        )
        trace = _trace_from(lines, flops)
        sim = ApuSimulator(ApuSimConfig(n_cus=2, wavefronts_per_cu=3))
        a = sim.run(trace)
        e = sim.run(trace, engine="event")
        assert a.elapsed == pytest.approx(e.elapsed, rel=1e-9)
        assert a.total_flops == pytest.approx(e.total_flops, rel=1e-9)
        assert a.dram_accesses == e.dram_accesses
        assert a.mean_memory_latency == pytest.approx(
            e.mean_memory_latency, rel=1e-9
        )
        assert a.hit_rates == e.hit_rates


class TestMemsysEngineProperties:
    """Randomized scalar/array agreement and structural invariants for
    the memory-system engines (deterministic grid:
    tests/test_memsys_oracle.py)."""

    addresses = st.lists(
        st.integers(min_value=0, max_value=1 << 24), min_size=0, max_size=400
    )

    @given(addresses, st.sampled_from([1, 4, 32]))
    @settings(max_examples=30, deadline=None)
    def test_rowbuffer_engines_agree(self, addrs, n_banks):
        stream = np.asarray(addrs, dtype=np.int64)
        a = RowBufferSim(n_banks=n_banks, row_bytes=512, engine="array")
        b = RowBufferSim(n_banks=n_banks, row_bytes=512, engine="event")
        sa = a.run(stream)
        sb = b.run(stream)
        assert (sa.hits, sa.misses, sa.bank_conflicts) == (
            sb.hits,
            sb.misses,
            sb.bank_conflicts,
        )
        assert 0.0 <= sa.hit_rate <= 1.0
        assert sa.accesses == len(addrs)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_dramcache_engines_agree(self, data):
        addrs = data.draw(self.addresses)
        writes = data.draw(
            st.lists(
                st.booleans(), min_size=len(addrs), max_size=len(addrs)
            )
        )
        assoc = data.draw(st.sampled_from([1, 2, 8]))
        page = data.draw(st.sampled_from([256, 4096]))
        capacity = assoc * page * data.draw(st.sampled_from([1, 4, 64]))
        stream = np.asarray(addrs, dtype=np.int64)
        wr = np.asarray(writes, dtype=bool)
        a = DramCache(capacity, page, assoc, engine="array")
        b = DramCache(capacity, page, assoc, engine="event")
        flags = a.access_many(stream, wr)
        expected = [b.access(int(x), bool(w)) for x, w in zip(stream, wr)]
        assert flags.tolist() == expected
        assert (a.stats.hits, a.stats.misses, a.stats.evictions,
                a.stats.writebacks) == (
            b.stats.hits, b.stats.misses, b.stats.evictions,
            b.stats.writebacks,
        )
        # Structural invariants: bounded occupancy, conservation.
        assert 0.0 <= a.stats.hit_rate <= 1.0
        assert a.stats.hits + a.stats.misses == len(addrs)
        assert a.resident_pages <= a.n_sets * a.associativity
        for ways in a._sets.values():
            assert 0 < len(ways) <= a.associativity

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_manager_engines_agree(self, data):
        n_epochs = data.draw(st.integers(min_value=1, max_value=4))
        capacity_pages = data.draw(st.integers(min_value=1, max_value=40))
        limit = data.draw(st.one_of(st.none(), st.integers(0, 10)))
        hot = data.draw(st.booleans())
        page = 4096

        def policy():
            from repro.memsys.manager import (
                FirstTouchPolicy,
                HotnessMigrationPolicy,
            )

            return (
                HotnessMigrationPolicy(limit) if hot else FirstTouchPolicy()
            )

        from repro.memsys.manager import MemoryManager

        a = MemoryManager(capacity_pages * page, policy(), page)
        b = MemoryManager(capacity_pages * page, policy(), page)
        for _ in range(n_epochs):
            addrs = data.draw(self.addresses)
            stream = np.asarray(addrs, dtype=np.int64)
            fa = a.epoch_array(stream)
            fb = b.epoch(stream)
            assert fa == pytest.approx(fb, rel=1e-9)
            assert 0.0 <= fa <= 1.0
            assert a.resident_pages <= a.capacity_pages
        assert a.placement == b.placement
        assert a.total_migrated == b.total_migrated
