"""X4 sensitivity study."""

import pytest

from repro.experiments.sensitivity import run_sensitivity_study


@pytest.fixture(scope="module")
def study():
    return run_sensitivity_study()


class TestSensitivityStudy:
    def test_all_knobs_reported(self, study):
        assert len(study.data) == 8

    def test_external_bandwidth_dominates_performance(self, study):
        # With 46-89% of traffic off-package, the external network's
        # bandwidth is the performance-critical projection.
        swings = {k: abs(v["perf_swing_pct"]) for k, v in study.data.items()}
        assert max(swings, key=swings.get) == "ext_bandwidth"

    def test_power_knobs_do_not_move_performance(self, study):
        for knob in ("cu_ceff_farad", "noc_energy_per_bit"):
            assert study.data[knob]["perf_swing_pct"] == pytest.approx(0.0)

    def test_power_knobs_move_power(self, study):
        assert study.data["cu_ceff_farad"]["power_swing_pct"] > 1.0

    def test_higher_latency_hurts(self, study):
        assert study.data["mem_latency"]["perf_swing_pct"] < 0.0

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            run_sensitivity_study(delta=1.5)
