"""Component power equations."""

import numpy as np
import pytest

from repro.power.components import PowerParams
from repro.power.vf import VFCurve


class TestCuPower:
    def test_dynamic_scales_with_cus_and_activity(self):
        p = PowerParams()
        base = float(p.cu_dynamic_power(320, 1e9, 0.5))
        assert float(p.cu_dynamic_power(640, 1e9, 0.5)) == pytest.approx(
            2 * base
        )
        assert float(p.cu_dynamic_power(320, 1e9, 1.0)) == pytest.approx(
            2 * base
        )

    def test_dynamic_superlinear_in_frequency(self):
        p = PowerParams()
        lo = float(p.cu_dynamic_power(320, 1.0e9, 1.0))
        hi = float(p.cu_dynamic_power(320, 1.5e9, 1.0))
        assert hi / lo > 1.5

    def test_static_scales_with_voltage(self):
        p = PowerParams()
        lo = float(p.cu_static_power(320, 0.7e9))
        hi = float(p.cu_static_power(320, 1.5e9))
        assert hi > lo

    def test_async_cu_scale_applies(self):
        p = PowerParams(async_cu_dynamic_scale=0.9)
        q = PowerParams()
        assert float(p.cu_dynamic_power(320, 1e9, 1.0)) == pytest.approx(
            0.9 * float(q.cu_dynamic_power(320, 1e9, 1.0))
        )

    def test_fig14_anchor(self):
        # 320 CUs at 1 GHz, MaxFlops-like activity: ~95 W of CU power
        # (dynamic + static), consistent with the Fig. 14 calibration.
        p = PowerParams()
        total = float(
            p.cu_dynamic_power(320, 1e9, 0.9) + p.cu_static_power(320, 1e9)
        )
        assert 80.0 < total < 110.0


class TestNocPower:
    def test_scales_with_traffic(self):
        p = PowerParams()
        assert float(p.noc_dynamic_power(2e12)) == pytest.approx(
            2 * float(p.noc_dynamic_power(1e12))
        )

    def test_compression_divides_traffic_energy(self):
        base = PowerParams()
        comp = PowerParams(compression_enabled=True)
        assert float(
            comp.noc_dynamic_power(1e12, compression_ratio=2.0)
        ) == pytest.approx(float(base.noc_dynamic_power(1e12)) / 2.0)

    def test_router_and_link_scales_compose(self):
        p = PowerParams(
            async_router_dynamic_scale=0.5, link_dynamic_scale=0.5
        )
        q = PowerParams()
        assert float(p.noc_dynamic_power(1e12)) == pytest.approx(
            0.5 * float(q.noc_dynamic_power(1e12))
        )

    def test_compression_does_not_touch_dram_energy(self):
        # The paper compresses network messages, not DRAM array accesses.
        base = PowerParams()
        comp = PowerParams(compression_enabled=True)
        assert float(comp.dram3d_dynamic_power(1e12)) == pytest.approx(
            float(base.dram3d_dynamic_power(1e12))
        )


class TestDramPower:
    def test_static_includes_bandwidth_provisioning(self):
        p = PowerParams()
        lo = float(p.dram3d_static_power(1e12))
        hi = float(p.dram3d_static_power(7e12))
        assert hi - lo == pytest.approx(
            6 * p.dram3d_interface_watt_per_tbps, rel=1e-9
        )

    def test_stack_background_power(self):
        p = PowerParams()
        floor = float(p.dram3d_static_power(1e-9))
        assert floor == pytest.approx(
            p.n_dram3d_stacks * p.dram3d_static_per_stack_watt, rel=1e-3
        )


class TestValidation:
    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            PowerParams(async_cu_dynamic_scale=1.5)
        with pytest.raises(ValueError):
            PowerParams(noc_router_fraction=-0.1)

    def test_positive_energies(self):
        with pytest.raises(ValueError):
            PowerParams(cu_ceff_farad=0.0)

    def test_with_optimizations_returns_validated_copy(self):
        p = PowerParams()
        q = p.with_optimizations(compression_enabled=True)
        assert q.compression_enabled and not p.compression_enabled
        with pytest.raises(ValueError):
            p.with_optimizations(link_dynamic_scale=2.0)
