"""Power optimizations (Section V-E)."""

import pytest

from repro.core.config import PAPER_BEST_MEAN
from repro.core.node import NodeModel
from repro.core.optimizations import (
    ALL_OPTIMIZATIONS,
    PowerOptimization,
    apply_optimizations,
)
from repro.power.components import PowerParams
from repro.workloads.catalog import APPLICATIONS, get_application


def node_power_with(opts, profile):
    model = NodeModel(
        power_params=apply_optimizations(PowerParams(), opts)
    )
    return float(
        model.evaluate(
            profile, PAPER_BEST_MEAN, ext_fraction=profile.ext_memory_fraction
        ).node_power
    )


class TestApplyOptimizations:
    def test_empty_is_identity(self):
        p = PowerParams()
        assert apply_optimizations(p, set()) is p

    def test_ntc_lowers_voltage(self):
        p = apply_optimizations(PowerParams(), {PowerOptimization.NTC})
        assert p.vf.voltage_scale < 1.0

    def test_compression_flag(self):
        p = apply_optimizations(
            PowerParams(), {PowerOptimization.COMPRESSION}
        )
        assert p.compression_enabled

    def test_all_enables_everything(self):
        p = apply_optimizations(PowerParams(), ALL_OPTIMIZATIONS)
        assert p.vf.voltage_scale < 1.0
        assert p.async_cu_dynamic_scale < 1.0
        assert p.async_router_dynamic_scale < 1.0
        assert p.link_dynamic_scale < 1.0
        assert p.compression_enabled

    def test_non_optimization_rejected(self):
        with pytest.raises(TypeError):
            apply_optimizations(PowerParams(), {"NTC"})  # type: ignore[arg-type]

    def test_composition_is_multiplicative(self):
        once = apply_optimizations(
            PowerParams(), {PowerOptimization.ASYNC_CUS}
        )
        twice = apply_optimizations(once, {PowerOptimization.ASYNC_CUS})
        assert twice.async_cu_dynamic_scale == pytest.approx(
            once.async_cu_dynamic_scale**2
        )


class TestSavings:
    def test_every_optimization_saves_power(self):
        profile = get_application("LULESH")
        baseline = node_power_with(set(), profile)
        for opt in PowerOptimization:
            assert node_power_with({opt}, profile) < baseline, opt

    def test_all_saves_most(self):
        profile = get_application("LULESH")
        best_single = min(
            node_power_with({opt}, profile) for opt in PowerOptimization
        )
        assert node_power_with(ALL_OPTIMIZATIONS, profile) < best_single

    def test_combined_savings_in_paper_range(self):
        # Fig. 12: all optimizations combined save 13-27% of node power.
        savings = []
        for profile in APPLICATIONS.values():
            base = node_power_with(set(), profile)
            opt = node_power_with(ALL_OPTIMIZATIONS, profile)
            savings.append((1 - opt / base) * 100.0)
        assert 10.0 <= min(savings)
        # MaxFlops overshoots the paper's 27% top because CU dynamic
        # power dominates its node power entirely.
        assert max(savings) <= 36.0

    def test_ntc_biggest_single_lever_on_average(self):
        # Fig. 12: NTC is the largest individual saving.
        totals = {opt: 0.0 for opt in PowerOptimization}
        for profile in APPLICATIONS.values():
            base = node_power_with(set(), profile)
            for opt in PowerOptimization:
                totals[opt] += (
                    1 - node_power_with({opt}, profile) / base
                )
        assert max(totals, key=totals.get) is PowerOptimization.NTC

    def test_compression_helps_memory_intensive_most(self):
        # Fig. 12: LULESH benefits the most from compression.
        lulesh = get_application("LULESH")
        maxflops = get_application("MaxFlops")
        def saving(p):
            base = node_power_with(set(), p)
            return 1 - node_power_with({PowerOptimization.COMPRESSION}, p) / base
        assert saving(lulesh) > saving(maxflops)

    def test_optimizations_do_not_change_performance(self):
        profile = get_application("CoMD")
        base = NodeModel()
        opt = base.with_power_params(
            apply_optimizations(base.power_params, ALL_OPTIMIZATIONS)
        )
        assert float(
            opt.evaluate(profile, PAPER_BEST_MEAN).performance
        ) == pytest.approx(
            float(base.evaluate(profile, PAPER_BEST_MEAN).performance)
        )
