"""The Table I application catalog."""

import pytest

from repro.workloads.catalog import (
    APPLICATIONS,
    application_names,
    get_application,
    iter_applications,
    table1_rows,
)
from repro.workloads.kernels import KernelCategory

PAPER_APPS = (
    "MaxFlops", "CoMD", "CoMD-LJ", "HPGMG",
    "LULESH", "MiniAMR", "XSBench", "SNAP",
)


class TestCatalogContents:
    def test_all_eight_applications_present(self):
        assert set(application_names()) == set(PAPER_APPS)

    def test_categories_match_table1(self):
        cats = {name: p.category for name, p in APPLICATIONS.items()}
        assert cats["MaxFlops"] is KernelCategory.COMPUTE_INTENSIVE
        for balanced in ("CoMD", "CoMD-LJ", "HPGMG"):
            assert cats[balanced] is KernelCategory.BALANCED
        for mem in ("LULESH", "MiniAMR", "XSBench", "SNAP"):
            assert cats[mem] is KernelCategory.MEMORY_INTENSIVE

    def test_names_are_keys(self):
        for name, profile in APPLICATIONS.items():
            assert profile.name == name

    def test_descriptions_nonempty(self):
        for profile in APPLICATIONS.values():
            assert profile.description

    def test_ext_memory_fraction_in_paper_range(self):
        # Section V-B: 46% to 89% of traffic may access off-package
        # memory (MaxFlops is the compute-bound exception).
        for name, p in APPLICATIONS.items():
            if name == "MaxFlops":
                assert p.ext_memory_fraction <= 0.1
            else:
                assert 0.4 <= p.ext_memory_fraction <= 0.9

    def test_maxflops_is_compute_bound(self):
        p = APPLICATIONS["MaxFlops"]
        assert p.bytes_per_flop < 0.05
        assert p.parallel_fraction > 0.95

    def test_provenance_recorded(self):
        for p in APPLICATIONS.values():
            assert "calibrat" in p.provenance.lower()


class TestAccessors:
    def test_get_application(self):
        assert get_application("LULESH").name == "LULESH"

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="LULESH"):
            get_application("NotAnApp")

    def test_iter_matches_names(self):
        assert [p.name for p in iter_applications()] == application_names()

    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 8
        for category, app, description in rows:
            assert category in {
                "compute-intensive", "balanced", "memory-intensive"
            }
            assert app in PAPER_APPS
            assert description
