"""Experiment plumbing and example-script smoke tests."""

import pathlib
import runpy

import pytest

from repro.experiments.runner import (
    ExperimentResult,
    all_profiles,
    default_model,
    reference_config,
)

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestExperimentResult:
    def test_render_includes_header_and_body(self):
        r = ExperimentResult(
            experiment_id="figX",
            title="A title",
            rendered="row1\nrow2",
            notes="a caveat",
        )
        text = r.render()
        assert text.startswith("== figX: A title ==")
        assert "a caveat" in text
        assert "row2" in text

    def test_render_without_notes(self):
        r = ExperimentResult("figY", "T", "body")
        assert "--" not in r.render().splitlines()[0]
        assert "body" in r.render()

    def test_default_data_empty(self):
        r = ExperimentResult("figZ", "T", "body")
        assert dict(r.data) == {}


class TestRunnerHelpers:
    def test_all_profiles_order_and_count(self):
        profiles = all_profiles()
        assert len(profiles) == 8
        assert profiles[0].name == "MaxFlops"

    def test_reference_config_is_paper_best_mean(self):
        cfg = reference_config()
        assert (cfg.n_cus, cfg.gpu_freq, cfg.bandwidth) == (
            320, 1.0e9, 3.0e12
        )

    def test_default_model_evaluates(self):
        model = default_model()
        ev = model.evaluate(all_profiles()[0], reference_config())
        assert float(ev.performance) > 0


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "design_space_exploration.py"],
)
def test_example_scripts_run(script, capsys):
    """The fast examples execute end to end and produce output."""
    path = EXAMPLES / script
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "design_space_exploration.py",
        "memory_system_codesign.py",
        "exascale_machine_plan.py",
        "dynamic_reconfiguration.py",
        "chiplet_thermal_study.py",
        "heterogeneous_runtime.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}
