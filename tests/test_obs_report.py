"""Tests for ``python -m repro obs`` reporting and regression diffs.

Covers the where-did-the-time-go report over both artifact shapes (run
manifest JSON, sampler JSONL), the two-file benchmark diff (injected
synthetic regression -> nonzero exit; healthy pair -> zero), and the
whole-directory BENCH_pr* trajectory mode (PR-numbering gaps warn, the
committed repo trajectory stays green under the CI threshold).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.obs.report import (
    diff_benchmarks,
    diff_trajectory,
    render_report,
    trajectory_files,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _write_bench(path, means: dict[str, float]) -> None:
    payload = {
        "summary": {
            name: {
                "mean_s": mean,
                "stddev_s": mean / 10.0,
                "min_s": mean * 0.9,
                "rounds": 5,
            }
            for name, mean in means.items()
        }
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


# ----------------------------------------------------------------------
# obs report
# ----------------------------------------------------------------------
class TestReport:
    def test_manifest_report(self, tmp_path):
        manifest = {
            "manifest_version": 1,
            "command": "check_perf --quick",
            "created_unix": 1700000000.0,
            "git": "abc1234",
            "wall_times_s": {"total": 2.0, "fig8": 1.5},
            "metrics": {
                "gauges": {"proc.rss_bytes": 64 * 1024 * 1024},
                "histograms": {
                    "thermal.solve_seconds": {
                        "count": 10,
                        "total": 1.5,
                    },
                    "noc.run_seconds": {"count": 5, "total": 0.5},
                },
            },
            "caches": {"eval": {"hits": 9, "misses": 1}},
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        text = render_report(str(path))
        assert "check_perf --quick" in text
        assert "thermal.solve_seconds" in text
        # Largest histogram leads the where-did-time-go table.
        assert text.index("thermal.solve_seconds") < text.index(
            "noc.run_seconds"
        )
        assert "75.0%" in text  # 1.5 of 2.0 total histogram seconds
        assert "90.0%" in text  # cache hit rate
        assert "64.0 MiB" in text

    def test_jsonl_report_folds_intervals(self, tmp_path):
        records = [
            {
                "t": 1.0,
                "elapsed_s": 1.0,
                "interval_s": 1.0,
                "sample": 1,
                "counters": {"serve.requests": 10},
                "gauges": {"proc.rss_bytes": 1024.0},
                "histograms": {"lat": {"count": 10, "total": 0.1}},
            },
            {
                "t": 2.0,
                "elapsed_s": 2.0,
                "interval_s": 1.0,
                "sample": 2,
                "counters": {"serve.requests": 5},
                "gauges": {"proc.rss_bytes": 2048.0},
                "histograms": {"lat": {"count": 5, "total": 0.2}},
            },
        ]
        path = tmp_path / "metrics.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        text = render_report(str(path))
        assert "samples  2" in text
        assert "15" in text  # summed counter
        assert "peak proc.rss_bytes  2.0 KiB" in text

    def test_report_cli_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"manifest_version": 1}))
        assert cli_main(["obs", "report", str(path)]) == 0
        assert "run report" in capsys.readouterr().out
        assert cli_main(["obs", "report", str(tmp_path / "nope.json")]) == 2


# ----------------------------------------------------------------------
# obs diff
# ----------------------------------------------------------------------
class TestDiff:
    def test_injected_regression_is_nonzero(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _write_bench(a, {"bench_x": 0.010, "bench_y": 0.020})
        _write_bench(b, {"bench_x": 0.025, "bench_y": 0.019})
        lines, regressions = diff_benchmarks(str(a), str(b))
        assert regressions == 1
        assert any("REGRESSION" in line for line in lines)
        assert cli_main(["obs", "diff", str(a), str(b)]) == 1

    def test_healthy_pair_is_zero(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _write_bench(a, {"bench_x": 0.010})
        _write_bench(b, {"bench_x": 0.011})
        lines, regressions = diff_benchmarks(str(a), str(b))
        assert regressions == 0
        assert cli_main(["obs", "diff", str(a), str(b)]) == 0

    def test_threshold_is_configurable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _write_bench(a, {"bench_x": 0.010})
        _write_bench(b, {"bench_x": 0.018})  # 1.8x
        assert diff_benchmarks(str(a), str(b), threshold=1.5)[1] == 1
        assert diff_benchmarks(str(a), str(b), threshold=2.0)[1] == 0
        with pytest.raises(ValueError):
            diff_benchmarks(str(a), str(b), threshold=1.0)

    def test_sub_floor_slowdowns_are_noise(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _write_bench(a, {"bench_x": 2e-6})
        _write_bench(b, {"bench_x": 8e-6})  # 4x but only 6 us absolute
        assert diff_benchmarks(str(a), str(b))[1] == 0

    def test_disjoint_names_warn_not_crash(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _write_bench(a, {"bench_old": 0.010})
        _write_bench(b, {"bench_new": 0.010})
        lines, regressions = diff_benchmarks(str(a), str(b))
        assert regressions == 0
        warnings = [l for l in lines if "warning" in l]
        assert len(warnings) == 2


class TestTrajectory:
    def test_gap_warns_not_crashes(self, tmp_path):
        _write_bench(tmp_path / "BENCH_pr1.json", {"bench_x": 0.010})
        _write_bench(tmp_path / "BENCH_pr2.json", {"bench_x": 0.010})
        _write_bench(tmp_path / "BENCH_pr4.json", {"bench_x": 0.011})
        found, warnings = trajectory_files(str(tmp_path))
        assert [n for n, _ in found] == [1, 2, 4]
        assert warnings and "BENCH_pr3.json" in warnings[0]
        lines, regressions = diff_trajectory(str(tmp_path))
        assert regressions == 0
        assert any("gap" in line for line in lines)

    def test_trajectory_counts_regressions(self, tmp_path):
        _write_bench(tmp_path / "BENCH_pr1.json", {"bench_x": 0.010})
        _write_bench(tmp_path / "BENCH_pr2.json", {"bench_x": 0.030})
        _write_bench(tmp_path / "BENCH_pr3.json", {"bench_x": 0.090})
        lines, regressions = diff_trajectory(str(tmp_path))
        assert regressions == 2
        assert cli_main(["obs", "diff", str(tmp_path)]) == 2
        assert cli_main(["obs", "diff", "--dir", str(tmp_path)]) == 2

    def test_single_file_needs_a_pair(self, tmp_path):
        _write_bench(tmp_path / "BENCH_pr1.json", {"bench_x": 0.010})
        lines, regressions = diff_trajectory(str(tmp_path))
        assert regressions == 0
        assert any("at least two" in line for line in lines)

    def test_repo_trajectory_is_green_at_ci_threshold(self):
        """The committed BENCH_pr* history passes under the tolerant
        cross-machine threshold CI uses."""
        found, _ = trajectory_files(_REPO_ROOT)
        if len(found) < 2:
            pytest.skip("no committed BENCH_pr* trajectory")
        _, regressions = diff_trajectory(_REPO_ROOT, threshold=20.0)
        assert regressions == 0
