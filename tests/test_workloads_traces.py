"""Synthetic trace generation."""

import numpy as np
import pytest

from repro.workloads.catalog import get_application
from repro.workloads.traces import MemoryTrace, TraceGenerator


class TestMemoryTrace:
    def test_length_consistency_enforced(self):
        with pytest.raises(ValueError):
            MemoryTrace(
                addresses=np.array([0, 64]),
                is_write=np.array([False]),
                flops_between=np.array([1.0, 2.0]),
                footprint_bytes=1024.0,
            )

    def test_footprint_bound_enforced(self):
        with pytest.raises(ValueError):
            MemoryTrace(
                addresses=np.array([2048]),
                is_write=np.array([False]),
                flops_between=np.array([1.0]),
                footprint_bytes=1024.0,
            )

    def test_write_fraction_empty(self):
        t = MemoryTrace(
            addresses=np.array([], dtype=np.int64),
            is_write=np.array([], dtype=bool),
            flops_between=np.array([]),
            footprint_bytes=1024.0,
        )
        assert t.write_fraction == 0.0
        assert len(t) == 0


class TestTraceGenerator:
    def test_deterministic_for_seed(self):
        p = get_application("LULESH")
        t1 = TraceGenerator(p, seed=3).generate(5000)
        t2 = TraceGenerator(p, seed=3).generate(5000)
        np.testing.assert_array_equal(t1.addresses, t2.addresses)
        np.testing.assert_array_equal(t1.is_write, t2.is_write)

    def test_different_seeds_differ(self):
        p = get_application("LULESH")
        t1 = TraceGenerator(p, seed=1).generate(5000)
        t2 = TraceGenerator(p, seed=2).generate(5000)
        assert not np.array_equal(t1.addresses, t2.addresses)

    def test_addresses_line_aligned(self):
        t = TraceGenerator(get_application("CoMD"), seed=0).generate(2000)
        assert np.all(t.addresses % 64 == 0)

    def test_write_fraction_tracks_profile(self):
        p = get_application("LULESH")
        t = TraceGenerator(p, seed=0).generate(50000)
        assert t.write_fraction == pytest.approx(p.write_fraction, abs=0.02)

    def test_length_requested(self):
        t = TraceGenerator(get_application("SNAP"), seed=0).generate(1234)
        assert len(t) == 1234

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator(get_application("SNAP"), seed=0).generate(0)

    def test_compute_intensive_has_more_flops_per_access(self):
        hot = TraceGenerator(get_application("MaxFlops"), seed=0).generate(5000)
        cold = TraceGenerator(get_application("SNAP"), seed=0).generate(5000)
        assert hot.flops_between.mean() > 10 * cold.flops_between.mean()

    def test_random_heavy_profile_touches_more_lines(self):
        # Higher latency_sensitivity -> more uniform-random accesses ->
        # larger unique footprint for the same trace length.
        regular = get_application("MaxFlops")
        irregular = regular.with_overrides(latency_sensitivity=0.9)
        t_reg = TraceGenerator(regular, seed=5).generate(20000)
        t_irr = TraceGenerator(irregular, seed=5).generate(20000)
        assert t_irr.unique_lines > t_reg.unique_lines

    def test_footprint_capped_but_positive(self):
        t = TraceGenerator(get_application("XSBench"), seed=0).generate(100)
        assert 0 < t.footprint_bytes <= (1 << 30)
