"""The fused whole-grid tensor evaluation (PR 6).

Covers the ``ProfileBatch`` struct-of-arrays, the equivalence contract
between ``NodeModel.evaluate_grid`` and the per-profile
``evaluate_arrays`` oracle loop (rtol 1e-12, exactly agreeing
feasibility/NaN masks, bit-identical DSE argmax selections), engine
selection on ``core.dse.explore``, the whole-slab evaluation cache, and
the tensor-slab ``parallel_explore`` fan-out.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DesignSpace
from repro.core.dse import (
    ENGINES,
    default_engine,
    explore,
    set_default_engine,
)
from repro.core.node import NodeModel
from repro.perf.evalcache import (
    EvalCache,
    evaluate_grid_cached,
    fingerprint_batch,
)
from repro.perf.parallel import parallel_explore
from repro.workloads.catalog import application_names, get_application
from repro.workloads.kernels import (
    KernelCategory,
    KernelProfile,
    ProfileBatch,
)


def _profile(name="h", **overrides) -> KernelProfile:
    base = KernelProfile(
        name=name,
        category=KernelCategory.BALANCED,
        description="tensor-eval test",
        flops=1e12,
        bytes_per_flop=0.5,
        parallel_fraction=0.9,
        cache_hit_rate=0.5,
        thrash_pressure=0.3,
        latency_sensitivity=0.1,
        mlp_per_cu=32.0,
        cu_utilization=0.8,
    )
    return base.with_overrides(**overrides) if overrides else base


def _draw_profile(draw, idx: int) -> KernelProfile:
    return _profile(
        name=f"h{idx}",
        flops=draw(st.floats(min_value=1e9, max_value=1e15)),
        bytes_per_flop=draw(st.floats(min_value=0.001, max_value=2.5)),
        parallel_fraction=draw(st.floats(min_value=0.3, max_value=1.0)),
        cache_hit_rate=draw(st.floats(min_value=0.05, max_value=0.9)),
        thrash_pressure=draw(st.floats(min_value=0.0, max_value=1.5)),
        latency_sensitivity=draw(st.floats(min_value=0.005, max_value=0.9)),
        mlp_per_cu=draw(st.floats(min_value=4.0, max_value=96.0)),
        cu_utilization=draw(st.floats(min_value=0.2, max_value=0.98)),
        issue_efficiency=draw(st.floats(min_value=0.3, max_value=1.0)),
        write_fraction=draw(st.floats(min_value=0.0, max_value=0.9)),
        compression_ratio=draw(st.floats(min_value=1.0, max_value=4.0)),
    )


def _draw_space(draw) -> DesignSpace:
    cu_counts = tuple(
        sorted(
            draw(
                st.sets(
                    st.integers(min_value=1, max_value=384),
                    min_size=1,
                    max_size=5,
                )
            )
        )
    )
    frequencies = tuple(
        draw(
            st.lists(
                st.floats(min_value=0.5e9, max_value=2.0e9),
                min_size=1,
                max_size=4,
            )
        )
    )
    bandwidths = tuple(
        draw(
            st.lists(
                st.floats(min_value=0.5e12, max_value=8e12),
                min_size=1,
                max_size=3,
            )
        )
    )
    return DesignSpace(
        cu_counts=cu_counts, frequencies=frequencies, bandwidths=bandwidths
    )


class TestProfileBatch:
    def test_from_profiles_stacks_columns(self):
        apps = [get_application(n) for n in application_names()]
        batch = ProfileBatch.from_profiles(apps)
        assert len(batch) == len(apps)
        assert batch.names == tuple(a.name for a in apps)
        for field in ProfileBatch.field_names():
            col = getattr(batch, field)
            assert col.shape == (len(apps), 1)
            for i, app in enumerate(apps):
                assert col[i, 0] == float(getattr(app, field))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProfileBatch.from_profiles([])

    def test_validation_mirrors_profile_validation(self):
        good = ProfileBatch.from_profiles([_profile()])
        with pytest.raises(ValueError):
            dataclasses.replace(
                good, cache_hit_rate=np.array([[1.5]])
            )
        with pytest.raises(ValueError):
            dataclasses.replace(good, flops=np.array([[-1.0]]))
        with pytest.raises(ValueError):
            dataclasses.replace(good, compression_ratio=np.array([[0.5]]))

    def test_slicing_returns_sub_batch(self):
        apps = [get_application(n) for n in application_names()]
        batch = ProfileBatch.from_profiles(apps)
        sub = batch[2:5]
        assert isinstance(sub, ProfileBatch)
        assert sub.names == batch.names[2:5]
        assert np.array_equal(sub.flops, batch.flops[2:5])
        one = batch[3]
        assert one.names == (batch.names[3],)
        with pytest.raises(IndexError):
            batch[len(batch) : len(batch)]

    def test_fingerprint_distinguishes_batches(self):
        apps = [get_application(n) for n in application_names()]
        batch = ProfileBatch.from_profiles(apps)
        assert fingerprint_batch(batch) == fingerprint_batch(
            ProfileBatch.from_profiles(apps)
        )
        assert fingerprint_batch(batch[0:4]) != fingerprint_batch(batch[4:8])


class TestGridEquivalence:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_per_profile_loop(self, data):
        n_profiles = data.draw(st.integers(min_value=1, max_value=4))
        profiles = [_draw_profile(data.draw, i) for i in range(n_profiles)]
        space = _draw_space(data.draw)
        model = NodeModel()

        grid = model.evaluate_grid(profiles, space)
        cus, freqs, bws = space.grid_arrays()
        for i, profile in enumerate(profiles):
            ev = model.evaluate_arrays(profile, cus, freqs, bws)
            perf = np.asarray(ev.performance, dtype=float)
            power = np.asarray(ev.node_power, dtype=float)
            # Exactly agreeing non-finite masks, rtol 1e-12 elsewhere.
            assert np.array_equal(
                np.isfinite(grid.performance[i]), np.isfinite(perf)
            )
            assert np.array_equal(np.isfinite(grid.power[i]), np.isfinite(power))
            finite = np.isfinite(perf)
            np.testing.assert_allclose(
                grid.performance[i][finite], perf[finite], rtol=1e-12
            )
            finite_p = np.isfinite(power)
            np.testing.assert_allclose(
                grid.power[i][finite_p], power[finite_p], rtol=1e-12
            )
            assert np.array_equal(
                grid.feasible[i], power <= space.power_budget
            )

    def test_catalog_argmax_identity(self):
        profiles = [get_application(n) for n in application_names()]
        tensor = explore(profiles, cache=False, engine="tensor")
        point = explore(profiles, cache=False, engine="point")
        assert tensor.best_mean_index == point.best_mean_index
        assert dict(tensor.per_app_best_index) == dict(
            point.per_app_best_index
        )
        for name in point.performance:
            assert np.array_equal(tensor.feasible[name], point.feasible[name])
            np.testing.assert_allclose(
                tensor.performance[name],
                point.performance[name],
                rtol=1e-12,
            )
            np.testing.assert_allclose(
                tensor.node_power[name], point.node_power[name], rtol=1e-12
            )

    def test_accepts_prebuilt_batch(self):
        apps = [get_application(n) for n in application_names()[:3]]
        model = NodeModel()
        via_batch = model.evaluate_grid(ProfileBatch.from_profiles(apps))
        via_profiles = model.evaluate_grid(apps)
        assert np.array_equal(
            via_batch.performance, via_profiles.performance
        )
        assert np.array_equal(via_batch.power, via_profiles.power)


class TestEngineSelection:
    def test_default_engine_is_tensor(self):
        assert default_engine() == "tensor"
        assert ENGINES == ("tensor", "point")

    def test_set_default_engine_roundtrip(self):
        previous = set_default_engine("point")
        try:
            assert previous == "tensor"
            assert default_engine() == "point"
        finally:
            set_default_engine(previous)
        assert default_engine() == "tensor"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            set_default_engine("magic")
        with pytest.raises(ValueError):
            explore([get_application("CoMD")], engine="magic")

    def test_explore_engine_override(self):
        profiles = [get_application("CoMD"), get_application("SNAP")]
        previous = set_default_engine("point")
        try:
            by_default = explore(profiles, cache=False)
            by_override = explore(profiles, cache=False, engine="tensor")
        finally:
            set_default_engine(previous)
        assert by_default.best_mean_index == by_override.best_mean_index


class TestGridCache:
    def test_whole_grid_memoized(self):
        cache = EvalCache()
        model = NodeModel()
        profiles = [get_application("CoMD"), get_application("SNAP")]
        g1 = evaluate_grid_cached(model, profiles, DesignSpace(), cache=cache)
        g2 = evaluate_grid_cached(model, profiles, DesignSpace(), cache=cache)
        assert g2 is g1
        assert (cache.stats().hits, cache.stats().misses) == (1, 1)

    def test_slab_is_its_own_entry_and_bit_identical(self):
        cache = EvalCache()
        model = NodeModel()
        space = DesignSpace()
        profiles = [get_application(n) for n in application_names()]
        whole = evaluate_grid_cached(model, profiles, space, cache=cache)
        slab = evaluate_grid_cached(model, profiles, space, 2, 5, cache=cache)
        assert cache.stats().misses == 2
        per_cu = len(space.frequencies) * len(space.bandwidths)
        assert np.array_equal(
            slab.performance, whole.performance[:, 2 * per_cu : 5 * per_cu]
        )
        assert np.array_equal(
            slab.power, whole.power[:, 2 * per_cu : 5 * per_cu]
        )

    def test_empty_slab_rejected(self):
        with pytest.raises(ValueError):
            evaluate_grid_cached(
                NodeModel(),
                [get_application("CoMD")],
                DesignSpace(),
                3,
                3,
                cache=EvalCache(),
            )

    def test_invalidate_drops_grid_entries(self):
        cache = EvalCache()
        model = NodeModel()
        profiles = [get_application("CoMD")]
        evaluate_grid_cached(model, profiles, DesignSpace(), cache=cache)
        assert cache.stats().entries == 1
        assert cache.invalidate(model=model) == 1
        assert cache.stats().entries == 0
        # Profile-scoped invalidation conservatively drops grid entries.
        evaluate_grid_cached(model, profiles, DesignSpace(), cache=cache)
        assert cache.invalidate(profile=get_application("SNAP")) == 1


class TestParallelSlabs:
    def _space(self):
        return DesignSpace(
            cu_counts=tuple(range(192, 385, 32)),
            frequencies=tuple(700e6 + 50e6 * k for k in range(9)),
            bandwidths=(1e12, 3e12, 5e12, 7e12),
        )

    def test_serial_fallback_matches_explore(self):
        profiles = [get_application(n) for n in application_names()[:4]]
        space = self._space()
        serial = explore(profiles, space, cache=False, engine="point")
        result = parallel_explore(
            profiles, space, max_workers=1, n_chunks=3, engine="tensor"
        )
        assert result.best_mean_index == serial.best_mean_index
        assert dict(result.per_app_best_index) == dict(
            serial.per_app_best_index
        )
        for name in serial.performance:
            np.testing.assert_allclose(
                result.performance[name],
                serial.performance[name],
                rtol=1e-12,
            )
            assert np.array_equal(
                result.feasible[name], serial.feasible[name]
            )

    def test_slabs_bit_identical_to_whole_grid(self):
        profiles = [get_application(n) for n in application_names()]
        space = self._space()
        grid = NodeModel().evaluate_grid(profiles, space)
        result = parallel_explore(
            profiles, space, max_workers=1, n_chunks=4, engine="tensor"
        )
        for i, name in enumerate(grid.names):
            assert np.array_equal(result.performance[name], grid.performance[i])
            assert np.array_equal(result.node_power[name], grid.power[i])

    def test_point_engine_rejects_batch_input(self):
        batch = ProfileBatch.from_profiles(
            [get_application("CoMD"), get_application("SNAP")]
        )
        with pytest.raises(TypeError):
            parallel_explore(
                batch, self._space(), max_workers=1, engine="point"
            )

    def test_metrics_snapshot_counts_slab_lookups(self):
        profiles = [get_application(n) for n in application_names()[:4]]
        space = self._space()
        result, snap = parallel_explore(
            profiles,
            space,
            max_workers=1,
            n_chunks=2,
            metrics=True,
            engine="tensor",
        )
        lookups = snap.counter("cache.eval.hits") + snap.counter(
            "cache.eval.misses"
        )
        # n_blocks * n_slabs tasks, one cache lookup each.
        assert lookups == 4
        assert result.best_mean_index >= 0
