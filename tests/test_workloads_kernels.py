"""KernelProfile validation and helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.kernels import KernelCategory, KernelProfile


def make(**overrides) -> KernelProfile:
    defaults = dict(
        name="k",
        category=KernelCategory.BALANCED,
        description="test",
    )
    defaults.update(overrides)
    return KernelProfile(**defaults)


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        ["parallel_fraction", "cache_hit_rate", "latency_sensitivity",
         "ext_memory_fraction", "cu_utilization", "issue_efficiency",
         "write_fraction"],
    )
    def test_unit_interval_fields(self, field):
        with pytest.raises(ValueError):
            make(**{field: -0.1})
        with pytest.raises(ValueError):
            make(**{field: 1.1})
        make(**{field: 0.0})
        make(**{field: 1.0})

    @pytest.mark.parametrize(
        "field", ["flops", "mlp_per_cu", "footprint_bytes"]
    )
    def test_positive_fields(self, field):
        with pytest.raises(ValueError):
            make(**{field: 0.0})
        with pytest.raises(ValueError):
            make(**{field: -1.0})

    @pytest.mark.parametrize("field", ["bytes_per_flop", "thrash_pressure"])
    def test_nonnegative_fields(self, field):
        with pytest.raises(ValueError):
            make(**{field: -0.01})
        make(**{field: 0.0})

    def test_compression_ratio_at_least_one(self):
        with pytest.raises(ValueError):
            make(compression_ratio=0.9)
        make(compression_ratio=1.0)


class TestDerived:
    def test_operational_intensity(self):
        p = make(bytes_per_flop=0.5)
        assert p.operational_intensity == pytest.approx(2.0)

    def test_operational_intensity_zero_bytes(self):
        p = make(bytes_per_flop=0.0)
        assert p.operational_intensity == float("inf")

    def test_category_str(self):
        assert str(KernelCategory.MEMORY_INTENSIVE) == "memory-intensive"


class TestWithOverrides:
    def test_returns_new_validated_instance(self):
        p = make()
        q = p.with_overrides(cache_hit_rate=0.9)
        assert q.cache_hit_rate == 0.9
        assert p.cache_hit_rate != 0.9 or p is not q

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            make().with_overrides(cache_hit_rate=2.0)

    def test_frozen(self):
        p = make()
        with pytest.raises(Exception):
            p.cache_hit_rate = 0.1  # type: ignore[misc]


class TestScaledProblem:
    def test_scales_flops_and_footprint_only(self):
        p = make(flops=1e12, footprint_bytes=1e9, bytes_per_flop=0.4)
        q = p.scaled_problem(4.0)
        assert q.flops == pytest.approx(4e12)
        assert q.footprint_bytes == pytest.approx(4e9)
        assert q.bytes_per_flop == p.bytes_per_flop

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ValueError):
            make().scaled_problem(0.0)

    @given(st.floats(min_value=0.1, max_value=100.0))
    def test_intensity_invariant_under_scaling(self, factor):
        p = make(bytes_per_flop=0.3)
        assert p.scaled_problem(factor).operational_intensity == pytest.approx(
            p.operational_intensity
        )
