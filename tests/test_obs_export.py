"""Tests for live telemetry export and SLO health tracking.

Covers the Prometheus text-exposition formatter and its exact-inverse
parser (including a hypothesis property: format -> parse -> equal
snapshot), the :class:`~repro.obs.export.PeriodicSampler` JSONL
interval-diff stream under a fake clock (and the algebra tying the
interval diffs back to the cumulative snapshot), and the rolling-window
:class:`~repro.obs.slo.SloTracker` quantiles/rates/budget math.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.export import (
    PeriodicSampler,
    parse_prometheus_text,
    prometheus_text,
    write_prometheus,
)
from repro.obs.metrics import (
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.slo import SloTracker


class FakeClock:
    """A clock advancing `step` seconds per reading."""

    def __init__(self, start: float = 1.0, step: float = 0.0):
        self.now = start
        self.step = step

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _hist(
    bounds=(0.001, 0.01, 0.1), counts=(1, 2, 3, 4), total=0.5
) -> HistogramSnapshot:
    return HistogramSnapshot(
        bounds=tuple(bounds),
        counts=tuple(counts),
        total=total,
        count=sum(counts),
    )


class TestPrometheusText:
    def test_counter_family(self):
        snap = MetricsSnapshot(counters={"cache.eval.hits": 7})
        text = prometheus_text(snap)
        assert "# TYPE repro_cache_eval_hits_total counter" in text
        assert "repro_cache_eval_hits_total 7" in text.splitlines()

    def test_gauge_family(self):
        snap = MetricsSnapshot(gauges={"proc.rss_bytes": 12345.0})
        text = prometheus_text(snap)
        assert "# TYPE repro_proc_rss_bytes gauge" in text
        assert "repro_proc_rss_bytes 12345.0" in text.splitlines()

    def test_histogram_buckets_are_cumulative(self):
        snap = MetricsSnapshot(histograms={"lat": _hist()})
        lines = prometheus_text(snap).splitlines()
        buckets = [l for l in lines if "_bucket" in l]
        assert buckets == [
            'repro_lat_bucket{le="0.001"} 1',
            'repro_lat_bucket{le="0.01"} 3',
            'repro_lat_bucket{le="0.1"} 6',
            'repro_lat_bucket{le="+Inf"} 10',
        ]
        assert "repro_lat_sum 0.5" in lines
        assert "repro_lat_count 10" in lines

    def test_output_is_sorted_and_deterministic(self):
        snap = MetricsSnapshot(counters={"b": 1, "a": 2}, gauges={"z": 0.0})
        assert prometheus_text(snap) == prometheus_text(snap)
        lines = prometheus_text(snap).splitlines()
        assert lines.index("repro_a_total 2") < lines.index(
            "repro_b_total 1"
        )

    def test_round_trip_hand_built(self):
        snap = MetricsSnapshot(
            counters={"runs": 3},
            gauges={"depth": -2.5},
            histograms={"lat": _hist(total=0.125)},
        )
        assert parse_prometheus_text(prometheus_text(snap)) == snap

    def test_parse_rejects_untyped_sample(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_x_total 3\n")

    def test_write_prometheus_file(self, tmp_path):
        snap = MetricsSnapshot(counters={"n": 1})
        path = tmp_path / "out.prom"
        write_prometheus(str(path), snap)
        assert parse_prometheus_text(path.read_text()) == snap


# Names already Prometheus-safe round-trip exactly; each family uses a
# distinct prefix so `_total`/`_bucket`/`_sum`/`_count` suffixes can
# never collide across families.
_name = st.from_regex(r"[a-z][a-z0-9_]{0,12}", fullmatch=True).filter(
    lambda s: not s.endswith(("_total", "_bucket", "_sum", "_count", "_"))
)
_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


@st.composite
def _snapshots(draw):
    counters = {
        f"c_{name}": draw(st.integers(min_value=0, max_value=10**9))
        for name in draw(st.sets(_name, max_size=3))
    }
    gauges = {
        f"g_{name}": draw(_finite)
        for name in draw(st.sets(_name, max_size=3))
    }
    histograms = {}
    for name in draw(st.sets(_name, max_size=2)):
        bounds = tuple(
            sorted(
                draw(
                    st.sets(
                        st.floats(
                            min_value=1e-9,
                            max_value=1e9,
                            allow_nan=False,
                        ),
                        min_size=1,
                        max_size=5,
                    )
                )
            )
        )
        counts = tuple(
            draw(st.integers(min_value=0, max_value=1000))
            for _ in range(len(bounds) + 1)
        )
        histograms[f"h_{name}"] = HistogramSnapshot(
            bounds=bounds,
            counts=counts,
            total=draw(_finite),
            count=sum(counts),
        )
    return MetricsSnapshot(
        counters=counters, gauges=gauges, histograms=histograms
    )


class TestPrometheusRoundTripProperty:
    @given(snap=_snapshots())
    @settings(max_examples=60, deadline=None)
    def test_format_parse_round_trip(self, snap):
        assert parse_prometheus_text(prometheus_text(snap)) == snap


# ----------------------------------------------------------------------
# PeriodicSampler
# ----------------------------------------------------------------------
class TestPeriodicSampler:
    def _sampler(self, tmp_path, registry, clock):
        return PeriodicSampler(
            str(tmp_path / "metrics.jsonl"),
            interval_s=1.0,
            registry=registry,
            clock=clock,
            wall_clock=lambda: 1700000000.0,
            sample_proc=False,
        )

    def test_records_are_interval_diffs(self, tmp_path):
        registry = MetricsRegistry()
        clock = FakeClock(start=10.0)
        sampler = self._sampler(tmp_path, registry, clock)

        registry.inc("work", 3)
        clock.advance(1.0)
        first = sampler.sample()
        assert first["sample"] == 1
        assert first["elapsed_s"] == pytest.approx(1.0)
        assert first["counters"] == {"work": 3}

        registry.inc("work", 2)
        registry.set_gauge("depth", 4.0)
        clock.advance(1.0)
        second = sampler.sample()
        assert second["counters"] == {"work": 2}  # delta, not total
        assert second["gauges"] == {"depth": 4.0}
        sampler.stop(final=False)

    def test_jsonl_lines_sum_to_cumulative(self, tmp_path):
        registry = MetricsRegistry()
        clock = FakeClock(start=0.0)
        sampler = self._sampler(tmp_path, registry, clock)
        for k in range(4):
            registry.inc("work", k + 1)
            registry.observe("lat", 0.01 * (k + 1))
            clock.advance(1.0)
            sampler.sample()
        sampler.stop(final=False)

        lines = [
            json.loads(line)
            for line in (tmp_path / "metrics.jsonl")
            .read_text()
            .splitlines()
        ]
        assert len(lines) == 4
        total = sum(
            rec.get("counters", {}).get("work", 0) for rec in lines
        )
        assert total == registry.snapshot().counter("work")
        observed = sum(
            rec.get("histograms", {}).get("lat", {}).get("count", 0)
            for rec in lines
        )
        assert observed == 4

    def test_stop_writes_cumulative_prometheus_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        clock = FakeClock(start=0.0, step=0.5)
        sampler = self._sampler(tmp_path, registry, clock)
        registry.inc("work", 3)
        sampler.sample()
        registry.inc("work", 4)
        sampler.stop()  # final sample + .prom
        prom = (tmp_path / "metrics.prom").read_text()
        parsed = parse_prometheus_text(prom)
        assert parsed.counter("work") == 7

    def test_stop_is_idempotent_and_terminal(self, tmp_path):
        registry = MetricsRegistry()
        sampler = self._sampler(tmp_path, registry, FakeClock(step=0.1))
        sampler.sample()
        sampler.stop()
        sampler.stop()
        assert sampler.sample() is None

    def test_context_manager(self, tmp_path):
        registry = MetricsRegistry()
        with self._sampler(tmp_path, registry, FakeClock(step=0.1)) as s:
            registry.inc("n")
            s.sample()
        assert (tmp_path / "metrics.prom").exists()

    def test_thread_mode_smoke(self, tmp_path):
        registry = MetricsRegistry()
        sampler = PeriodicSampler(
            str(tmp_path / "m.jsonl"),
            interval_s=0.01,
            registry=registry,
            sample_proc=False,
        )
        sampler.start()
        registry.inc("n", 5)
        import time as _time

        _time.sleep(0.05)
        sampler.stop()
        lines = (tmp_path / "m.jsonl").read_text().splitlines()
        assert lines  # sampled at least once
        total = sum(
            json.loads(l).get("counters", {}).get("n", 0) for l in lines
        )
        assert total == 5

    def test_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            PeriodicSampler(str(tmp_path / "m.jsonl"), interval_s=0.0)


# ----------------------------------------------------------------------
# SloTracker
# ----------------------------------------------------------------------
class TestSloTracker:
    def test_quantiles_nearest_rank(self):
        clock = FakeClock(start=0.0)
        slo = SloTracker(clock=clock)
        for ms in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            slo.record(ms / 1e3, "ok")
        health = slo.health()
        assert health["requests"] == 10
        assert health["p50_latency_s"] == pytest.approx(0.050)
        assert health["p99_latency_s"] == pytest.approx(0.100)

    def test_status_categorization(self):
        slo = SloTracker(clock=FakeClock(start=0.0))
        slo.record(0.01, "ok")
        slo.record(None, "shed-queue-full")
        slo.record(None, "expired")
        slo.record(0.02, "failed")
        slo.record(0.02, "shutdown")
        health = slo.health()
        assert health["ok"] == 1
        assert health["shed"] == 2
        assert health["errors"] == 2
        assert health["shed_rate"] == pytest.approx(0.4)
        assert health["error_rate"] == pytest.approx(0.4)

    def test_budget_burn(self):
        slo = SloTracker(clock=FakeClock(start=0.0), error_budget=0.1)
        for _ in range(9):
            slo.record(0.01, "ok")
        slo.record(None, "shed")
        health = slo.health()
        # 10% bad over a 10% budget: exactly exhausted.
        assert health["budget_burn"] == pytest.approx(1.0)
        assert health["budget_remaining"] == pytest.approx(0.0)

    def test_window_prunes_old_events(self):
        clock = FakeClock(start=0.0)
        slo = SloTracker(clock=clock, window_s=10.0)
        slo.record(0.5, "ok")
        clock.advance(11.0)
        slo.record(0.001, "ok")
        health = slo.health()
        assert health["requests"] == 1
        assert health["p99_latency_s"] == pytest.approx(0.001)

    def test_p99_target_flag(self):
        slo = SloTracker(clock=FakeClock(start=0.0), target_p99_s=0.05)
        slo.record(0.01, "ok")
        assert slo.health()["p99_within_target"] is True
        slo.record(0.2, "ok")
        assert slo.health()["p99_within_target"] is False

    def test_publish_writes_gauges(self):
        registry = MetricsRegistry()
        slo = SloTracker(clock=FakeClock(start=0.0), registry=registry)
        slo.record(0.025, "ok")
        health = slo.publish()
        gauges = registry.snapshot().gauges
        assert gauges["serve.slo.requests"] == 1.0
        assert gauges["serve.slo.p99_latency_s"] == pytest.approx(0.025)
        assert gauges["serve.slo.p99_within_target"] == 1.0
        assert health["requests"] == 1

    def test_empty_window_is_healthy(self):
        health = SloTracker(clock=FakeClock(start=0.0)).health()
        assert health["requests"] == 0
        assert health["budget_burn"] == 0.0
        assert not math.isnan(health["p99_latency_s"])

    def test_validation(self):
        with pytest.raises(ValueError):
            SloTracker(window_s=0.0)
        with pytest.raises(ValueError):
            SloTracker(error_budget=0.0)
        with pytest.raises(ValueError):
            SloTracker(error_budget=1.5)
