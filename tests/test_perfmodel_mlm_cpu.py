"""Multi-level memory blending and the leading-loads CPU model."""

import numpy as np
import pytest

from repro.perfmodel.cpu import CpuParams, dvfs_speedup, leading_loads_time
from repro.perfmodel.machine import MachineParams
from repro.perfmodel.mlm import blended_memory_time, miss_rate_sweep
from repro.workloads.catalog import get_application


class TestBlendedMemoryTime:
    def test_all_in_package(self):
        t = blended_memory_time(3e12, 0.0, 3e12)
        assert t == pytest.approx(1.0)

    def test_all_external_is_much_slower(self):
        m = MachineParams()
        t_in = blended_memory_time(1e12, 0.0, 3e12, m)
        t_ext = blended_memory_time(1e12, 1.0, 3e12, m)
        assert t_ext / t_in == pytest.approx(3e12 / m.ext_bandwidth, rel=1e-9)

    def test_monotone_in_miss_fraction(self):
        times = [
            blended_memory_time(1e12, f, 3e12)
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            blended_memory_time(1e12, 1.5, 3e12)
        with pytest.raises(ValueError):
            blended_memory_time(-1.0, 0.5, 3e12)
        with pytest.raises(ValueError):
            blended_memory_time(1e12, 0.5, 0.0)


class TestMissRateSweep:
    def test_normalized_to_one_at_zero(self):
        rel = miss_rate_sweep(get_application("CoMD"), 320, 1e9, 3e12)
        assert rel[0] == pytest.approx(1.0)

    def test_monotone_nonincreasing(self):
        rel = miss_rate_sweep(get_application("CoMD"), 320, 1e9, 3e12)
        assert np.all(np.diff(rel) <= 1e-9)

    def test_maxflops_flat(self):
        # Fig. 8: MaxFlops retains performance at any miss rate.
        rel = miss_rate_sweep(get_application("MaxFlops"), 320, 1e9, 3e12)
        assert rel[-1] > 0.95

    def test_memory_app_degrades_substantially(self):
        rel = miss_rate_sweep(get_application("SNAP"), 320, 1e9, 3e12)
        assert rel[-1] < 0.6

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            miss_rate_sweep(
                get_application("CoMD"), 320, 1e9, 3e12, miss_rates=(1.2,)
            )


class TestCpuModel:
    def test_leading_loads_decomposition(self):
        p = CpuParams(ref_freq=2e9, core_cycles=2e9, leading_load_time=0.5)
        # At the reference frequency: 1 s core + 0.5 s memory.
        assert float(leading_loads_time(p, 2e9)) == pytest.approx(1.5)

    def test_memory_component_frequency_invariant(self):
        p = CpuParams(core_cycles=0.0, leading_load_time=0.4)
        assert float(leading_loads_time(p, 1e9)) == pytest.approx(0.4)
        assert float(leading_loads_time(p, 4e9)) == pytest.approx(0.4)

    def test_dvfs_speedup_sublinear_with_memory_time(self):
        p = CpuParams(ref_freq=2e9, core_cycles=2e9, leading_load_time=0.5)
        s = dvfs_speedup(p, 2e9, 4e9)
        assert 1.0 < s < 2.0  # Amdahl-limited by the memory component

    def test_dvfs_speedup_linear_without_memory_time(self):
        p = CpuParams(ref_freq=2e9, core_cycles=2e9, leading_load_time=0.0)
        assert dvfs_speedup(p, 2e9, 4e9) == pytest.approx(2.0)

    def test_vectorized_frequencies(self):
        p = CpuParams()
        out = leading_loads_time(p, np.array([1e9, 2e9, 4e9]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuParams(ref_freq=0.0)
        with pytest.raises(ValueError):
            CpuParams(core_cycles=-1.0)
        with pytest.raises(ValueError):
            leading_loads_time(CpuParams(), 0.0)
