"""The persistent sharded worker pool (``repro.perf.pool``).

Covers the scheduling contract (stable shard routing, round-robin
fallback, stealing only from a backlog), fault tolerance (task errors,
worker death and respawn), the observability bridges (merged worker
metrics deltas, republished memory gauges, worker-side spans), payload
dedup, concurrent spill-directory use, and bit-identity of the pooled
DSE/experiment fan-outs against their serial counterparts.
"""

import os
import time

import numpy as np
import pytest

from repro.core.dse import explore
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.perf.evalcache import MemsysCache
from repro.perf.parallel import parallel_explore, run_experiments
from repro.perf.pool import POLICIES, PoolTask, ShardedPool, stable_shard
from repro.workloads.catalog import get_application


# ----------------------------------------------------------------------
# Worker payloads (module-level: picklable)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _whoami(_tag=None):
    return os.getpid()


def _boom():
    raise ValueError("kaput")


def _sleep_for(seconds):
    time.sleep(seconds)
    return seconds


def _die_once(sentinel_path):
    """Kill the worker on first execution; succeed on the re-run."""
    if not os.path.exists(sentinel_path):
        with open(sentinel_path, "w", encoding="ascii") as fh:
            fh.write("died")
        os._exit(3)
    return "survived"


def _spill_sweep(spill_dir, seed):
    """Run a MemsysCache sweep against a shared spill directory.

    A fresh cache per call means every lookup goes to disk (or
    computes), so concurrent workers race on the same spill files.
    """
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 20, size=1500)
    writes = rng.random(1500) < 0.5
    cache = MemsysCache(spill_dir=spill_dir)
    stats = cache.dram_stats(addrs, writes, capacity_bytes=1 << 19)
    from dataclasses import astuple

    return astuple(stats)


def _new_pool(n_shards=2, **kwargs):
    try:
        return ShardedPool(n_shards, **kwargs)
    except (OSError, PermissionError) as exc:  # pragma: no cover
        pytest.skip(f"cannot spawn worker processes: {exc}")


@pytest.fixture(scope="module")
def pool():
    """One long-lived 2-shard pool shared by the cheap tests — reuse
    across tests is itself part of what's under test."""
    p = _new_pool(2)
    yield p
    p.shutdown()


class TestStableShard:
    def test_deterministic_and_in_range(self):
        for key in [("CoMD", 0), ("CoMD", 1), "x", 42, (1, 2, 3)]:
            first = stable_shard(key, 4)
            assert first == stable_shard(key, 4)
            assert 0 <= first < 4

    def test_spreads_keys(self):
        shards = {stable_shard(("profile", i), 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}


class TestShardedPoolBasics:
    def test_results_in_submission_order(self, pool):
        tasks = [PoolTask(fn=_square, args=(i,)) for i in range(17)]
        assert pool.run(tasks) == [i * i for i in range(17)]

    def test_empty_task_list(self, pool):
        assert pool.run([]) == []
        results, snap = pool.run([], metrics=True)
        assert results == [] and snap.counters == {}

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ShardedPool(2, policy="random")
        assert POLICIES[0] == "affinity"

    def test_closed_pool_raises(self):
        p = _new_pool(1)
        p.shutdown()
        with pytest.raises(RuntimeError):
            p.run([PoolTask(fn=_square, args=(1,))])
        p.shutdown()  # idempotent

    def test_task_counter_advances(self, pool):
        before = pool.stats().tasks
        pool.run([PoolTask(fn=_square, args=(i,)) for i in range(5)])
        assert pool.stats().tasks == before + 5


class TestScheduling:
    def test_affinity_pins_key_to_worker_across_runs(self, pool):
        tasks = [
            PoolTask(fn=_whoami, args=(i,), shard_key=("pin", i % 4))
            for i in range(8)
        ]
        # batch_size covers each worker's whole queue: no stealing, so
        # routing alone decides placement.
        first = pool.run(tasks, batch_size=len(tasks))
        second = pool.run(tasks, batch_size=len(tasks))
        # Same shard_key -> same worker pid, within and across runs.
        for run in (first, second):
            by_key = {}
            for task, pid in zip(tasks, run):
                by_key.setdefault(task.shard_key, set()).add(pid)
            assert all(len(pids) == 1 for pids in by_key.values())
        for task_idx in range(8):
            assert first[task_idx] == second[task_idx]

    def test_roundrobin_uses_both_workers(self):
        with _new_pool(2, policy="roundrobin") as p:
            pids = p.run(
                [
                    PoolTask(fn=_whoami, args=(i,), shard_key="same")
                    for i in range(8)
                ],
                batch_size=1,
            )
        # Round-robin ignores the identical shard keys.
        assert len(set(pids)) == 2

    def test_idle_worker_steals_from_backlog(self, pool):
        # Craft keys that all hash to shard 0: worker 1 starts idle and
        # must steal (its own queue is empty, the other has a backlog).
        key = next(
            ("hot", i) for i in range(64) if pool.shard_for(("hot", i)) == 0
        )
        before = pool.stats().steals
        pids = pool.run(
            [PoolTask(fn=_whoami, args=(i,), shard_key=key) for i in range(12)],
            batch_size=1,
        )
        assert pool.stats().steals > before
        assert len(set(pids)) == 2


class TestFaultTolerance:
    def test_error_propagates_with_label(self, pool):
        with pytest.raises(RuntimeError, match="exploder") as excinfo:
            pool.run([PoolTask(fn=_boom, label="exploder")])
        assert "kaput" in str(excinfo.value.__cause__)

    def test_pool_usable_after_error(self, pool):
        with pytest.raises(RuntimeError):
            pool.run([PoolTask(fn=_boom)])
        assert pool.run([PoolTask(fn=_square, args=(6,))]) == [36]

    def test_worker_death_requeues_and_restarts(self, tmp_path):
        with _new_pool(2) as p:
            sentinel = str(tmp_path / "died-once")
            tasks = [PoolTask(fn=_square, args=(i,)) for i in range(4)]
            tasks.insert(2, PoolTask(fn=_die_once, args=(sentinel,)))
            results = p.run(tasks)
            assert results[2] == "survived"
            assert [r for i, r in enumerate(results) if i != 2] == [
                0, 1, 4, 9,
            ]
            assert p.stats().worker_restarts >= 1

    def test_kill_worker_then_reuse(self):
        with _new_pool(2) as p:
            p.run([PoolTask(fn=_square, args=(1,))])
            before = p.stats().worker_restarts
            p.kill_worker(0)
            p.kill_worker(1)
            out = p.run([PoolTask(fn=_square, args=(i,)) for i in range(6)])
            assert out == [i * i for i in range(6)]
            assert p.stats().worker_restarts == before + 2

    def test_shutdown_while_run_in_flight(self):
        """Regression: shutting the pool down mid-``run`` (from another
        thread, as the serving layer's close path does) must fail the
        run promptly instead of respawning replacement workers — the
        shutdown finalizer runs only once, so replacements spawned
        after it would never be reaped — and must leave no live worker
        processes behind."""
        import threading

        p = _new_pool(1)
        procs = [w.process for w in p._workers if w is not None]
        failure: dict = {}

        def runner():
            try:
                p.run(
                    [PoolTask(fn=_sleep_for, args=(0.5,))
                     for _ in range(6)]
                )
                failure["error"] = None
            except RuntimeError as exc:
                failure["error"] = exc

        thread = threading.Thread(target=runner)
        thread.start()
        time.sleep(0.2)  # first task in flight on the worker
        p.shutdown()
        thread.join(timeout=30)  # pre-fix guard: the run must not hang
        assert not thread.is_alive()
        assert isinstance(failure.get("error"), RuntimeError)
        assert "shut down" in str(failure["error"])
        # No replacement workers were spawned and everything is dead.
        deadline = time.monotonic() + 10
        live = [w for w in p._workers if w is not None]
        all_procs = procs + [w.process for w in live]
        while time.monotonic() < deadline:
            if not any(proc.is_alive() for proc in all_procs):
                break
            time.sleep(0.05)
        assert not any(proc.is_alive() for proc in all_procs)
        p.shutdown()  # still idempotent


class TestObservabilityBridges:
    def test_metrics_deltas_merge_across_workers(self):
        profiles = [get_application("CoMD"), get_application("MaxFlops")]
        # Whole-queue batches keep the repeat sweep steal-free, so every
        # warm lookup lands on the worker that computed it.
        with _new_pool(2, batch_size=2 * 7) as p:
            n_tasks = 2 * 7
            _, cold = parallel_explore(
                profiles, n_chunks=7, pool=p, metrics=True
            )
            assert cold.counter("cache.eval.misses") == n_tasks
            # Steal-free warm repeat: every lookup must hit the cache
            # that worker warmed itself.
            _, warm = parallel_explore(
                profiles, n_chunks=7, pool=p, metrics=True
            )
            assert warm.counter("cache.eval.misses") == 0
            assert warm.counter("cache.eval.hits") == n_tasks
            merged = p.merged_snapshot()
            assert merged.counter("cache.eval.misses") == n_tasks
            assert any(rate > 0 for rate in p.shard_cache_hit_rates())

    def test_worker_memory_gauges_republished(self):
        with _new_pool(2) as p:
            p.run(
                [PoolTask(fn=_square, args=(i,)) for i in range(4)],
                metrics=True,
            )
            gauges = obs_metrics.default_registry().snapshot().gauges
            worker_gauges = [
                name for name in gauges if name.startswith("pool.worker")
            ]
            assert any(name.endswith(".rss_bytes") for name in worker_gauges)
            assert all(gauges[name] > 0 for name in worker_gauges)

    def test_worker_spans_merged_into_parent_trace(self):
        with _new_pool(2) as p:
            with obs_trace.trace() as tracer:
                p.run(
                    [
                        PoolTask(fn=_square, args=(i,), label=f"task.{i}")
                        for i in range(4)
                    ]
                )
            names = {e["name"] for e in tracer.events}
            assert {f"task.{i}" for i in range(4)} <= names
            worker_pids = {
                e["pid"]
                for e in tracer.events
                if e["name"].startswith("task.")
            }
            assert worker_pids and os.getpid() not in worker_pids

    def test_task_spans_form_connected_tree_across_workers(self):
        """One pool.run renders as one connected tree: every worker-side
        task span is a child of the parent-side pool.run span, with
        exact deterministic ids."""
        tracer = obs_trace.Tracer(
            context=obs_trace.SpanContext.root("t1")
        )
        with _new_pool(2) as p:
            with obs_trace.trace(tracer=tracer):
                p.run(
                    [
                        PoolTask(fn=_square, args=(i,), label=f"task.{i}")
                        for i in range(4)
                    ]
                )
        (run_event,) = [
            e for e in tracer.events if e["name"] == "pool.run"
        ]
        assert run_event["args"]["trace_id"] == "t1"
        assert run_event["args"]["span_id"] == "0.1"
        assert run_event["args"]["parent_id"] == "0"
        assert run_event["args"]["tasks"] == 4
        task_events = [
            e for e in tracer.events if e["name"].startswith("task.")
        ]
        assert len(task_events) == 4
        for event in task_events:
            assert event["args"]["trace_id"] == "t1"
            assert event["args"]["parent_id"] == "0.1"
        # Task ids are the four children of pool.run, one each.
        assert {e["args"]["span_id"] for e in task_events} == {
            "0.1.1", "0.1.2", "0.1.3", "0.1.4",
        }


class TestPayloadDedup:
    def test_repeat_run_returns_parent_cached_objects(self, pool):
        tasks = [
            PoolTask(
                fn=_square, args=(i,), dedup_key=f"sq-{i}", shard_key=i
            )
            for i in range(6)
        ]
        first = pool.run(tasks)
        second = pool.run(tasks)
        assert second == first
        # The worker executed but shipped only a reference; the parent
        # answered from its payload store with the same objects.
        for a, b in zip(first, second):
            assert a is b

    def test_dedup_disabled_with_zero_cache(self):
        with _new_pool(1, result_cache_size=0) as p:
            tasks = [
                PoolTask(fn=_square, args=(3,), dedup_key="sq-3")
            ]
            assert p.run(tasks) == [9]
            assert p.run(tasks) == [9]


class TestConcurrentSpill:
    def test_shared_spill_dir_under_contention(self, tmp_path):
        # Eight tasks, all computing the same key against one spill
        # directory, spread round-robin so both workers race on the
        # same file. Atomic tmp+rename must keep every entry readable.
        spill = str(tmp_path)
        with _new_pool(2, policy="roundrobin") as p:
            results = p.run(
                [
                    PoolTask(fn=_spill_sweep, args=(spill, 11))
                    for _ in range(8)
                ],
                batch_size=1,
            )
        assert all(r == results[0] for r in results)
        files = os.listdir(spill)
        assert any(name.endswith(".pkl") for name in files)
        # No orphaned temp files from the racing writers.
        assert not [name for name in files if ".tmp" in name]
        # A fresh cache warm-starts from the surviving spill entry.
        probe = MemsysCache(spill_dir=spill)
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 1 << 20, size=1500)
        writes = rng.random(1500) < 0.5
        probe.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        assert probe.stats().spill_hits == 1

    def test_corrupt_spill_entry_degrades_to_miss(self, tmp_path):
        spill = str(tmp_path)
        # Seed the directory, then corrupt every entry in place.
        _spill_sweep(spill, 23)
        reference = _spill_sweep(spill, 23)
        for name in os.listdir(spill):
            with open(os.path.join(spill, name), "wb") as fh:
                fh.write(b"\x00partial or torn write")
        with _new_pool(2, policy="roundrobin") as p:
            results = p.run(
                [
                    PoolTask(fn=_spill_sweep, args=(spill, 23))
                    for _ in range(4)
                ],
                batch_size=1,
            )
        assert all(r == reference for r in results)


class TestPooledFanouts:
    SUBSET = ["table1", "fig7"]

    def test_parallel_explore_pool_identical_to_serial(self, pool):
        profiles = [get_application("CoMD"), get_application("MaxFlops")]
        serial = explore(profiles, cache=False)
        pooled = parallel_explore(profiles, n_chunks=5, pool=pool)
        assert pooled.best_mean_index == serial.best_mean_index
        assert dict(pooled.per_app_best_index) == dict(
            serial.per_app_best_index
        )
        for name in serial.performance:
            assert np.array_equal(
                pooled.performance[name], serial.performance[name]
            )
            assert np.array_equal(
                pooled.node_power[name], serial.node_power[name]
            )

    def test_parallel_explore_roundrobin_identical(self):
        profiles = [get_application("CoMD"), get_application("MaxFlops")]
        serial = explore(profiles, cache=False)
        with _new_pool(2, policy="roundrobin") as p:
            pooled = parallel_explore(profiles, n_chunks=5, pool=p)
        assert pooled.best_mean_index == serial.best_mean_index
        for name in serial.performance:
            assert np.array_equal(
                pooled.performance[name], serial.performance[name]
            )

    def test_parallel_explore_identical_after_worker_death(self, pool):
        profiles = [get_application("CoMD"), get_application("MaxFlops")]
        serial = explore(profiles, cache=False)
        pool.kill_worker(0)
        pooled = parallel_explore(profiles, n_chunks=5, pool=pool)
        assert pooled.best_mean_index == serial.best_mean_index
        for name in serial.performance:
            assert np.array_equal(
                pooled.performance[name], serial.performance[name]
            )

    def test_run_experiments_pool_matches_serial(self, pool):
        serial = run_experiments(self.SUBSET, parallel=False)
        pooled = run_experiments(self.SUBSET, parallel=True, pool=pool)
        assert list(pooled) == list(serial)
        for name in serial:
            assert pooled[name].render() == serial[name].render()
