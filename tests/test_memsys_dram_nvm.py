"""HBM stack and NVM module models."""

import pytest

from repro.memsys.dram import HBMStack, HBMTimings, hbm_generation
from repro.memsys.nvm import NVMModule, NVMParams


class TestHbmGenerations:
    def test_gen1_matches_jedec(self):
        cap, bw = hbm_generation(1)
        assert cap == pytest.approx(1e9)
        assert bw == pytest.approx(128e9)

    def test_gen2_matches_paper(self):
        cap, bw = hbm_generation(2)
        # Paper quotes 8 GB per stack for HBM2-class capacity points; the
        # per-generation *doubling* model starts from 1 GB, so gen-2
        # capacity is the 2 GB doubling step.
        assert cap == pytest.approx(2e9)
        assert bw == pytest.approx(256e9)

    def test_exascale_generation_projection(self):
        # Section II-B1: 32 GB and one more bandwidth doubling.
        cap, bw = hbm_generation(6)
        assert cap == pytest.approx(32e9)
        assert bw == pytest.approx(512e9)

    def test_eight_stacks_meet_targets(self):
        stack = HBMStack()
        assert 8 * stack.capacity == pytest.approx(256e9)
        assert 8 * stack.bandwidth == pytest.approx(4.096e12, rel=0.05)

    def test_invalid_generation(self):
        with pytest.raises(ValueError):
            hbm_generation(0)

    def test_from_generation(self):
        s = HBMStack.from_generation(6)
        assert s.capacity == pytest.approx(32e9)


class TestHbmStack:
    def test_refresh_penalty_below_limit(self):
        s = HBMStack()
        assert s.effective_bandwidth(60.0) == pytest.approx(
            s.bandwidth * 0.95
        )

    def test_refresh_doubles_above_85c(self):
        # Section V-D: DRAM above 85 C needs doubled refresh.
        s = HBMStack()
        assert s.effective_bandwidth(90.0) < s.effective_bandwidth(84.9)

    def test_service_latency_interpolates(self):
        s = HBMStack()
        t = s.timings
        assert s.service_latency(1.0) == t.row_hit_latency
        assert s.service_latency(0.0) == t.row_miss_latency
        assert (
            t.row_hit_latency
            < s.service_latency(0.5)
            < t.row_miss_latency
        )

    def test_sustained_rate_littles_law(self):
        s = HBMStack()
        rate = s.sustained_request_rate(1.0)
        assert rate == pytest.approx(
            s.timings.n_banks / s.timings.row_hit_latency
        )

    def test_hit_rate_bounds(self):
        with pytest.raises(ValueError):
            HBMStack().service_latency(1.5)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            HBMTimings(row_hit_latency=100e-9, row_miss_latency=50e-9)


class TestNvmModule:
    def test_density_advantage(self):
        # Paper footnote: NVM modules are 4x the capacity of DRAM modules.
        assert NVMModule().capacity == pytest.approx(4 * 64e9)

    def test_write_energy_exceeds_read(self):
        p = NVMParams()
        assert p.write_energy_per_bit > p.read_energy_per_bit

    def test_access_energy_mixes_reads_and_writes(self):
        m = NVMModule()
        reads = m.access_energy(1e6, 0.0)
        writes = m.access_energy(1e6, 1.0)
        mixed = m.access_energy(1e6, 0.5)
        assert reads < mixed < writes
        assert mixed == pytest.approx((reads + writes) / 2)

    def test_mean_latency_write_heavier(self):
        m = NVMModule()
        assert m.mean_latency(0.9) > m.mean_latency(0.1)

    def test_lifetime_infinite_without_writes(self):
        assert NVMModule().lifetime_seconds(0.0) == float("inf")

    def test_lifetime_decreases_with_write_rate(self):
        m = NVMModule()
        assert m.lifetime_seconds(1e9) > m.lifetime_seconds(1e10)

    def test_wear_leveling_derates(self):
        m = NVMModule()
        ideal = m.lifetime_seconds(1e9, wear_leveling_efficiency=1.0)
        real = m.lifetime_seconds(1e9, wear_leveling_efficiency=0.5)
        assert real == pytest.approx(ideal / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            NVMModule().access_energy(-1.0, 0.5)
        with pytest.raises(ValueError):
            NVMModule().access_energy(1.0, 1.5)
        with pytest.raises(ValueError):
            NVMModule().lifetime_seconds(1e9, wear_leveling_efficiency=0.0)
