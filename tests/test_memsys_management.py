"""Two-level memory management and the DRAM-cache mode."""

import numpy as np
import pytest

from repro.memsys.dramcache import DramCache
from repro.memsys.manager import (
    FirstTouchPolicy,
    HotnessMigrationPolicy,
    MemoryLevel,
    MemoryManager,
)

PAGE = 4096


def addresses(pages):
    return np.asarray(pages, dtype=np.int64) * PAGE


class TestFirstTouchPolicy:
    def test_fills_then_spills(self):
        mgr = MemoryManager(2 * PAGE, FirstTouchPolicy())
        mgr.epoch(addresses([0, 1, 2, 3]))
        levels = mgr.placement
        in_pkg = [p for p, l in levels.items() if l is MemoryLevel.IN_PACKAGE]
        assert len(in_pkg) == 2

    def test_never_migrates(self):
        mgr = MemoryManager(2 * PAGE, FirstTouchPolicy())
        mgr.epoch(addresses([0, 1, 2, 3]))
        mgr.epoch(addresses([2, 3, 2, 3]))  # hot pages are external now
        assert mgr.total_migrated == 0


class TestHotnessMigrationPolicy:
    def test_migrates_hot_pages_in(self):
        mgr = MemoryManager(2 * PAGE, HotnessMigrationPolicy())
        # Warm-up places cold pages 10, 11 in-package.
        mgr.epoch(addresses([10, 11]))
        # Hot pages 0, 1 dominate the next epoch.
        mgr.epoch(addresses([0, 0, 0, 1, 1, 1, 10]))
        hot_levels = {
            p: mgr.placement[p] for p in (0, 1)
        }
        assert all(l is MemoryLevel.IN_PACKAGE for l in hot_levels.values())

    def test_hit_fraction_improves_over_epochs(self):
        mgr = MemoryManager(2 * PAGE, HotnessMigrationPolicy())
        mgr.epoch(addresses([10, 11]))
        hot = addresses([0, 0, 0, 1, 1, 1])
        first = mgr.epoch(hot)
        second = mgr.epoch(hot)
        assert second > first

    def test_migration_limit_respected(self):
        mgr = MemoryManager(
            4 * PAGE, HotnessMigrationPolicy(migration_limit=1)
        )
        mgr.epoch(addresses([0, 1, 2, 3]))
        before = mgr.total_migrated
        mgr.epoch(addresses([10, 10, 11, 11, 12, 12, 13, 13]))
        assert mgr.total_migrated - before <= 1

    def test_capacity_never_exceeded(self):
        mgr = MemoryManager(3 * PAGE, HotnessMigrationPolicy())
        rng = np.random.default_rng(1)
        for _ in range(5):
            mgr.epoch(addresses(rng.integers(0, 50, size=200)))
            assert mgr.resident_pages <= 3

    def test_migration_traffic_accounting(self):
        mgr = MemoryManager(2 * PAGE, HotnessMigrationPolicy())
        mgr.epoch(addresses([5, 6]))
        mgr.epoch(addresses([0, 0, 1, 1]))
        assert mgr.migration_traffic_bytes() == mgr.total_migrated * PAGE

    def test_empty_epoch(self):
        mgr = MemoryManager(2 * PAGE, HotnessMigrationPolicy())
        assert mgr.epoch(np.array([], dtype=np.int64)) == 1.0

    def test_heap_eviction_matches_per_eviction_resort(self):
        """The incremental eviction heap must pick the same victims the
        old quadratic re-sort-per-eviction picked, including the
        (count, page) tie-break, under heavy churn."""

        def resort_place(access_counts, current, capacity_pages):
            # The pre-heap reference: re-sorted candidates per eviction.
            ranked = sorted(
                access_counts, key=lambda p: access_counts[p], reverse=True
            )
            want_in = set(ranked[:capacity_pages])
            placement = dict(current)
            for page in access_counts:
                placement.setdefault(page, MemoryLevel.EXTERNAL)
            to_promote = [
                p
                for p in ranked[:capacity_pages]
                if placement.get(p) is not MemoryLevel.IN_PACKAGE
            ]
            resident = {
                p
                for p, lvl in placement.items()
                if lvl is MemoryLevel.IN_PACKAGE
            }
            migrated = 0
            for page in to_promote:
                if len(resident) >= capacity_pages:
                    evictable = sorted(
                        (p for p in resident if p not in want_in),
                        key=lambda p: (access_counts.get(p, 0), p),
                    )
                    if not evictable:
                        break
                    victim = evictable[0]
                    placement[victim] = MemoryLevel.EXTERNAL
                    resident.discard(victim)
                placement[page] = MemoryLevel.IN_PACKAGE
                resident.add(page)
                migrated += 1
            return placement, migrated

        policy = HotnessMigrationPolicy()
        rng = np.random.default_rng(7)
        capacity = 40
        current: dict[int, MemoryLevel] = {}
        reference = {}
        for _ in range(12):
            # Shifting hot set: most of the working set turns over each
            # epoch, so nearly every promotion needs an eviction. Tied
            # counts (every page seen once or twice) stress the
            # page-number tie-break.
            pages = rng.integers(0, 300, size=400)
            unique, counts = np.unique(pages, return_counts=True)
            access_counts = dict(zip(unique.tolist(), counts.tolist()))
            result = policy.place(access_counts, current, capacity)
            reference, ref_migrated = resort_place(
                access_counts, reference, capacity
            )
            assert dict(result.level_of_page) == reference
            assert result.migrated_pages == ref_migrated
            current = dict(result.level_of_page)


class TestDramCache:
    def test_cold_miss_then_hit(self):
        cache = DramCache(capacity_bytes=1 << 20)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = DramCache(
            capacity_bytes=8 * 4096, page_bytes=4096, associativity=2
        )
        # Two pages mapping to the same set (n_sets = 4): 0 and 4.
        cache.access(0)
        cache.access(4 * 4096)
        cache.access(8 * 4096)  # evicts page 0 (LRU)
        assert not cache.access(0)
        assert cache.stats.evictions >= 1

    def test_dirty_eviction_writes_back(self):
        cache = DramCache(
            capacity_bytes=8 * 4096, page_bytes=4096, associativity=2
        )
        cache.access(0, is_write=True)
        cache.access(4 * 4096)
        cache.access(8 * 4096)
        assert cache.stats.writebacks >= 1

    def test_run_trace(self):
        cache = DramCache(capacity_bytes=1 << 20)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 18, size=5000)
        stats = cache.run_trace(addrs)
        assert stats.accesses == 5000
        assert 0.0 < stats.hit_rate < 1.0

    def test_capacity_loss_is_twenty_percent(self):
        # Section II-B3: 256 GB cache over 1 TB external hides 20% of
        # the addressable space.
        cache = DramCache(capacity_bytes=256e9)
        assert cache.addressable_capacity_loss(1.024e12) == pytest.approx(
            0.2, abs=0.01
        )

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DramCache(capacity_bytes=1024, page_bytes=4096, associativity=8)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            DramCache(capacity_bytes=1 << 20).access(-1)
