"""Hypothesis property tests for the serving batcher state machine.

The :class:`~repro.serve.batcher.BatcherCore` carries the serving
layer's correctness-critical invariants, so they get randomized
hammering on top of the example tests:

* **Conservation** — every admitted request terminates with exactly one
  outcome: nothing lost, nothing duplicated, no matter how admissions,
  plans, completions, expiries and flushes interleave.
* **Explicit rejection** — a shed request (queue full or hopeless
  deadline) always receives an explicit rejection outcome, never
  silence.
* **Within-stream order** — outcomes of accepted requests of one
  stream are released in admission order, including the inline
  fast path.
* **Valid terminal statuses** — every outcome carries a status from
  the public vocabulary.

The driver interprets a hypothesis-generated action script against the
core with a monotonically advancing virtual clock — the same sans-io
surface the deterministic harness uses, just with adversarial
schedules instead of a timing model.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.serve.batcher import BatcherCore, FixedPolicy
from repro.serve.requests import OK, SHED_DEADLINE, SHED_QUEUE_FULL, STATUSES

STREAMS = ("alpha", "beta", "gamma")

# One action of the interpreted script. Weighted toward admissions so
# scripts actually fill queues and form batches.
_action = st.one_of(
    st.tuples(
        st.just("admit"),
        st.sampled_from(STREAMS),
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=0.05)),
        st.booleans(),  # grouped vs solo
    ),
    st.tuples(
        st.just("inline"),
        st.sampled_from(STREAMS),
    ),
    st.tuples(st.just("plan")),
    st.tuples(st.just("complete_oldest")),
    st.tuples(st.just("complete_oldest_partial")),
    st.tuples(
        st.just("advance"),
        st.floats(min_value=0.0, max_value=0.1),
    ),
    st.tuples(st.just("expire")),
)

_scripts = st.lists(_action, min_size=1, max_size=120)
_policies = st.builds(
    FixedPolicy,
    batch=st.integers(min_value=1, max_value=9),
    est_request_s=st.sampled_from([1e-4, 2e-3, 5e-2]),
    dispatch_overhead_s=st.sampled_from([0.0, 1e-3]),
)


def _run_script(script, policy, max_queue):
    """Interpret *script*; returns (admitted tickets, outcomes)."""
    core = BatcherCore(policy, max_queue=max_queue)
    now = 0.0
    request_id = 0
    tickets = []
    inflight = []  # planned batches, oldest first
    outcomes = []

    for action in script:
        kind = action[0]
        if kind == "admit":
            _, stream, deadline_s, grouped = action
            ticket = core.admit(
                ("request", request_id),
                now,
                stream=stream,
                deadline_s=deadline_s,
                group_key="g" if grouped else None,
            )
            tickets.append(ticket)
            request_id += 1
        elif kind == "inline":
            _, stream = action
            ticket = core.admit_completed(
                ("request", request_id), ("hit", request_id), now,
                stream=stream,
            )
            tickets.append(ticket)
            request_id += 1
        elif kind == "plan":
            planned = core.plan(now)
            if planned is not None:
                inflight.append(planned)
        elif kind == "complete_oldest":
            if inflight:
                planned = inflight.pop(0)
                core.complete(
                    planned.batch_id,
                    {
                        t.seq: (OK, (("answer", t.seq), "coalesced"))
                        for t in planned.tickets
                    },
                    now,
                )
        elif kind == "complete_oldest_partial":
            # Drop half the results: the core must fail the missing
            # tickets rather than lose them.
            if inflight:
                planned = inflight.pop(0)
                core.complete(
                    planned.batch_id,
                    {
                        t.seq: (OK, ("answer", t.seq))
                        for t in planned.tickets[::2]
                    },
                    now,
                )
        elif kind == "advance":
            now += action[1]
        elif kind == "expire":
            core.expire(now)
        outcomes.extend(core.poll_outcomes())

    # Terminate everything still pending, like aclose() does.
    for planned in inflight:
        core.complete(
            planned.batch_id,
            {t.seq: (OK, ("answer", t.seq)) for t in planned.tickets},
            now,
        )
    core.flush(now)
    outcomes.extend(core.poll_outcomes())
    return core, tickets, outcomes


class TestBatcherInvariants:
    @given(script=_scripts, policy=_policies,
           max_queue=st.integers(min_value=1, max_value=6))
    @settings(max_examples=120, deadline=None)
    def test_no_request_lost_or_duplicated(
        self, script, policy, max_queue
    ):
        core, tickets, outcomes = _run_script(script, policy, max_queue)
        admitted = Counter(t.seq for t in tickets)
        answered = Counter(o.ticket.seq for o in outcomes)
        assert admitted == answered
        assert all(count == 1 for count in answered.values())
        _ = core  # stats consistency checked below

    @given(script=_scripts, policy=_policies,
           max_queue=st.integers(min_value=1, max_value=6))
    @settings(max_examples=120, deadline=None)
    def test_shed_requests_get_explicit_rejection(
        self, script, policy, max_queue
    ):
        _, tickets, outcomes = _run_script(script, policy, max_queue)
        by_seq = {o.ticket.seq: o for o in outcomes}
        for ticket in tickets:
            if ticket.stream_seq < 0:  # admission-shed
                outcome = by_seq[ticket.seq]
                assert outcome.status in (
                    SHED_QUEUE_FULL, SHED_DEADLINE
                )

    @given(script=_scripts, policy=_policies,
           max_queue=st.integers(min_value=1, max_value=6))
    @settings(max_examples=120, deadline=None)
    def test_within_stream_release_order(
        self, script, policy, max_queue
    ):
        _, _, outcomes = _run_script(script, policy, max_queue)
        per_stream: dict = {}
        for outcome in outcomes:
            if outcome.ticket.stream_seq >= 0:
                per_stream.setdefault(
                    outcome.ticket.stream, []
                ).append(outcome.ticket.stream_seq)
        for stream, seqs in per_stream.items():
            assert seqs == sorted(seqs), f"stream {stream} reordered"
            # Dense: accepted stream_seqs 0..k-1 all released.
            assert seqs == list(range(len(seqs)))

    @given(script=_scripts, policy=_policies,
           max_queue=st.integers(min_value=1, max_value=6))
    @settings(max_examples=120, deadline=None)
    def test_statuses_valid_and_stats_balance(
        self, script, policy, max_queue
    ):
        core, tickets, outcomes = _run_script(script, policy, max_queue)
        assert all(o.status in STATUSES for o in outcomes)
        stats = core.stats
        assert stats["admitted"] == len(tickets)
        terminal = (
            stats["completed_ok"] + stats["failed"]
            + stats["shed_queue_full"] + stats["shed_deadline"]
            + stats["expired"] + stats["shutdown"]
        )
        assert terminal == stats["admitted"]
        assert stats["accepted"] + stats["shed_queue_full"] + (
            stats["shed_deadline"]
        ) == stats["admitted"]
