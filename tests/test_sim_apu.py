"""Trace-driven APU simulation and cross-checks against the analytic model."""

import pytest

from repro.sim.apu_sim import ApuSimConfig, ApuSimulator
from repro.workloads.catalog import get_application
from repro.workloads.traces import TraceGenerator


def run(app: str, n: int = 8000, **cfg_overrides):
    profile = get_application(app)
    trace = TraceGenerator(profile, seed=42).generate(n)
    config = ApuSimConfig(**cfg_overrides)
    return ApuSimulator(config).run(trace)


class TestApuSimulator:
    def test_compute_kernel_near_peak(self):
        res = run("MaxFlops")
        peak = 16 * 64 * 1e9
        assert res.flops_rate > 0.8 * peak
        assert res.cu_utilization > 0.8

    def test_memory_kernel_far_from_peak(self):
        res = run("SNAP")
        peak = 16 * 64 * 1e9
        assert res.flops_rate < 0.5 * peak

    def test_category_ordering_matches_analytic_model(self):
        # The simulator independently reproduces the Table I taxonomy:
        # compute-intensive > balanced > memory-intensive utilization.
        u_compute = run("MaxFlops").cu_utilization
        u_balanced = run("CoMD").cu_utilization
        u_memory = run("SNAP").cu_utilization
        assert u_compute > u_balanced > u_memory

    def test_more_bandwidth_helps_memory_kernel(self):
        lo = run("SNAP", dram_bandwidth=50e9)
        hi = run("SNAP", dram_bandwidth=400e9)
        assert hi.flops_rate > lo.flops_rate

    def test_bandwidth_irrelevant_for_compute_kernel(self):
        lo = run("MaxFlops", dram_bandwidth=50e9)
        hi = run("MaxFlops", dram_bandwidth=400e9)
        assert hi.flops_rate == pytest.approx(lo.flops_rate, rel=0.1)

    def test_chiplet_extra_latency_small_penalty(self):
        # The Fig. 7 cross-check: tens of ns of extra hop latency on a
        # latency-hiding GPU costs only a few percent.
        base = run("CoMD")
        chiplet = run("CoMD", chiplet_extra_latency=25e-9)
        penalty = 1.0 - chiplet.flops_rate / base.flops_rate
        assert penalty < 0.15

    def test_dram_fraction_bounded(self):
        res = run("LULESH")
        assert 0.0 <= res.dram_fraction <= 1.0

    def test_empty_trace_rejected(self):
        profile = get_application("CoMD")
        trace = TraceGenerator(profile, seed=0).generate(1)
        sim = ApuSimulator()
        import numpy as np
        from repro.workloads.traces import MemoryTrace
        empty = MemoryTrace(
            addresses=np.array([], dtype=np.int64),
            is_write=np.array([], dtype=bool),
            flops_between=np.array([]),
            footprint_bytes=1024.0,
        )
        with pytest.raises(ValueError):
            sim.run(empty)

    def test_deterministic(self):
        a = run("CoMD", n=3000)
        b = run("CoMD", n=3000)
        assert a.elapsed == b.elapsed
        assert a.total_accesses == b.total_accesses

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ApuSimConfig(n_cus=0)
        with pytest.raises(ValueError):
            ApuSimConfig(chiplet_extra_latency=-1.0)
