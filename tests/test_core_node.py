"""NodeModel evaluation."""

import numpy as np
import pytest

from repro.core.config import PAPER_BEST_MEAN, EHPConfig
from repro.core.node import NodeModel
from repro.power.breakdown import ExternalMemoryConfig
from repro.power.components import PowerParams
from repro.workloads.catalog import get_application


class TestEvaluate:
    def test_scalar_evaluation(self, model):
        ev = model.evaluate(get_application("CoMD"), PAPER_BEST_MEAN)
        assert float(ev.performance) > 0
        assert float(ev.node_power) > 0
        assert float(ev.ehp_power) < float(ev.node_power)

    def test_maxflops_hits_paper_teraflops(self, model):
        # 18.6 DP teraflops at 320 CUs / 1 GHz (Section V-F).
        ev = model.evaluate(get_application("MaxFlops"), PAPER_BEST_MEAN)
        assert float(ev.performance) / 1e12 == pytest.approx(18.6, rel=0.03)

    def test_all_apps_feasible_at_best_mean(self, model, apps):
        # The DSE requires every application to fit the 160 W budget at
        # the best-mean configuration.
        for profile in apps.values():
            ev = model.evaluate(profile, PAPER_BEST_MEAN)
            assert float(ev.node_power) <= 160.0, profile.name

    def test_ext_fraction_changes_power_not_config(self, model):
        p = get_application("SNAP")
        ev0 = model.evaluate(p, PAPER_BEST_MEAN, ext_fraction=0.0)
        ev1 = model.evaluate(
            p, PAPER_BEST_MEAN, ext_fraction=p.ext_memory_fraction
        )
        assert float(ev1.power.ext_memory_dynamic) > float(
            ev0.power.ext_memory_dynamic
        )

    def test_perf_per_watt_consistency(self, model):
        ev = model.evaluate(get_application("CoMD"), PAPER_BEST_MEAN)
        assert float(ev.perf_per_watt) == pytest.approx(
            float(ev.performance) / float(ev.node_power)
        )

    def test_energy_is_power_times_time(self, model):
        ev = model.evaluate(get_application("CoMD"), PAPER_BEST_MEAN)
        assert float(ev.energy) == pytest.approx(
            float(ev.node_power) * float(ev.metrics.time)
        )


class TestEvaluateArrays:
    def test_vectorized_grid(self, model):
        p = get_application("LULESH")
        cus = np.array([192.0, 256.0, 320.0, 384.0])
        ev = model.evaluate_arrays(p, cus, 1e9, 3e12)
        assert ev.performance.shape == (4,)
        assert np.all(np.asarray(ev.node_power) > 0)

    def test_matches_scalar_path(self, model):
        p = get_application("LULESH")
        vec = model.evaluate_arrays(p, np.array([320.0]), 1e9, 3e12)
        scalar = model.evaluate(p, PAPER_BEST_MEAN)
        assert float(vec.performance[0]) == pytest.approx(
            float(scalar.performance), rel=1e-12
        )


class TestModelVariants:
    def test_with_power_params(self, model):
        cheap = PowerParams(cpu_cluster_watt=0.0)
        variant = model.with_power_params(cheap)
        p = get_application("CoMD")
        assert float(
            variant.evaluate(p, PAPER_BEST_MEAN).node_power
        ) < float(model.evaluate(p, PAPER_BEST_MEAN).node_power)
        # Original model untouched.
        assert model.power_params.cpu_cluster_watt > 0

    def test_with_ext_config(self, model):
        hybrid = model.with_ext_config(ExternalMemoryConfig.hybrid())
        p = get_application("SNAP")
        base_power = float(
            model.evaluate(
                p, PAPER_BEST_MEAN, ext_fraction=p.ext_memory_fraction
            ).node_power
        )
        hybrid_power = float(
            hybrid.evaluate(
                p, PAPER_BEST_MEAN, ext_fraction=p.ext_memory_fraction
            ).node_power
        )
        # NVM's dynamic energy dominates for SNAP (Fig. 9 Finding 2).
        assert hybrid_power > base_power

    def test_performance_convenience(self, model):
        p = get_application("CoMD")
        assert model.performance(p, PAPER_BEST_MEAN) == pytest.approx(
            float(model.evaluate(p, PAPER_BEST_MEAN).performance)
        )
