"""Unit constants and conversions."""

import math

import pytest

from repro.util import units


class TestConstants:
    def test_frequency_constants(self):
        assert units.MHZ == 1.0e6
        assert units.GHZ == 1.0e9

    def test_capacity_constants_are_decimal(self):
        assert units.KB == 1.0e3
        assert units.MB == 1.0e6
        assert units.GB == 1.0e9
        assert units.TB == 1.0e12

    def test_gibibyte_is_binary(self):
        assert units.GIB == 2**30

    def test_time_constants(self):
        assert units.NS == 1.0e-9
        assert units.US == 1.0e-6

    def test_energy_constants(self):
        assert units.PJ == 1.0e-12
        assert units.MW == 1.0e6

    def test_composition(self):
        # 3 TB/s of bandwidth expressed in bytes/second.
        assert 3 * units.TB == 3.0e12
        # 1.5 GHz in Hz.
        assert 1.5 * units.GHZ == 1.5e9


class TestToSi:
    @pytest.mark.parametrize(
        "prefix,factor",
        [("p", 1e-12), ("n", 1e-9), ("u", 1e-6), ("", 1.0),
         ("k", 1e3), ("M", 1e6), ("G", 1e9), ("T", 1e12), ("E", 1e18)],
    )
    def test_known_prefixes(self, prefix, factor):
        assert units.to_si(2.0, prefix) == pytest.approx(2.0 * factor)

    def test_unknown_prefix_raises(self):
        with pytest.raises(KeyError):
            units.to_si(1.0, "Q")

    def test_k_and_upper_k_agree(self):
        assert units.to_si(1.0, "k") == units.to_si(1.0, "K")


class TestTemperature:
    def test_celsius_to_kelvin(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.celsius_to_kelvin(85.0) == pytest.approx(358.15)

    def test_kelvin_to_celsius_roundtrip(self):
        for c in (-40.0, 0.0, 50.0, 85.0):
            assert units.kelvin_to_celsius(
                units.celsius_to_kelvin(c)
            ) == pytest.approx(c)


class TestFlopsConversions:
    def test_teraflops(self):
        assert units.flops_to_teraflops(18.6e12) == pytest.approx(18.6)

    def test_exaflops(self):
        assert units.flops_to_exaflops(1.86e18) == pytest.approx(1.86)

    def test_exascale_definition(self):
        # 1 exaflop = 10^18 flops (Section I).
        assert units.flops_to_exaflops(1.0e18) == 1.0
