"""The extended roofline model: shapes, bounds, vectorization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perfmodel.machine import MachineParams
from repro.perfmodel.roofline import (
    evaluate_kernel,
    kernel_time,
    smooth_max_array,
)
from repro.workloads.kernels import KernelCategory, KernelProfile


def profile(**overrides) -> KernelProfile:
    defaults = dict(
        name="p",
        category=KernelCategory.BALANCED,
        description="t",
        flops=1.0e12,
        bytes_per_flop=0.5,
        parallel_fraction=0.9,
        cache_hit_rate=0.5,
        thrash_pressure=0.0,
        latency_sensitivity=0.2,
        mlp_per_cu=32.0,
    )
    defaults.update(overrides)
    return KernelProfile(**defaults)


class TestSmoothMaxArray:
    def test_elementwise(self):
        a = np.array([1.0, 5.0])
        b = np.array([4.0, 2.0])
        out = smooth_max_array(a, b, 8.0)
        assert out[0] >= 4.0 and out[1] >= 5.0

    def test_invalid_sharpness(self):
        with pytest.raises(ValueError):
            smooth_max_array(np.ones(2), np.ones(2), -1.0)

    def test_zero_elements(self):
        out = smooth_max_array(np.zeros(3), np.zeros(3), 6.0)
        np.testing.assert_array_equal(out, np.zeros(3))


class TestInputValidation:
    def test_nonpositive_hardware_rejected(self):
        p = profile()
        for bad in ((0, 1e9, 1e12), (320, 0, 1e12), (320, 1e9, 0)):
            with pytest.raises(ValueError):
                evaluate_kernel(p, *bad)

    def test_ext_fraction_bounds(self):
        p = profile()
        with pytest.raises(ValueError):
            evaluate_kernel(p, 320, 1e9, 3e12, ext_fraction=1.5)
        with pytest.raises(ValueError):
            evaluate_kernel(p, 320, 1e9, 3e12, ext_fraction=-0.1)


class TestComputeBound:
    def test_compute_kernel_scales_linearly_with_freq(self):
        p = profile(bytes_per_flop=0.001, parallel_fraction=1.0)
        t1 = float(kernel_time(p, 320, 1.0e9, 3e12))
        t2 = float(kernel_time(p, 320, 2.0e9, 3e12))
        assert t1 / t2 == pytest.approx(2.0, rel=0.02)

    def test_compute_kernel_insensitive_to_bandwidth(self):
        p = profile(bytes_per_flop=0.001, parallel_fraction=1.0)
        t_lo = float(kernel_time(p, 320, 1.0e9, 1e12))
        t_hi = float(kernel_time(p, 320, 1.0e9, 7e12))
        assert t_lo / t_hi == pytest.approx(1.0, abs=0.02)

    def test_sublinear_cu_scaling(self):
        p = profile(bytes_per_flop=0.001, parallel_fraction=0.5)
        r1 = float(evaluate_kernel(p, 256, 1e9, 7e12).flops_rate)
        r2 = float(evaluate_kernel(p, 384, 1e9, 7e12).flops_rate)
        assert r2 / r1 == pytest.approx((384 / 256) ** 0.5, rel=0.02)

    def test_issue_efficiency_caps_peak(self):
        p = profile(bytes_per_flop=0.0, issue_efficiency=0.907,
                    parallel_fraction=1.0)
        rate = float(evaluate_kernel(p, 320, 1e9, 3e12).flops_rate)
        peak = 320 * 64 * 1e9
        assert rate <= peak
        assert rate == pytest.approx(0.907 * peak, rel=0.02)


class TestMemoryBound:
    def test_bandwidth_bound_kernel_scales_with_bw(self):
        p = profile(bytes_per_flop=2.0, cache_hit_rate=0.0,
                    latency_sensitivity=0.01)
        r1 = float(evaluate_kernel(p, 320, 1e9, 1e12).flops_rate)
        r3 = float(evaluate_kernel(p, 320, 1e9, 3e12).flops_rate)
        assert r3 / r1 == pytest.approx(3.0, rel=0.1)

    def test_thrashing_reduces_hit_rate_with_cus(self):
        p = profile(thrash_pressure=0.5)
        h_small = float(evaluate_kernel(p, 192, 1e9, 3e12).hit_rate)
        h_large = float(evaluate_kernel(p, 384, 1e9, 3e12).hit_rate)
        assert h_large < h_small

    def test_thrashing_is_frequency_invariant(self):
        p = profile(thrash_pressure=0.5)
        h1 = float(evaluate_kernel(p, 320, 0.7e9, 3e12).hit_rate)
        h2 = float(evaluate_kernel(p, 320, 1.5e9, 3e12).hit_rate)
        assert h1 == pytest.approx(h2)

    def test_memory_intensive_rise_then_fall_in_cus(self):
        # Fig. 6(b): past the knee, more CUs lose performance.
        p = profile(bytes_per_flop=0.5, cache_hit_rate=0.8,
                    thrash_pressure=1.2, latency_sensitivity=0.05,
                    mlp_per_cu=64.0)
        cus = np.array([64.0, 128.0, 256.0, 384.0])
        rates = np.asarray(
            evaluate_kernel(p, cus, 1e9, 3e12).flops_rate
        )
        peak_at = int(np.argmax(rates))
        assert 0 < peak_at < len(cus) - 1

    def test_latency_bound_kernel_benefits_from_mlp(self):
        p = profile(latency_sensitivity=0.9, mlp_per_cu=4.0,
                    bytes_per_flop=1.0, cache_hit_rate=0.0)
        q = p.with_overrides(mlp_per_cu=64.0)
        t_low = float(kernel_time(p, 320, 1e9, 7e12))
        t_high = float(kernel_time(q, 320, 1e9, 7e12))
        assert t_low > t_high

    def test_external_fraction_slows_execution(self):
        p = profile(bytes_per_flop=1.0, cache_hit_rate=0.2)
        t0 = float(kernel_time(p, 320, 1e9, 3e12, ext_fraction=0.0))
        t5 = float(kernel_time(p, 320, 1e9, 3e12, ext_fraction=0.5))
        t9 = float(kernel_time(p, 320, 1e9, 3e12, ext_fraction=0.9))
        assert t0 < t5 < t9

    def test_extra_latency_hurts_latency_sensitive_kernels_more(self):
        sensitive = profile(latency_sensitivity=0.8, mlp_per_cu=8.0,
                            bytes_per_flop=1.0, cache_hit_rate=0.2)
        tolerant = sensitive.with_overrides(
            latency_sensitivity=0.05, mlp_per_cu=64.0
        )
        def penalty(p):
            base = float(kernel_time(p, 320, 1e9, 3e12))
            extra = float(
                kernel_time(p, 320, 1e9, 3e12, extra_latency=100e-9)
            )
            return extra / base
        assert penalty(sensitive) > penalty(tolerant)


class TestMetricsConsistency:
    def test_traffic_accounting(self):
        p = profile()
        m = evaluate_kernel(p, 320, 1e9, 3e12, ext_fraction=0.3)
        total_miss = float(m.dram_traffic + m.ext_traffic)
        expected = p.flops * p.bytes_per_flop * (1 - float(m.hit_rate))
        assert total_miss == pytest.approx(expected, rel=1e-9)

    def test_rates_are_traffic_over_time(self):
        p = profile()
        m = evaluate_kernel(p, 320, 1e9, 3e12)
        assert float(m.dram_rate) == pytest.approx(
            float(m.dram_traffic / m.time)
        )

    def test_busy_fraction_bounds(self):
        p = profile()
        m = evaluate_kernel(p, 320, 1e9, 3e12)
        assert 0.0 <= float(m.cu_busy_fraction) <= 1.0
        assert 0.0 <= float(m.bw_utilization) <= 1.0

    def test_vectorized_matches_scalar(self):
        p = profile()
        cus = np.array([192.0, 256.0, 320.0])
        vec = evaluate_kernel(p, cus, 1e9, 3e12).time
        for i, n in enumerate(cus):
            scalar = float(kernel_time(p, float(n), 1e9, 3e12))
            assert float(vec[i]) == pytest.approx(scalar, rel=1e-12)

    def test_broadcast_shapes(self):
        p = profile()
        m = evaluate_kernel(
            p, np.array([256.0, 320.0]), 1e9, 3e12
        )
        assert m.time.shape == (2,)
        assert m.dram_traffic.shape == (2,)


class TestMonotonicityProperties:
    @given(
        st.floats(min_value=0.8e9, max_value=1.5e9),
        st.floats(min_value=1e12, max_value=7e12),
    )
    @settings(max_examples=30, deadline=None)
    def test_time_positive(self, freq, bw):
        p = profile()
        assert float(kernel_time(p, 320, freq, bw)) > 0

    @given(st.floats(min_value=1e12, max_value=6e12))
    @settings(max_examples=30, deadline=None)
    def test_more_bandwidth_never_slower(self, bw):
        p = profile(bytes_per_flop=1.0)
        t1 = float(kernel_time(p, 320, 1e9, bw))
        t2 = float(kernel_time(p, 320, 1e9, bw * 1.15))
        assert t2 <= t1 * (1 + 1e-9)

    @given(st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=30, deadline=None)
    def test_more_ext_fraction_never_faster(self, frac):
        p = profile(bytes_per_flop=1.0)
        t1 = float(kernel_time(p, 320, 1e9, 3e12, ext_fraction=frac))
        t2 = float(kernel_time(p, 320, 1e9, 3e12, ext_fraction=frac + 0.05))
        assert t2 >= t1 * (1 - 1e-9)
