"""Phase sequences, row-buffer simulation, and bound diagnosis."""

import numpy as np
import pytest

from repro.memsys.rowbuffer import RowBufferSim
from repro.perfmodel.diagnosis import Bound, diagnose
from repro.workloads.catalog import get_application
from repro.workloads.kernels import KernelCategory
from repro.workloads.phases import (
    Phase,
    PhaseSequence,
    synthetic_md_application,
)
from repro.workloads.traces import TraceGenerator


class TestPhaseSequence:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhaseSequence(name="x", phases=())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Phase(get_application("CoMD"), weight=0.0)

    def test_from_profiles(self):
        seq = PhaseSequence.from_profiles(
            "job",
            [get_application("CoMD"), get_application("LULESH")],
            weights=[1.0, 3.0],
        )
        assert len(seq) == 2
        assert seq.total_weight == 4.0

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            PhaseSequence.from_profiles(
                "job", [get_application("CoMD")], weights=[1.0, 2.0]
            )

    def test_dominant_phase(self):
        seq = PhaseSequence.from_profiles(
            "job",
            [get_application("CoMD"), get_application("LULESH")],
            weights=[1.0, 3.0],
        )
        assert seq.dominant_phase().profile.name == "LULESH"

    def test_category_mix_sums_to_one(self):
        seq = synthetic_md_application()
        assert sum(seq.category_mix().values()) == pytest.approx(1.0)

    def test_blended_profile_between_extremes(self):
        seq = PhaseSequence.from_profiles(
            "job",
            [get_application("MaxFlops"), get_application("SNAP")],
        )
        blend = seq.blended_profile()
        lo = min(
            get_application("MaxFlops").bytes_per_flop,
            get_application("SNAP").bytes_per_flop,
        )
        hi = max(
            get_application("MaxFlops").bytes_per_flop,
            get_application("SNAP").bytes_per_flop,
        )
        assert lo <= blend.bytes_per_flop <= hi
        assert "blend" in blend.name

    def test_synthetic_md_structure(self):
        seq = synthetic_md_application(iterations=2)
        names = [p.profile.name for p in seq]
        assert names.count("MaxFlops") == 2
        assert names.count("LULESH") == 1  # rebuild every other iteration

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            synthetic_md_application(iterations=0)


class TestRowBufferSim:
    def test_sequential_stream_hits(self):
        sim = RowBufferSim()
        addrs = np.arange(0, 256 * 200, 64)
        stats = sim.run(addrs)
        assert stats.hit_rate > 0.5

    def test_random_stream_misses(self):
        sim = RowBufferSim()
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 32, size=5000)
        stats = sim.run(addrs)
        assert stats.hit_rate < 0.1

    def test_repeat_same_row_hits(self):
        sim = RowBufferSim()
        sim.access(0)
        assert sim.access(64)  # same interleave block -> same bank+row

    def test_trace_locality_ordering(self):
        streaming = TraceGenerator(
            get_application("MaxFlops"), seed=0
        ).generate(10000)
        random = TraceGenerator(
            get_application("MaxFlops").with_overrides(
                latency_sensitivity=0.9
            ),
            seed=0,
        ).generate(10000)
        s1 = RowBufferSim().run(streaming.addresses)
        s2 = RowBufferSim().run(random.addresses)
        assert s1.hit_rate > s2.hit_rate

    def test_reset(self):
        sim = RowBufferSim()
        sim.access(0)
        sim.reset()
        assert sim.stats.accesses == 0
        assert not sim.access(0)  # cold again

    def test_validation(self):
        with pytest.raises(ValueError):
            RowBufferSim(n_banks=0)
        with pytest.raises(ValueError):
            RowBufferSim().access(-1)


class TestDiagnosis:
    def test_maxflops_compute_bound(self):
        d = diagnose(get_application("MaxFlops"), 320, 1e9, 3e12)
        assert d.bound is Bound.COMPUTE
        assert d.compute_share > 0.9

    def test_snap_memory_bound(self):
        d = diagnose(get_application("SNAP"), 320, 1e9, 3e12)
        assert d.bound in (Bound.BANDWIDTH, Bound.LATENCY)

    def test_balanced_kernels_near_knee(self):
        d = diagnose(get_application("CoMD"), 320, 1e9, 3e12)
        assert d.is_balanced()

    def test_shares_sum_to_one(self):
        d = diagnose(get_application("LULESH"), 320, 1e9, 3e12)
        assert (
            d.compute_share + d.bandwidth_share + d.latency_share
        ) == pytest.approx(1.0)

    def test_more_bandwidth_shifts_toward_compute(self):
        lo = diagnose(get_application("SNAP"), 320, 1e9, 1e12)
        hi = diagnose(get_application("SNAP"), 320, 1e9, 7e12)
        assert hi.compute_share > lo.compute_share

    def test_balance_ratio_bounds(self):
        d = diagnose(get_application("CoMD"), 320, 1e9, 3e12)
        assert 0.0 < d.balance_ratio <= 1.0
