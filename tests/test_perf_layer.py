"""The cross-cutting performance layer: cached thermal factorization,
vectorized assembly, the shared evaluation cache, the parallel
experiment runner, and the NoC fast path."""

import numpy as np
import pytest
from scipy.sparse.linalg import spsolve

from repro.core.dse import explore
from repro.core.node import NodeModel
from repro.noc.simulator import NocSimulator, SimMessage
from repro.perf.evalcache import (
    EvalCache,
    SimCache,
    evaluate_arrays_cached,
    fingerprint_sim_config,
    fingerprint_trace,
    simulate_trace_cached,
)
from repro.perf.parallel import (
    parallel_explore,
    run_all_experiments,
    run_experiments,
)
from repro.power.components import PowerParams
from repro.sim.apu_sim import ApuSimConfig, ApuSimulator
from repro.thermal.grid import ThermalGrid
from repro.workloads.catalog import get_application
from repro.workloads.traces import TraceGenerator


class TestVectorizedAssembly:
    @pytest.mark.parametrize("nx,ny", [(4, 3), (9, 5), (22, 8)])
    def test_matches_reference_exactly(self, nx, ny):
        grid = ThermalGrid(10.0, 6.0, nx=nx, ny=ny)
        fast, b_fast = grid._assemble()
        ref, b_ref = grid._assemble_reference()
        fast.sort_indices()
        ref.sort_indices()
        assert np.array_equal(fast.indptr, ref.indptr)
        assert np.array_equal(fast.indices, ref.indices)
        # Diagonal accumulation replays the reference loop's addition
        # order, so the match is bit-exact, not merely approximate.
        assert np.array_equal(fast.data, ref.data)
        assert np.array_equal(b_fast, b_ref)


class TestCachedThermalSolve:
    @pytest.fixture(scope="class")
    def grid(self):
        return ThermalGrid(66.0, 22.0, nx=33, ny=11)

    def test_matches_spsolve(self, grid):
        rng = np.random.default_rng(7)
        maps = rng.random((3, grid.ny, grid.nx))
        field = grid.solve(maps)
        matrix, b_amb = grid._assemble_reference()
        ref = spsolve(matrix, maps.ravel() + b_amb * grid.stack.ambient_c)
        assert np.abs(field.celsius.ravel() - ref).max() < 1e-9

    def test_factorization_reused(self, grid):
        maps = np.zeros((3, grid.ny, grid.nx))
        maps[1, 4, 10] = 5.0
        grid.solve(maps)
        assert grid.factorization_cached
        factor = grid._factor
        grid.solve(maps * 2)
        assert grid._factor is factor
        grid.invalidate()
        assert not grid.factorization_cached

    def test_solve_many_matches_sequential(self, grid):
        rng = np.random.default_rng(11)
        batch = rng.random((5, 3, grid.ny, grid.nx))
        fields = grid.solve_many(batch)
        assert len(fields) == 5
        for k, field in enumerate(fields):
            single = grid.solve(batch[k])
            assert np.abs(field.celsius - single.celsius).max() < 1e-9

    def test_solve_many_validates(self, grid):
        with pytest.raises(ValueError):
            grid.solve_many(np.zeros((3, grid.ny, grid.nx)))
        with pytest.raises(ValueError):
            grid.solve(np.zeros((2, 3, grid.ny, grid.nx)))
        assert grid.solve_many(np.zeros((0, 3, grid.ny, grid.nx))) == []


class TestEvalCache:
    def test_hit_miss_counters(self):
        cache = EvalCache()
        model = NodeModel()
        profile = get_application("CoMD")
        cus = np.array([256.0, 320.0])
        ev1 = cache.evaluate_arrays(model, profile, cus, 1.0e9, 3.0e12)
        assert cache.stats().misses == 1 and cache.stats().hits == 0
        ev2 = cache.evaluate_arrays(model, profile, cus, 1.0e9, 3.0e12)
        assert cache.stats().hits == 1
        assert ev2 is ev1  # the memoized object itself
        # A fresh-but-equal model still hits: keys are value fingerprints.
        ev3 = cache.evaluate_arrays(NodeModel(), profile, cus, 1.0e9, 3.0e12)
        assert ev3 is ev1
        assert cache.stats().hits == 2

    def test_model_fingerprint_differentiates(self):
        cache = EvalCache()
        profile = get_application("CoMD")
        cus = np.array([256.0])
        cache.evaluate_arrays(NodeModel(), profile, cus, 1.0e9, 3.0e12)
        tweaked = NodeModel(
            power_params=PowerParams(cu_leakage_watt=0.05)
        )
        cache.evaluate_arrays(tweaked, profile, cus, 1.0e9, 3.0e12)
        assert cache.stats().misses == 2

    def test_profile_and_axis_fingerprints(self):
        cache = EvalCache()
        model = NodeModel()
        profile = get_application("CoMD")
        cache.evaluate_arrays(model, profile, 320.0, 1.0e9, 3.0e12)
        cache.evaluate_arrays(
            model, profile.with_overrides(cu_utilization=0.5),
            320.0, 1.0e9, 3.0e12,
        )
        cache.evaluate_arrays(model, profile, 320.0, 1.1e9, 3.0e12)
        cache.evaluate_arrays(
            model, profile, 320.0, 1.0e9, 3.0e12, ext_fraction=0.5
        )
        assert cache.stats().misses == 4
        assert cache.stats().hits == 0

    def test_invalidation(self):
        cache = EvalCache()
        model = NodeModel()
        comd = get_application("CoMD")
        snap = get_application("SNAP")
        cache.evaluate_arrays(model, comd, 320.0, 1.0e9, 3.0e12)
        cache.evaluate_arrays(model, snap, 320.0, 1.0e9, 3.0e12)
        assert cache.invalidate(profile=comd) == 1
        assert cache.stats().entries == 1
        # CoMD misses again, SNAP still hits.
        cache.evaluate_arrays(model, comd, 320.0, 1.0e9, 3.0e12)
        cache.evaluate_arrays(model, snap, 320.0, 1.0e9, 3.0e12)
        assert cache.stats().misses == 3
        assert cache.stats().hits == 1
        assert cache.invalidate() == 2
        assert cache.stats().entries == 0

    def test_lru_bound(self):
        cache = EvalCache(maxsize=1)
        model = NodeModel()
        profile = get_application("CoMD")
        cache.evaluate_arrays(model, profile, 320.0, 1.0e9, 3.0e12)
        cache.evaluate_arrays(model, profile, 256.0, 1.0e9, 3.0e12)
        stats = cache.stats()
        assert stats.entries == 1 and stats.evictions == 1

    def test_explore_uses_cache(self):
        # The default tensor engine memoizes one whole-grid entry per
        # (batch, model, space); repeat explores are pure lookups.
        cache = EvalCache()
        profiles = [get_application("CoMD"), get_application("SNAP")]
        r1 = explore(profiles, cache=cache)
        assert cache.stats().misses == 1
        r2 = explore(profiles, cache=cache)
        assert cache.stats().hits == 1
        assert r1.best_mean_index == r2.best_mean_index
        for name in r1.performance:
            assert np.array_equal(r1.performance[name], r2.performance[name])
        # Bypass leaves the counters untouched and agrees numerically.
        r3 = explore(profiles, cache=False)
        assert cache.stats().requests == 2
        assert r3.best_mean_index == r1.best_mean_index
        # The point engine keeps the per-profile entries.
        r4 = explore(profiles, cache=cache, engine="point")
        assert cache.stats().misses == 1 + len(profiles)
        assert r4.best_mean_index == r1.best_mean_index

    def test_cached_helper_matches_direct(self):
        model = NodeModel()
        profile = get_application("LULESH")
        cus = np.array([192.0, 384.0])
        direct = model.evaluate_arrays(profile, cus, 1.0e9, 3.0e12)
        cached = evaluate_arrays_cached(
            model, profile, cus, 1.0e9, 3.0e12, cache=EvalCache()
        )
        assert np.array_equal(
            np.asarray(direct.performance), np.asarray(cached.performance)
        )
        assert np.array_equal(
            np.asarray(direct.node_power), np.asarray(cached.node_power)
        )


class TestSimCache:
    def _trace(self, seed=42, n=1500):
        return TraceGenerator(get_application("CoMD"), seed=seed).generate(n)

    def test_hit_returns_memoized_result(self):
        cache = SimCache()
        trace = self._trace()
        r1 = cache.run(trace)
        r2 = cache.run(trace)
        assert r2 is r1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_engines_cached_independently(self):
        cache = SimCache()
        trace = self._trace()
        array = cache.run(trace, engine="array")
        event = cache.run(trace, engine="event")
        assert array is not event
        assert cache.stats().misses == 2
        # Same (config, trace) through each engine again: both hit.
        assert cache.run(trace, engine="array") is array
        assert cache.run(trace, engine="event") is event
        assert cache.stats().hits == 2

    def test_config_fingerprint_differentiates(self):
        cache = SimCache()
        trace = self._trace()
        cache.run(trace, ApuSimConfig(n_cus=4))
        cache.run(trace, ApuSimConfig(n_cus=8))
        assert cache.stats().misses == 2

    def test_trace_fingerprint_differentiates(self):
        cache = SimCache()
        cache.run(self._trace(seed=1))
        cache.run(self._trace(seed=2))
        assert cache.stats().misses == 2
        # An equal-valued regenerated trace hits: keys are value digests.
        cache.run(self._trace(seed=1))
        assert cache.stats().hits == 1

    def test_fingerprint_functions_are_value_digests(self):
        assert fingerprint_trace(self._trace()) == fingerprint_trace(
            self._trace()
        )
        assert fingerprint_sim_config(ApuSimConfig()) == (
            fingerprint_sim_config(ApuSimConfig())
        )
        assert fingerprint_sim_config(ApuSimConfig()) != (
            fingerprint_sim_config(ApuSimConfig(n_cus=4))
        )

    def test_cached_helper_matches_direct(self):
        trace = self._trace()
        config = ApuSimConfig(n_cus=4)
        direct = ApuSimulator(config).run(trace)
        cached = simulate_trace_cached(trace, config, cache=SimCache())
        assert cached == direct

    def test_lru_bound(self):
        cache = SimCache(maxsize=1)
        cache.run(self._trace(seed=1, n=200))
        cache.run(self._trace(seed=2, n=200))
        stats = cache.stats()
        assert stats.entries == 1 and stats.evictions == 1


class TestParallelRunner:
    SUBSET = ["table1", "fig7", "dse"]

    def test_serial_and_parallel_identical(self):
        serial = run_experiments(self.SUBSET, parallel=False)
        parallel = run_experiments(self.SUBSET, parallel=True, max_workers=2)
        assert list(serial) == list(parallel) == self.SUBSET
        for name in self.SUBSET:
            assert serial[name].rendered == parallel[name].rendered
            assert serial[name].data == parallel[name].data

    def test_order_is_canonical_not_request_order(self):
        results = run_experiments(["fig7", "table1"], parallel=False)
        assert list(results) == ["table1", "fig7"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["nope"], parallel=False)

    def test_run_all_covers_registry(self):
        from repro.experiments.registry import EXPERIMENTS

        results = run_all_experiments(parallel=False)
        assert list(results) == list(EXPERIMENTS)

    def test_parallel_explore_identical_to_serial(self):
        profiles = [get_application("CoMD"), get_application("MaxFlops")]
        serial = explore(profiles, cache=False)
        chunked = parallel_explore(profiles, n_chunks=5, max_workers=2)
        assert chunked.best_mean_index == serial.best_mean_index
        assert chunked.per_app_best_index == serial.per_app_best_index
        for name in serial.performance:
            assert np.array_equal(
                serial.performance[name], chunked.performance[name]
            )
            assert np.array_equal(
                serial.node_power[name], chunked.node_power[name]
            )


class TestNocFastPath:
    def _messages(self):
        rng = np.random.default_rng(3)
        nodes = [f"gpu{i}" for i in range(8)] + [f"dram{i}" for i in range(8)]
        pairs = [
            (nodes[a], nodes[b])
            for a, b in rng.integers(0, len(nodes), size=(300, 2))
            if a != b
        ]
        return [
            SimMessage(s, d, 4096.0, (k // 3) * 1e-8)
            for k, (s, d) in enumerate(pairs)
        ]

    def test_run_batch_matches_run(self):
        msgs = self._messages()
        res_obj = NocSimulator().run(msgs)
        res_batch = NocSimulator().run_batch(
            [m.src for m in msgs],
            [m.dst for m in msgs],
            [m.size_bytes for m in msgs],
            [m.inject_time for m in msgs],
        )
        assert res_batch.latencies == res_obj.latencies
        assert res_batch.makespan == res_obj.makespan
        assert res_batch.total_bytes == res_obj.total_bytes

    def test_run_batch_broadcasts_scalars(self):
        res = NocSimulator().run_batch(
            ["gpu0", "gpu1"], ["dram5", "dram6"], 4096.0, 0.0
        )
        assert res.delivered == 2

    def test_run_batch_validates(self):
        sim = NocSimulator()
        with pytest.raises(ValueError):
            sim.run_batch(["gpu0"], ["dram0"], 0.0, 0.0)
        with pytest.raises(ValueError):
            sim.run_batch(["gpu0"], ["dram0"], 64.0, -1.0)
        with pytest.raises(ValueError):
            sim.run_batch(["gpu0"], [], 64.0, 0.0)

    def test_link_stats_live_on_result(self):
        msgs = self._messages()
        res = NocSimulator().run(msgs)
        assert res.link_stats
        total_msgs = sum(s.messages for s in res.link_stats.values())
        assert total_msgs >= len(msgs)  # every message crosses >=1 link
        util = res.link_utilization()
        assert util and all(0.0 <= u <= 1.0 for u in util.values())

    def test_links_attribute_removed(self):
        sim = NocSimulator()
        res = sim.run(self._messages())
        assert res.link_stats
        with pytest.raises(AttributeError):
            sim.links

    def test_simulator_utilization_requires_run(self):
        sim = NocSimulator()
        with pytest.raises(RuntimeError):
            sim.link_utilization(1.0)
        res = sim.run(self._messages())
        assert sim.link_utilization(res.makespan) == res.link_utilization()


class TestGeometricMeanAcross:
    def test_guards(self):
        from repro.util.stats import geometric_mean_across

        with pytest.raises(ValueError):
            geometric_mean_across(np.array([]))
        with pytest.raises(ValueError):
            geometric_mean_across(np.array([[1.0, 0.0]]))
        with pytest.raises(ValueError):
            geometric_mean_across(np.array([[1.0, -2.0]]))
        out = geometric_mean_across(np.array([[2.0, 8.0], [8.0, 2.0]]))
        assert out == pytest.approx([4.0, 4.0])


class TestMemsysCache:
    """The (geometry, address-stream, engine)-keyed memsys memo."""

    def _stream(self, n=2000, seed=4):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 1 << 22, size=n), rng.random(n) < 0.3

    def test_dram_stats_memoized(self):
        from repro.perf.evalcache import MemsysCache

        cache = MemsysCache()
        addrs, writes = self._stream()
        s1 = cache.dram_stats(addrs, writes, capacity_bytes=1 << 20)
        s2 = cache.dram_stats(addrs, writes, capacity_bytes=1 << 20)
        assert s2 is s1
        assert cache.stats().hits == 1 and cache.stats().misses == 1

    def test_engines_cached_independently_and_agree(self):
        from dataclasses import astuple

        from repro.perf.evalcache import MemsysCache

        cache = MemsysCache()
        addrs, writes = self._stream()
        sa = cache.dram_stats(addrs, writes, capacity_bytes=1 << 20)
        se = cache.dram_stats(
            addrs, writes, capacity_bytes=1 << 20, engine="event"
        )
        assert se is not sa
        assert astuple(se) == astuple(sa)

    def test_geometry_differentiates(self):
        from repro.perf.evalcache import MemsysCache

        cache = MemsysCache()
        addrs, writes = self._stream()
        cache.dram_stats(addrs, writes, capacity_bytes=1 << 20)
        cache.dram_stats(addrs, writes, capacity_bytes=2 << 20)
        cache.rowbuffer_stats(addrs)
        cache.rowbuffer_stats(addrs, n_banks=64)
        assert cache.stats().misses == 4 and cache.stats().hits == 0

    def test_manager_fractions_memoized_per_policy(self):
        from repro.perf.evalcache import MemsysCache

        cache = MemsysCache()
        addrs, _ = self._stream()
        f1 = cache.manager_fractions(
            addrs, n_epochs=3, capacity_bytes=64 * 4096
        )
        f2 = cache.manager_fractions(
            addrs, n_epochs=3, capacity_bytes=64 * 4096
        )
        ft = cache.manager_fractions(
            addrs, n_epochs=3, capacity_bytes=64 * 4096, policy="first-touch"
        )
        assert f2 is f1 and len(f1) == 3
        assert ft != f1 or cache.stats().misses == 2
        with pytest.raises(ValueError):
            cache.manager_fractions(addrs, policy="nope")
        with pytest.raises(ValueError):
            cache.manager_fractions(addrs, n_epochs=0)

    def test_fingerprint_addresses_is_value_digest(self):
        from repro.perf.evalcache import fingerprint_addresses

        a = np.arange(10, dtype=np.int64)
        assert fingerprint_addresses(a) == fingerprint_addresses(a.copy())
        assert fingerprint_addresses(a) != fingerprint_addresses(a + 1)
        w = np.zeros(10, dtype=bool)
        assert fingerprint_addresses(a, w) != fingerprint_addresses(a)

    def test_default_cache_singleton(self):
        from repro.perf.evalcache import default_memsys_cache

        assert default_memsys_cache() is default_memsys_cache()


class TestOnDiskSpill:
    """Opt-in spill_dir: cross-run warm starts with versioned pickles."""

    def _stream(self, n=1500, seed=9):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 1 << 20, size=n), rng.random(n) < 0.5

    def test_cross_instance_warm_start(self, tmp_path):
        from dataclasses import astuple

        from repro.perf.evalcache import MemsysCache

        addrs, writes = self._stream()
        first = MemsysCache(spill_dir=tmp_path)
        r1 = first.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        assert first.stats().misses == 1

        second = MemsysCache(spill_dir=tmp_path)
        r2 = second.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        st = second.stats()
        assert st.spill_hits == 1 and st.misses == 0
        assert astuple(r2) == astuple(r1)
        # Spill hits count toward the hit rate.
        assert st.hit_rate == 1.0
        # Once loaded, the entry lives in memory: no second disk probe.
        second.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        assert second.stats().hits == 1

    def test_simcache_spill(self, tmp_path):
        from repro.perf.evalcache import SimCache

        profile = get_application("CoMD")
        trace = TraceGenerator(profile, seed=3).generate(2000)
        a = SimCache(spill_dir=tmp_path)
        r1 = a.run(trace)
        b = SimCache(spill_dir=tmp_path)
        r2 = b.run(trace)
        assert b.stats().spill_hits == 1
        assert r2.elapsed == pytest.approx(r1.elapsed, rel=1e-12)

    def test_corrupt_entry_is_clean_miss(self, tmp_path):
        from repro.perf.evalcache import MemsysCache

        addrs, writes = self._stream()
        a = MemsysCache(spill_dir=tmp_path)
        a.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        for path in tmp_path.iterdir():
            path.write_bytes(b"\x80\x04 this is not a pickle")
        b = MemsysCache(spill_dir=tmp_path)
        b.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        st = b.stats()
        assert st.misses == 1 and st.spill_hits == 0
        # The recompute overwrote the corrupt file with a good one.
        c = MemsysCache(spill_dir=tmp_path)
        c.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        assert c.stats().spill_hits == 1

    def test_version_mismatch_is_clean_miss(self, tmp_path, monkeypatch):
        import repro.perf.evalcache as evalcache

        addrs, writes = self._stream()
        a = evalcache.MemsysCache(spill_dir=tmp_path)
        a.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        monkeypatch.setattr(evalcache, "SPILL_VERSION", 2)
        b = evalcache.MemsysCache(spill_dir=tmp_path)
        b.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        st = b.stats()
        assert st.misses == 1 and st.spill_hits == 0

    def test_key_mismatch_is_clean_miss(self, tmp_path):
        """A digest collision (forged here by renaming a spill file onto
        the path another key probes) must be rejected by the embedded
        full key."""
        import os

        from repro.perf.evalcache import MemsysCache, fingerprint_addresses

        addrs, writes = self._stream()
        a = MemsysCache(spill_dir=tmp_path)
        a.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        (old,) = list(tmp_path.iterdir())
        # Move the 1<<19 entry onto the exact path the 1<<20 lookup
        # will probe; its payload still embeds the 1<<19 key.
        probe_key = (
            "dram",
            float(1 << 20),
            4096,
            8,
            fingerprint_addresses(addrs, writes),
            "array",
        )
        os.replace(old, a._spill_path(probe_key))
        b = MemsysCache(spill_dir=tmp_path)
        b.dram_stats(addrs, writes, capacity_bytes=1 << 20)
        st = b.stats()
        assert st.spill_hits == 0 and st.misses == 1

    def test_spill_survives_clear(self, tmp_path):
        from repro.perf.evalcache import MemsysCache

        addrs, writes = self._stream()
        cache = MemsysCache(spill_dir=tmp_path)
        cache.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        cache.clear()
        assert cache.stats().entries == 0
        cache.dram_stats(addrs, writes, capacity_bytes=1 << 19)
        assert cache.stats().spill_hits == 1

    def test_spill_disabled_writes_nothing(self, tmp_path):
        from repro.perf.evalcache import EvalCache

        cache = EvalCache()
        assert cache.spill_dir is None
        model = NodeModel()
        profile = get_application("CoMD")
        cache.evaluate_arrays(
            model, profile, np.array([256.0]), 1.0e9, 3.0e12
        )
        assert list(tmp_path.iterdir()) == []
