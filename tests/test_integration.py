"""Cross-module integration: analytic model vs simulator, full pipelines."""

import numpy as np
import pytest

import repro
from repro import (
    APPLICATIONS,
    EHPConfig,
    NodeModel,
    PAPER_BEST_MEAN,
    get_application,
)
from repro.perfmodel.roofline import evaluate_kernel
from repro.sim.apu_sim import ApuSimConfig, ApuSimulator
from repro.thermal.analysis import ThermalModel
from repro.workloads.traces import TraceGenerator


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        # The module docstring's example must work verbatim.
        model = NodeModel()
        lulesh = get_application("LULESH")
        result = model.evaluate(lulesh, EHPConfig(n_cus=320))
        assert float(result.performance) > 0
        assert float(result.node_power) > 0


class TestModelVsSimulator:
    """The analytic model and the trace-driven simulator agree on the
    orderings that drive every conclusion in the paper."""

    @staticmethod
    def _sim_rate(app, **cfg):
        profile = get_application(app)
        trace = TraceGenerator(profile, seed=7).generate(6000)
        return ApuSimulator(ApuSimConfig(**cfg)).run(trace).flops_rate

    @staticmethod
    def _model_rate(app, bandwidth=150e9):
        # Scale the analytic model to the simulator's 16-CU machine.
        profile = get_application(app)
        m = evaluate_kernel(profile, 16, 1e9, bandwidth)
        return float(m.flops_rate)

    def test_category_ordering_agrees(self):
        sim = {
            a: self._sim_rate(a) for a in ("MaxFlops", "CoMD", "SNAP")
        }
        model = {
            a: self._model_rate(a) for a in ("MaxFlops", "CoMD", "SNAP")
        }
        assert sorted(sim, key=sim.get) == sorted(model, key=model.get)

    def test_bandwidth_sensitivity_agrees(self):
        # Starve the memory system (10 GB/s) so the bandwidth roof binds
        # in both the simulator and the analytic model, then widen it.
        for app, sensitive in (("MaxFlops", False), ("SNAP", True)):
            sim_gain = self._sim_rate(app, dram_bandwidth=200e9) / (
                self._sim_rate(app, dram_bandwidth=10e9)
            )
            model_gain = self._model_rate(app, 200e9) / self._model_rate(
                app, 10e9
            )
            if sensitive:
                assert sim_gain > 1.3 and model_gain > 1.3, app
            else:
                assert sim_gain < 1.2 and model_gain < 1.2, app


class TestEndToEndPipelines:
    def test_evaluate_then_thermal(self):
        model = NodeModel()
        thermal = ThermalModel(nx=33, ny=11)
        for profile in APPLICATIONS.values():
            ev = model.evaluate(
                profile, PAPER_BEST_MEAN,
                ext_fraction=profile.ext_memory_fraction,
            )
            report = thermal.analyze(ev.power)
            assert 50.0 < report.peak_dram_c < 85.0, profile.name

    def test_trace_to_cache_to_hit_rate(self):
        from repro.sim.cache_sim import CacheSim

        profile = get_application("XSBench")
        trace = TraceGenerator(profile, seed=3).generate(20000)
        sim = CacheSim.ehp_default(n_cus=32)
        out = sim.run_trace(trace.addresses)
        # Irregular kernels leave a substantial DRAM fraction.
        assert out["dram_fraction"] > 0.05

    def test_memory_manager_feeds_mlm_model(self):
        from repro.memsys.manager import (
            HotnessMigrationPolicy,
            MemoryManager,
        )
        from repro.perfmodel.mlm import miss_rate_sweep

        profile = get_application("LULESH")
        rng = np.random.default_rng(5)
        pages = rng.zipf(1.5, size=30000) % 2048
        mgr = MemoryManager(256 * 4096, HotnessMigrationPolicy())
        mgr.epoch(pages * 4096)
        hit = mgr.epoch(pages * 4096)
        miss = 1.0 - hit
        rel = miss_rate_sweep(
            profile, 320, 1e9, 3e12, miss_rates=(0.0, miss)
        )
        # Achieved placement quality maps to a concrete slowdown.
        assert 0.0 < rel[1] <= 1.0

    def test_dse_result_feeds_exascale(self):
        from repro.core.dse import explore
        from repro.core.exascale import ExascaleSystem

        profile = get_application("MaxFlops")
        result = explore([profile])
        cfg = result.best_config("MaxFlops")
        est = ExascaleSystem().estimate(profile, cfg)
        assert est.exaflops > 1.0
