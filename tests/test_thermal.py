"""Thermal substrate: floorplan, stack, grid solver, analysis."""

import numpy as np
import pytest

from repro.core.config import PAPER_BEST_MEAN
from repro.core.node import NodeModel
from repro.thermal.analysis import DRAM_LIMIT_C, ThermalModel
from repro.thermal.floorplan import EHPFloorplan, Region
from repro.thermal.grid import ThermalGrid
from repro.thermal.stack import LayerStack, ThermalLayer
from repro.workloads.catalog import get_application


class TestFloorplan:
    def test_region_counts(self):
        fp = EHPFloorplan()
        assert len(fp.gpu_regions) == 8
        assert len(fp.cpu_regions) == 8

    def test_regions_disjoint(self):
        fp = EHPFloorplan()
        regions = list(fp.iter_regions())
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                overlap_x = min(a.x1, b.x1) - max(a.x0, b.x0)
                overlap_y = min(a.y1, b.y1) - max(a.y0, b.y0)
                assert overlap_x <= 0 or overlap_y <= 0, (a.name, b.name)

    def test_cpu_regions_central(self):
        fp = EHPFloorplan()
        mid = fp.width_mm / 2
        for r in fp.cpu_regions:
            assert abs((r.x0 + r.x1) / 2 - mid) < fp.width_mm / 4

    def test_region_at(self):
        fp = EHPFloorplan()
        r = fp.gpu_regions[0]
        found = fp.region_at((r.x0 + r.x1) / 2, (r.y0 + r.y1) / 2)
        assert found is r

    def test_degenerate_region_rejected(self):
        with pytest.raises(ValueError):
            Region("bad", "gpu", 1.0, 1.0, 1.0, 2.0)

    def test_areas_positive(self):
        fp = EHPFloorplan()
        assert fp.gpu_area_mm2 > fp.cpu_area_mm2 > 0


class TestLayerStack:
    def test_default_layers(self):
        stack = LayerStack()
        assert [l.name for l in stack.layers] == [
            "interposer", "compute", "dram",
        ]

    def test_layer_index(self):
        stack = LayerStack()
        assert stack.layer_index("dram") == 2
        with pytest.raises(KeyError):
            stack.layer_index("nope")

    def test_resistances_positive(self):
        layer = ThermalLayer("t", 100e-6, 120.0)
        assert layer.vertical_resistance(1e-6) > 0
        assert layer.lateral_resistance(1e-3, 1e-7) > 0

    def test_nonphysical_layer_rejected(self):
        with pytest.raises(ValueError):
            ThermalLayer("t", 0.0, 120.0)


class TestThermalGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return ThermalGrid(66.0, 22.0, nx=22, ny=8)

    def test_zero_power_gives_ambient(self, grid):
        maps = np.zeros((3, grid.ny, grid.nx))
        field = grid.solve(maps)
        assert field.peak() == pytest.approx(grid.stack.ambient_c, abs=1e-6)

    def test_power_raises_temperature(self, grid):
        maps = np.zeros((3, grid.ny, grid.nx))
        maps[1, 4, 10] = 5.0
        field = grid.solve(maps)
        assert field.peak("compute") > grid.stack.ambient_c + 1.0

    def test_superposition(self, grid):
        # The system is linear: doubling power doubles the rise.
        maps = np.zeros((3, grid.ny, grid.nx))
        maps[1, 4, 10] = 5.0
        rise1 = grid.solve(maps).peak() - grid.stack.ambient_c
        rise2 = grid.solve(maps * 2).peak() - grid.stack.ambient_c
        assert rise2 == pytest.approx(2 * rise1, rel=1e-9)

    def test_hotspot_local(self, grid):
        maps = np.zeros((3, grid.ny, grid.nx))
        maps[1, 4, 2] = 10.0
        field = grid.solve(maps)
        layer = field.layer("compute")
        assert layer[4, 2] > layer[4, grid.nx - 1]

    def test_heat_rises_into_dram_layer(self, grid):
        maps = np.zeros((3, grid.ny, grid.nx))
        maps[1, 4, 10] = 10.0
        field = grid.solve(maps)
        # DRAM directly above the hot compute cell is warmer than distant
        # DRAM cells.
        dram = field.layer("dram")
        assert dram[4, 10] > dram[0, 0]

    def test_shape_validated(self, grid):
        with pytest.raises(ValueError):
            grid.solve(np.zeros((2, grid.ny, grid.nx)))

    def test_negative_power_rejected(self, grid):
        maps = np.zeros((3, grid.ny, grid.nx))
        maps[0, 0, 0] = -1.0
        with pytest.raises(ValueError):
            grid.solve(maps)


class TestRegionMaskVectorization:
    @pytest.fixture(scope="class")
    def thermal(self):
        return ThermalModel(nx=33, ny=11)

    def test_matches_reference_exactly(self, thermal):
        # The meshgrid rasterization must agree bit-for-bit with the
        # per-cell double loop it replaced.
        for regions in (
            thermal.floorplan.gpu_regions,
            thermal.floorplan.cpu_regions,
            list(thermal.floorplan.iter_regions()),
        ):
            fast = thermal._region_mask(regions)
            slow = thermal._region_mask_reference(regions)
            assert fast.dtype == slow.dtype == np.bool_
            assert np.array_equal(fast, slow)

    def test_matches_reference_on_odd_grids(self):
        # Resolutions that do not divide the package evenly put cell
        # centres near region edges; the half-open containment test must
        # still agree.
        for nx, ny in ((7, 5), (13, 9), (66, 22), (65, 21)):
            tm = ThermalModel(nx=nx, ny=ny)
            regions = list(tm.floorplan.iter_regions())
            assert np.array_equal(
                tm._region_mask(regions),
                tm._region_mask_reference(regions),
            )

    def test_empty_region_list(self, thermal):
        assert not thermal._region_mask([]).any()

    def test_masks_cached_per_instance(self, thermal):
        first = thermal._cached_mask("gpu")
        assert thermal._cached_mask("gpu") is first
        assert first.any()


class TestAnalyzeMany:
    def test_matches_sequential_analyze(self):
        thermal = ThermalModel(nx=33, ny=11)
        model = NodeModel()
        powers = []
        for name in ("MaxFlops", "SNAP", "CoMD"):
            p = get_application(name)
            ev = model.evaluate(
                p, PAPER_BEST_MEAN, ext_fraction=p.ext_memory_fraction
            )
            powers.append(ev.power)
        batched = thermal.analyze_many(powers)
        for report, power in zip(batched, powers):
            single = thermal.analyze(power)
            assert np.array_equal(
                report.field.celsius, single.field.celsius
            )
            assert report.peak_dram_c == single.peak_dram_c
            assert report.mean_dram_c == single.mean_dram_c

    def test_empty_batch(self):
        assert ThermalModel(nx=33, ny=11).analyze_many([]) == []


class TestThermalModelAnalysis:
    @pytest.fixture(scope="class")
    def thermal(self):
        return ThermalModel(nx=33, ny=11)

    def test_best_mean_within_dram_limit(self, thermal):
        # Fig. 10 Finding 1: all kernels below 85 C at the best-mean config.
        model = NodeModel()
        for name in ("MaxFlops", "CoMD-LJ", "SNAP"):
            p = get_application(name)
            ev = model.evaluate(
                p, PAPER_BEST_MEAN, ext_fraction=p.ext_memory_fraction
            )
            report = thermal.analyze(ev.power)
            assert report.peak_dram_c <= DRAM_LIMIT_C, name
            assert report.dram_within_limit

    def test_heatmap_shows_gpu_hotspots(self, thermal):
        model = NodeModel()
        p = get_application("MaxFlops")
        ev = model.evaluate(p, PAPER_BEST_MEAN)
        report = thermal.analyze(ev.power)
        heat = report.dram_heatmap()
        # Columns over the GPU clusters (outer thirds) are hotter than
        # the central CPU columns.
        nx = heat.shape[1]
        gpu_cols = heat[:, : nx // 6].mean()
        cpu_cols = heat[:, 5 * nx // 12: 7 * nx // 12].mean()
        assert gpu_cols > cpu_cols

    def test_headroom_sign(self, thermal):
        model = NodeModel()
        p = get_application("XSBench")
        ev = model.evaluate(p, PAPER_BEST_MEAN)
        report = thermal.analyze(ev.power)
        assert report.dram_headroom_c == pytest.approx(
            DRAM_LIMIT_C - report.peak_dram_c
        )

    def test_more_power_is_hotter(self, thermal):
        model = NodeModel()
        hot = get_application("MaxFlops")
        cool = hot.with_overrides(cu_utilization=0.3)
        ev_hot = model.evaluate(hot, PAPER_BEST_MEAN)
        ev_cool = model.evaluate(cool, PAPER_BEST_MEAN)
        assert float(ev_hot.ehp_power) > float(ev_cool.ehp_power)
        assert (
            thermal.analyze(ev_hot.power).peak_dram_c
            > thermal.analyze(ev_cool.power).peak_dram_c
        )
