"""Text-table rendering."""

import pytest

from repro.util.tables import TextTable, format_series


class TestTextTable:
    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_row_length_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_render_alignment(self):
        t = TextTable(["app", "perf"])
        t.add_row(["CoMD", 1.25])
        t.add_row(["MaxFlops", 2.0])
        lines = t.render().splitlines()
        assert lines[0].startswith("app")
        assert "+" in lines[1]
        # All data rows align the separator at the same column.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_float_formatting(self):
        t = TextTable(["x"], float_format="{:.1f}")
        t.add_row([3.14159])
        assert "3.1" in t.render()
        assert "3.14" not in t.render()

    def test_bool_rendering(self):
        t = TextTable(["ok"])
        t.add_row([True])
        t.add_row([False])
        body = t.render()
        assert "yes" in body and "no" in body

    def test_n_rows(self):
        t = TextTable(["x"])
        assert t.n_rows == 0
        t.add_row([1])
        t.add_row([2])
        assert t.n_rows == 2

    def test_render_has_no_trailing_whitespace(self):
        t = TextTable(["a", "bbbb"])
        t.add_row(["x", "y"])
        for line in t.render().splitlines():
            assert line == line.rstrip()


class TestFormatSeries:
    def test_basic(self):
        out = format_series({"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
        assert "s1" in out and "s2" in out
        assert "1.000" in out and "4.000" in out

    def test_x_values(self):
        out = format_series(
            {"y": [0.5]}, x_label="bw", x_values=["3TBps"]
        )
        assert "bw" in out and "3TBps" in out

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series({"a": [1.0], "b": [1.0, 2.0]})

    def test_x_values_length_checked(self):
        with pytest.raises(ValueError):
            format_series({"a": [1.0, 2.0]}, x_values=[0])

    def test_empty_series(self):
        out = format_series({})
        assert out  # header-only table still renders
