"""Runtime studies X3a-X3c."""

import pytest

from repro.experiments.runtime_studies import (
    run_checkpoint_study,
    run_governor_study,
    run_hsa_dispatch_study,
)


class TestGovernorStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_governor_study()

    def test_all_apps_reported(self, study):
        assert len(study.data) == 8

    def test_maxflops_left_alone(self, study):
        row = study.data["MaxFlops"]
        assert row["gated_cus"] == 0
        assert row["power_saving_pct"] == pytest.approx(0.0)

    def test_perf_budget_respected(self, study):
        for app, row in study.data.items():
            assert row["perf_loss_pct"] <= 2.0 + 1e-9, app

    def test_some_kernels_get_faster(self, study):
        # Over-provisioning relief: at least one memory-intensive kernel
        # speeds up when the governor backs CUs off.
        assert any(
            row["perf_loss_pct"] < -5.0 for row in study.data.values()
        )

    def test_governor_coheres_with_table2(self, study):
        # Applications whose Table II optimum has fewer CUs than the
        # best-mean point should be backed off by the governor too.
        assert study.data["CoMD"]["gated_cus"] > 0
        assert study.data["MiniAMR"]["gated_cus"] > 0


class TestCheckpointStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_checkpoint_study()

    def test_stronger_protection_higher_efficiency(self, study):
        effs = [row["efficiency_pct"] for row in study.data.values()]
        assert effs == sorted(effs)

    def test_intervals_grow_with_mttf(self, study):
        intervals = [row["interval_min"] for row in study.data.values()]
        assert intervals == sorted(intervals)

    def test_best_stack_above_99(self, study):
        best = study.data["chipkill + strong RMT"]
        assert best["efficiency_pct"] > 99.0


class TestHsaDispatchStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_hsa_dispatch_study()

    def test_all_speedups_above_one(self, study):
        assert all(v > 1.0 for v in study.data.values())

    def test_fine_grained_benefits_most(self, study):
        assert study.data["50us/512MB"] > study.data["5000us/512MB"]

    def test_more_data_bigger_speedup(self, study):
        assert study.data["500us/512MB"] > study.data["500us/64MB"]
