"""HSA substrate: queues, signals, offload models, DAG execution."""

import pytest

from repro.hsa.offload import (
    DagExecutor,
    OffloadCostModel,
    Task,
    TaskGraph,
)
from repro.hsa.queues import (
    AqlPacket,
    CompletionSignal,
    PacketState,
    UserModeQueue,
)


class TestCompletionSignal:
    def test_decrement_to_zero_fires_waiters(self):
        sig = CompletionSignal(value=2)
        fired = []
        sig.subscribe(lambda: fired.append(1))
        sig.decrement()
        assert not fired
        sig.decrement()
        assert fired == [1]

    def test_subscribe_after_zero_fires_immediately(self):
        sig = CompletionSignal(value=0)
        fired = []
        sig.subscribe(lambda: fired.append(1))
        assert fired == [1]

    def test_over_decrement_rejected(self):
        sig = CompletionSignal(value=1)
        sig.decrement()
        with pytest.raises(RuntimeError):
            sig.decrement()

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            CompletionSignal(value=-1)


class TestUserModeQueue:
    def test_submit_rings_doorbell(self):
        q = UserModeQueue("q")
        q.submit(AqlPacket("a"))
        assert q.doorbell_rings == 1
        assert len(q) == 1

    def test_pop_ready_launches_in_order(self):
        q = UserModeQueue("q")
        q.submit(AqlPacket("a"))
        q.submit(AqlPacket("b"))
        ready = q.pop_ready()
        assert [p.name for p in ready] == ["a", "b"]
        assert all(p.state is PacketState.LAUNCHED for p in ready)

    def test_barrier_blocks_until_earlier_complete(self):
        q = UserModeQueue("q")
        a = AqlPacket("a")
        bar = AqlPacket("bar", barrier=True)
        c = AqlPacket("c")
        q.submit(a)
        q.submit(bar)
        q.submit(c)
        first = q.pop_ready()
        assert [p.name for p in first] == ["a"]
        assert q.pop_ready() == []  # barrier waits on a
        q.complete(a)
        second = q.pop_ready()
        assert [p.name for p in second] == ["bar"]
        q.complete(bar)
        assert [p.name for p in q.pop_ready()] == ["c"]

    def test_complete_fires_signal(self):
        q = UserModeQueue("q")
        p = AqlPacket("a")
        q.submit(p)
        q.pop_ready()
        q.complete(p)
        assert p.completion.is_set
        assert p.state is PacketState.COMPLETE

    def test_queue_depth_enforced(self):
        q = UserModeQueue("q", depth=1)
        q.submit(AqlPacket("a"))
        with pytest.raises(RuntimeError):
            q.submit(AqlPacket("b"))

    def test_idle_tracking(self):
        q = UserModeQueue("q")
        assert q.idle
        p = AqlPacket("a")
        q.submit(p)
        assert not q.idle
        q.pop_ready()
        q.complete(p)
        assert q.idle


class TestOffloadCostModel:
    def test_hsa_much_cheaper_than_legacy(self):
        m = OffloadCostModel()
        assert m.hsa_dispatch_cost() < m.legacy_dispatch_cost(0.0)

    def test_legacy_cost_scales_with_data(self):
        m = OffloadCostModel()
        small = m.legacy_dispatch_cost(1e6)
        big = m.legacy_dispatch_cost(1e9)
        assert big > small

    def test_hsa_cost_data_independent(self):
        # The defining HSA property: pointers are exchanged, not data.
        m = OffloadCostModel()
        assert m.hsa_dispatch_cost() == m.hsa_dispatch_cost()

    def test_speedup_largest_for_short_kernels(self):
        m = OffloadCostModel()
        short = m.speedup_per_dispatch(1e9, kernel_time=100e-6)
        long = m.speedup_per_dispatch(1e9, kernel_time=100e-3)
        assert short > long > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OffloadCostModel(copy_bandwidth=0.0)
        with pytest.raises(ValueError):
            OffloadCostModel().legacy_dispatch_cost(-1.0)
        with pytest.raises(ValueError):
            OffloadCostModel().speedup_per_dispatch(0.0, 0.0)


def diamond_graph() -> TaskGraph:
    g = TaskGraph()
    g.add(Task("prep", "cpu", 1e-3))
    g.add(Task("force", "gpu", 4e-3, bytes_touched=1e9, depends_on=("prep",)))
    g.add(Task("neigh", "gpu", 2e-3, bytes_touched=5e8, depends_on=("prep",)))
    g.add(Task("reduce", "cpu", 1e-3, depends_on=("force", "neigh")))
    return g


class TestTaskGraph:
    def test_duplicate_rejected(self):
        g = TaskGraph()
        g.add(Task("a", "cpu", 1.0))
        with pytest.raises(ValueError):
            g.add(Task("a", "gpu", 1.0))

    def test_unknown_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add(Task("a", "cpu", 1.0, depends_on=("ghost",)))

    def test_roots_and_dependants(self):
        g = diamond_graph()
        assert [t.name for t in g.roots()] == ["prep"]
        assert {t.name for t in g.dependants_of("prep")} == {
            "force", "neigh",
        }

    def test_critical_path(self):
        g = diamond_graph()
        assert g.critical_path() == pytest.approx(1e-3 + 4e-3 + 1e-3)

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            Task("x", "tpu", 1.0)
        with pytest.raises(ValueError):
            Task("x", "cpu", 0.0)


class TestDagExecutor:
    def test_respects_dependencies(self):
        result = DagExecutor().run(diamond_graph())
        assert result.finish_times["prep"] < result.finish_times["force"]
        assert result.finish_times["force"] < result.finish_times["reduce"]
        assert result.finish_times["neigh"] < result.finish_times["reduce"]

    def test_makespan_bounded_by_critical_path(self):
        g = diamond_graph()
        result = DagExecutor().run(g)
        assert result.makespan >= g.critical_path()

    def test_gpu_tasks_serialize_on_one_agent(self):
        g = diamond_graph()
        result = DagExecutor().run(g)
        # force (4 ms) and neigh (2 ms) share the GPU: busy time 6 ms.
        assert result.agent_busy["gpu"] == pytest.approx(6e-3)

    def test_hsa_beats_legacy_on_copy_heavy_graphs(self):
        g = diamond_graph()
        hsa = DagExecutor(regime="hsa").run(g)
        legacy = DagExecutor(regime="legacy").run(g)
        assert legacy.makespan > hsa.makespan * 2.0

    def test_regimes_equal_without_data(self):
        g = TaskGraph()
        g.add(Task("a", "gpu", 1e-3, bytes_touched=0.0))
        hsa = DagExecutor(regime="hsa").run(g)
        legacy = DagExecutor(regime="legacy").run(g)
        # Only the fixed launch overheads differ.
        assert legacy.makespan - hsa.makespan < 50e-6

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            DagExecutor().run(TaskGraph())

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            DagExecutor(regime="magic")

    def test_utilization(self):
        result = DagExecutor().run(diamond_graph())
        assert 0.0 < result.utilization("gpu") <= 1.0
        assert result.utilization("nonexistent") == 0.0
