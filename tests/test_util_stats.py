"""Statistics helpers, including hypothesis property tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import stats

positive_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestGeometricMean:
    def test_simple(self):
        assert stats.geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stats.geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            stats.geometric_mean([1.0, 0.0])

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = stats.geometric_mean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001

    @given(st.lists(positive_floats, min_size=1, max_size=20), positive_floats)
    def test_scale_invariance(self, values, k):
        g1 = stats.geometric_mean(values)
        g2 = stats.geometric_mean([v * k for v in values])
        assert g2 == pytest.approx(g1 * k, rel=1e-6)


class TestHarmonicMean:
    def test_simple(self):
        assert stats.harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert stats.harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stats.harmonic_mean([])

    @given(st.lists(positive_floats, min_size=2, max_size=20))
    def test_harmonic_le_geometric(self, values):
        h = stats.harmonic_mean(values)
        g = stats.geometric_mean(values)
        assert h <= g * (1 + 1e-9)


class TestWeightedMean:
    def test_equal_weights(self):
        assert stats.weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0

    def test_skewed_weights(self):
        assert stats.weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            stats.weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            stats.weighted_mean([1.0], [0.0])


class TestNormalize:
    def test_default_reference_is_max(self):
        assert stats.normalize([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]

    def test_explicit_reference(self):
        assert stats.normalize([2.0], reference=4.0) == [0.5]

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            stats.normalize([1.0], reference=0.0)

    def test_empty(self):
        assert stats.normalize([]) == []


class TestRelativeError:
    def test_simple(self):
        assert stats.relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_expected_rejected(self):
        with pytest.raises(ValueError):
            stats.relative_error(1.0, 0.0)

    def test_symmetric_magnitude(self):
        assert stats.relative_error(9.0, 10.0) == pytest.approx(0.1)


class TestClamp:
    def test_inside(self):
        assert stats.clamp(0.5, 0.0, 1.0) == 0.5

    def test_outside(self):
        assert stats.clamp(-1.0, 0.0, 1.0) == 0.0
        assert stats.clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            stats.clamp(0.0, 1.0, 0.0)


class TestSmoothMax:
    def test_far_apart_approaches_max(self):
        assert stats.smooth_max(1.0, 100.0) == pytest.approx(100.0, rel=1e-4)
        # The scale-invariant form keeps a bounded *relative* overshoot
        # of ~log(1+e^-s)/s even for very disparate operands.
        assert stats.smooth_max(1.0, 1e6) == pytest.approx(1e6, rel=1e-4)

    def test_equal_values_overshoot_bounded(self):
        v = stats.smooth_max(1.0, 1.0, sharpness=8.0)
        assert 1.0 <= v <= 1.0 + math.log(2) / 8.0 + 1e-12

    def test_nonpositive_sharpness_rejected(self):
        with pytest.raises(ValueError):
            stats.smooth_max(1.0, 1.0, sharpness=0.0)

    @given(positive_floats, positive_floats)
    def test_upper_bounds_hard_max(self, a, b):
        assert stats.smooth_max(a, b) >= max(a, b) * (1 - 1e-12)

    @given(positive_floats, positive_floats)
    def test_symmetry(self, a, b):
        assert stats.smooth_max(a, b) == pytest.approx(
            stats.smooth_max(b, a), rel=1e-9
        )

    def test_zero_inputs(self):
        assert stats.smooth_max(0.0, 0.0) == 0.0
