"""Voltage-frequency curve."""

import numpy as np
import pytest

from repro.power.vf import VFCurve


class TestVoltage:
    def test_reference_point(self):
        vf = VFCurve()
        assert float(vf.voltage(1.0e9)) == pytest.approx(vf.v_ref)

    def test_linear_above_reference(self):
        vf = VFCurve(v_ref=0.8, slope_per_ghz=0.3)
        assert float(vf.voltage(1.5e9)) == pytest.approx(0.95)

    def test_floor_applies(self):
        vf = VFCurve(v_ref=0.8, slope_per_ghz=0.3, v_floor=0.75)
        assert float(vf.voltage(0.5e9)) == pytest.approx(0.75)

    def test_vectorized(self):
        vf = VFCurve()
        v = vf.voltage(np.array([0.7e9, 1.0e9, 1.5e9]))
        assert v.shape == (3,)
        assert np.all(np.diff(v) >= 0)

    def test_nonpositive_freq_rejected(self):
        with pytest.raises(ValueError):
            VFCurve().voltage(0.0)


class TestVoltageScale:
    def test_ntc_scales_curve(self):
        vf = VFCurve()
        ntc = vf.with_voltage_scale(0.87)
        assert float(ntc.voltage(1.0e9)) == pytest.approx(0.8 * 0.87)

    def test_floor_still_applies_after_scaling(self):
        vf = VFCurve(v_floor=0.7)
        ntc = vf.with_voltage_scale(0.6)
        with pytest.raises(ValueError):
            # scale outside plausible bounds is rejected outright
            vf.with_voltage_scale(0.4)
        assert float(ntc.voltage(1.0e9)) >= 0.0  # built fine

    def test_scale_composition(self):
        vf = VFCurve().with_voltage_scale(0.9)
        assert vf.voltage_scale == pytest.approx(0.9)


class TestDynamicPowerScale:
    def test_reference_is_unity(self):
        vf = VFCurve()
        assert float(vf.dynamic_power_scale(1.0e9)) == pytest.approx(1.0)

    def test_superlinear_in_frequency(self):
        # V^2 f grows faster than f once voltage must rise.
        vf = VFCurve()
        s = float(vf.dynamic_power_scale(1.5e9))
        assert s > 1.5

    def test_ntc_reduces_dynamic_power(self):
        base = float(VFCurve().dynamic_power_scale(1.0e9))
        ntc = float(
            VFCurve().with_voltage_scale(0.87).dynamic_power_scale(1.0e9)
        )
        assert ntc == pytest.approx(base * 0.87**2, rel=1e-9)


class TestValidation:
    def test_floor_above_ref_rejected(self):
        with pytest.raises(ValueError):
            VFCurve(v_ref=0.8, v_floor=0.9)

    def test_negative_slope_rejected(self):
        with pytest.raises(ValueError):
            VFCurve(slope_per_ghz=-0.1)

    def test_extreme_scale_rejected(self):
        with pytest.raises(ValueError):
            VFCurve(voltage_scale=2.0)
