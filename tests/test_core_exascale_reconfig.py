"""Exascale roll-up and dynamic reconfiguration."""

import pytest

from repro.core.config import PAPER_BEST_MEAN, DesignSpace, EHPConfig
from repro.core.exascale import ExascaleSystem
from repro.core.node import NodeModel
from repro.core.reconfig import (
    OracleReconfigurator,
    PhaseReconfigurator,
)
from repro.workloads.catalog import APPLICATIONS, get_application
from repro.workloads.kernels import KernelCategory


class TestExascaleSystem:
    def test_paper_fig14_endpoint(self):
        # 320 CUs at 1 GHz / 1 TB/s: ~1.86 EF at ~11.1 MW.
        system = ExascaleSystem()
        est = system.estimate(
            get_application("MaxFlops"),
            EHPConfig(n_cus=320, gpu_freq=1e9, bandwidth=1e12),
        )
        assert est.exaflops == pytest.approx(1.86, rel=0.05)
        assert est.machine_power_mw == pytest.approx(11.1, rel=0.10)

    def test_meets_exaflop_within_envelope(self):
        system = ExascaleSystem()
        est = system.estimate(
            get_application("MaxFlops"),
            EHPConfig(n_cus=320, gpu_freq=1e9, bandwidth=1e12),
        )
        assert est.meets_exaflop
        assert est.meets_power_envelope

    def test_cu_sweep_is_linear(self):
        system = ExascaleSystem()
        ests = system.cu_sweep(
            get_application("MaxFlops"), (192, 256, 320)
        )
        ratio = ests[2].exaflops / ests[0].exaflops
        assert ratio == pytest.approx(320 / 192, rel=0.02)

    def test_power_grows_with_cus(self):
        system = ExascaleSystem()
        ests = system.cu_sweep(get_application("MaxFlops"), (192, 320))
        assert ests[1].machine_power_mw > ests[0].machine_power_mw

    def test_node_count_scales_linearly(self):
        small = ExascaleSystem(n_nodes=50_000)
        big = ExascaleSystem(n_nodes=100_000)
        cfg = EHPConfig(n_cus=320, gpu_freq=1e9, bandwidth=1e12)
        p = get_application("MaxFlops")
        assert big.estimate(p, cfg).exaflops == pytest.approx(
            2 * small.estimate(p, cfg).exaflops
        )

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            ExascaleSystem(n_nodes=0)

    def test_gflops_per_watt_units(self):
        # The exascale target itself: 1 EF in 20 MW is 50 GF/W.
        from repro.core.exascale import SystemEstimate

        est = SystemEstimate(
            exaflops=1.0,
            machine_power_mw=20.0,
            node_teraflops=10.0,
            node_power_w=200.0,
        )
        assert est.gflops_per_watt == pytest.approx(50.0)

    def test_gflops_per_watt_matches_node_ratio(self):
        # Machine-level GF/W must equal the node-level flops/W ratio
        # (scaling by n_nodes cancels) — this is what the old
        # kilowatt-denominator bug broke by a factor of 1000.
        system = ExascaleSystem()
        est = system.estimate(
            get_application("MaxFlops"),
            EHPConfig(n_cus=320, gpu_freq=1e9, bandwidth=1e12),
        )
        node_gf_per_w = (est.node_teraflops * 1e3) / est.node_power_w
        assert est.gflops_per_watt == pytest.approx(node_gf_per_w)

    def test_cu_sweep_engines_equivalent(self):
        system = ExascaleSystem()
        profile = get_application("LULESH")
        cus = (192, 224, 256, 288, 320, 384)
        grid = system.cu_sweep(profile, cus, engine="grid")
        point = system.cu_sweep(profile, cus, engine="point")
        for g, p in zip(grid, point):
            assert g.exaflops == pytest.approx(p.exaflops, rel=1e-12)
            assert g.machine_power_mw == pytest.approx(
                p.machine_power_mw, rel=1e-12
            )
            assert g.meets_exaflop == p.meets_exaflop
            assert g.meets_power_envelope == p.meets_power_envelope

    def test_cu_sweep_rejects_unknown_engine(self):
        system = ExascaleSystem()
        with pytest.raises(ValueError, match="unknown cu_sweep engine"):
            system.cu_sweep(
                get_application("MaxFlops"), (320,), engine="magic"
            )

    def test_cu_sweep_grid_validates_counts(self):
        # The grid engine must reject exactly what the oracle rejects:
        # counts not divisible by the chiplet count.
        system = ExascaleSystem()
        with pytest.raises(ValueError):
            system.cu_sweep(
                get_application("MaxFlops"), (321,), engine="grid"
            )


class TestOracleReconfigurator:
    def test_decisions_match_dse(self, small_space):
        oracle = OracleReconfigurator(space=small_space)
        decisions = oracle.decide(
            [get_application("CoMD"), get_application("MaxFlops")]
        )
        assert {d.application for d in decisions} == {"CoMD", "MaxFlops"}
        for d in decisions:
            assert d.benefit_pct >= -1e-9


class TestPhaseReconfigurator:
    @pytest.fixture
    def palette(self):
        return {
            KernelCategory.COMPUTE_INTENSIVE: EHPConfig(
                n_cus=384, gpu_freq=925e6, bandwidth=1e12
            ),
            KernelCategory.MEMORY_INTENSIVE: EHPConfig(
                n_cus=256, gpu_freq=1100e6, bandwidth=4e12
            ),
        }

    def test_dynamic_beats_static_on_mixed_phases(self, palette):
        rc = PhaseReconfigurator(palette, fallback=PAPER_BEST_MEAN)
        phases = [
            get_application("MaxFlops"),
            get_application("LULESH"),
            get_application("MaxFlops"),
            get_application("LULESH"),
        ]
        out = rc.run(phases)
        assert out["speedup"] > 1.0
        assert out["switches"] == 3

    def test_switch_overhead_counted(self, palette):
        costly = PhaseReconfigurator(
            palette, fallback=PAPER_BEST_MEAN, switch_overhead=10.0
        )
        free = PhaseReconfigurator(
            palette, fallback=PAPER_BEST_MEAN, switch_overhead=0.0
        )
        phases = [get_application("MaxFlops"), get_application("LULESH")]
        assert costly.run(phases)["dynamic_time"] > free.run(phases)[
            "dynamic_time"
        ]

    def test_unclassified_phase_uses_fallback(self, palette):
        rc = PhaseReconfigurator(palette, fallback=PAPER_BEST_MEAN)
        balanced = get_application("CoMD")  # BALANCED not in palette
        assert rc.config_for(balanced) == PAPER_BEST_MEAN

    def test_empty_phases_rejected(self, palette):
        rc = PhaseReconfigurator(palette, fallback=PAPER_BEST_MEAN)
        with pytest.raises(ValueError):
            rc.run([])

    def test_negative_overhead_rejected(self, palette):
        with pytest.raises(ValueError):
            PhaseReconfigurator(
                palette, fallback=PAPER_BEST_MEAN, switch_overhead=-1.0
            )
