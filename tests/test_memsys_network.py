"""External memory network: chains, failures, interleaving."""

import numpy as np
import pytest

from repro.memsys.interleave import AddressInterleaver
from repro.memsys.memnet import ExternalMemoryNetwork, MemoryModule


class TestNetworkConstruction:
    def test_dram_only_capacity_target(self):
        net = ExternalMemoryNetwork.dram_only(1.0)
        assert net.total_capacity == pytest.approx(1.024e12, rel=0.05)
        assert net.n_modules == 16

    def test_hybrid_fewer_modules_same_capacity(self):
        dram = ExternalMemoryNetwork.dram_only(1.0)
        hybrid = ExternalMemoryNetwork.hybrid(1.0)
        assert hybrid.total_capacity == pytest.approx(
            dram.total_capacity, rel=0.05
        )
        assert hybrid.n_modules < dram.n_modules

    def test_modules_distributed_across_chains(self):
        net = ExternalMemoryNetwork.dram_only(1.0)
        lengths = [len(c.modules) for c in net.chains]
        assert max(lengths) - min(lengths) <= 1

    def test_aggregate_bandwidth(self):
        net = ExternalMemoryNetwork.dram_only(1.0)
        assert net.aggregate_bandwidth == pytest.approx(8 * 64e9)

    def test_bad_module_kind(self):
        with pytest.raises(ValueError):
            MemoryModule("x", "flash", 1e9)


class TestFailuresAndRedundancy:
    def test_head_link_failure_cuts_chain_without_redundancy(self):
        net = ExternalMemoryNetwork.dram_only(cross_linked=False)
        net.fail_link(0, 0)
        assert not net.is_reachable(0, 0)
        assert not net.is_reachable(0, 1)

    def test_cross_link_restores_reachability(self):
        # Section II-B2: optional cross-links allow access to memory
        # devices in the event of link failures.
        net = ExternalMemoryNetwork.dram_only(cross_linked=True)
        net.fail_link(0, 0)
        assert net.is_reachable(0, 1)

    def test_rerouted_latency_is_longer(self):
        net = ExternalMemoryNetwork.dram_only(cross_linked=True)
        direct = net.access_latency(0, 1)
        net.fail_link(0, 0)
        rerouted = net.access_latency(0, 1)
        assert rerouted > direct

    def test_mid_chain_failure_keeps_head_reachable(self):
        net = ExternalMemoryNetwork.dram_only(cross_linked=False)
        net.fail_link(0, 1)
        assert net.is_reachable(0, 0)
        assert not net.is_reachable(0, 1)

    def test_repair_restores(self):
        net = ExternalMemoryNetwork.dram_only(cross_linked=False)
        net.fail_link(0, 0)
        net.repair_link(0, 0)
        assert net.is_reachable(0, 0)

    def test_double_failure_defeats_redundancy(self):
        net = ExternalMemoryNetwork.dram_only(cross_linked=True)
        net.fail_link(0, 0)
        # Break the partner chain too: the reverse path dies.
        for hop in range(len(net.chains[1].modules)):
            net.fail_link(1, hop)
        assert not net.is_reachable(0, 1)
        with pytest.raises(RuntimeError):
            net.access_latency(0, 1)

    def test_aggregate_bandwidth_drops_with_dead_chain(self):
        net = ExternalMemoryNetwork.dram_only(cross_linked=False)
        before = net.aggregate_bandwidth
        net.fail_link(0, 0)
        assert net.aggregate_bandwidth < before

    def test_bounds_checked(self):
        net = ExternalMemoryNetwork.dram_only()
        with pytest.raises(IndexError):
            net.fail_link(99, 0)
        with pytest.raises(IndexError):
            net.fail_link(0, 99)


class TestAddressInterleaver:
    def test_round_robin_channels(self):
        il = AddressInterleaver(n_channels=8, granularity=4096)
        assert il.channel_of(0) == 0
        assert il.channel_of(4096) == 1
        assert il.channel_of(8 * 4096) == 0

    def test_offsets_compact_per_channel(self):
        il = AddressInterleaver(n_channels=2, granularity=4096)
        # Channel 0 sees blocks 0, 2, 4... mapped to 0, 1, 2...
        assert il.offset_within_channel(0) == 0
        assert il.offset_within_channel(2 * 4096) == 4096
        assert il.offset_within_channel(2 * 4096 + 5) == 4096 + 5

    def test_uniform_stream_balances(self):
        il = AddressInterleaver()
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 34, size=100_000)
        assert il.balance(addrs) > 0.9

    def test_remote_fraction_uniform_is_seven_eighths(self):
        # The NoC model's Fig. 7 starting point.
        il = AddressInterleaver(n_channels=8)
        addrs = np.arange(0, 8 * 4096 * 1000, 4096)
        assert il.remote_fraction(addrs, home_channel=0) == pytest.approx(
            7 / 8
        )

    def test_granularity_power_of_two(self):
        with pytest.raises(ValueError):
            AddressInterleaver(granularity=3000)

    def test_negative_addresses_rejected(self):
        with pytest.raises(ValueError):
            AddressInterleaver().channel_of(-1)

    def test_histogram_counts(self):
        il = AddressInterleaver(n_channels=4, granularity=64)
        addrs = np.array([0, 64, 128, 192, 256])
        hist = il.channel_histogram(addrs)
        assert hist.tolist() == [2, 1, 1, 1]
