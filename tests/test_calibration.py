"""Calibration machinery (no full refits — those run offline)."""

import numpy as np
import pytest

from repro.core.config import DesignSpace, EHPConfig
from repro.core.node import NodeModel
from repro.util.units import MHZ, TB
from repro.workloads.calibration import (
    DEFAULT_TRACE_SEED,
    PAPER_TABLE2,
    CalibrationTarget,
    _Objective,
    default_calibration_trace,
    trace_crosscheck,
)
from repro.workloads.catalog import APPLICATIONS, get_application


@pytest.fixture(scope="module")
def objective():
    return _Objective(
        get_application("CoMD"),
        PAPER_TABLE2["CoMD"],
        DesignSpace(),
        NodeModel(),
    )


class TestPaperTable2:
    def test_eight_targets(self):
        assert len(PAPER_TABLE2) == 8

    def test_target_configs_valid(self):
        for name, target in PAPER_TABLE2.items():
            cfg = target.config
            assert isinstance(cfg, EHPConfig)
            assert cfg.n_cus <= 384

    def test_benefit_with_opt_exceeds_without(self):
        for target in PAPER_TABLE2.values():
            assert target.benefit_opt_pct > target.benefit_pct

    def test_known_values(self):
        t = PAPER_TABLE2["MaxFlops"]
        assert (t.n_cus, t.freq_mhz, t.bw_tbps) == (384, 925, 1)
        assert t.benefit_pct == 10.7
        assert t.benefit_opt_pct == 19.9


class TestObjective:
    def test_flat_index_roundtrip(self, objective):
        cfg = EHPConfig(n_cus=256, gpu_freq=1100 * MHZ, bandwidth=4 * TB)
        index = objective._flat_index(cfg)
        assert objective.space.config_at(index).label() == cfg.label()

    def test_profile_from_clips_to_bounds(self, objective):
        x = [99.0, 99.0, 99.0, 99.0, 99.0, 999.0, 99.0]
        profile = objective.profile_from(x)
        assert profile.parallel_fraction <= 1.0
        assert profile.cache_hit_rate <= 0.9

    def test_calibrated_profile_has_near_zero_loss(self, objective):
        # The shipped catalog parameters reproduce the fit: evaluating
        # the objective at the baked values scores (nearly) zero.
        p = get_application("CoMD")
        x = [
            p.bytes_per_flop, p.parallel_fraction, p.cache_hit_rate,
            p.thrash_pressure, p.latency_sensitivity, p.mlp_per_cu,
            p.cu_utilization,
        ]
        assert objective(x) < 0.1

    def test_argmax_distance_zero_at_target(self, objective):
        assert objective._argmax_distance(objective.target_index) == 0.0

    def test_argmax_distance_positive_elsewhere(self, objective):
        assert objective._argmax_distance(objective.mean_index) > 0.0

    def test_caps_drop_target_index(self):
        target = PAPER_TABLE2["CoMD"]
        space = DesignSpace()
        obj = _Objective(
            get_application("CoMD"), target, space, NodeModel(),
            caps={0: 0.1},
        )
        assert obj.target_index not in obj.caps
        assert 0 in obj.caps


class TestTraceCrosscheck:
    def test_default_trace_deterministic(self):
        a = default_calibration_trace(n_accesses=500)
        b = default_calibration_trace(n_accesses=500)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.flops_between, b.flops_between)
        assert len(a) == 500
        assert DEFAULT_TRACE_SEED == 42

    def test_rows_cover_requested_apps(self):
        from repro.perf.evalcache import SimCache

        rows = trace_crosscheck(names=["CoMD", "MaxFlops"], n_accesses=2000)
        assert [r.name for r in rows] == ["CoMD", "MaxFlops"]
        for r in rows:
            assert r.sim_flops_per_cu > 0
            assert r.analytic_flops_per_cu > 0
            assert 0.0 <= r.sim_dram_fraction <= 1.0
            assert r.ratio == (
                r.sim_flops_per_cu / r.analytic_flops_per_cu
            )

    def test_compute_kernel_agrees_best(self):
        # Per-CU normalization makes the two substrates comparable: the
        # compute-bound kernel (no memory abstraction in play) must land
        # far closer to the analytic prediction than the memory-bound
        # extreme trace does.
        rows = {
            r.name: r
            for r in trace_crosscheck(
                names=["MaxFlops", "SNAP"], n_accesses=4000
            )
        }
        assert abs(rows["MaxFlops"].ratio - 1.0) < 0.25
        assert rows["MaxFlops"].ratio > rows["SNAP"].ratio

    def test_engines_give_same_rows(self):
        a = trace_crosscheck(names=["CoMD"], n_accesses=1500)
        e = trace_crosscheck(names=["CoMD"], n_accesses=1500, engine="event")
        assert a[0].sim_flops_per_cu == pytest.approx(
            e[0].sim_flops_per_cu, rel=1e-9
        )
        assert a[0].sim_dram_fraction == e[0].sim_dram_fraction

    def test_repeat_sweep_hits_sim_cache(self):
        from repro.perf.evalcache import default_sim_cache

        trace_crosscheck(names=["LULESH"], n_accesses=1000)
        before = default_sim_cache().stats()
        trace_crosscheck(names=["LULESH"], n_accesses=1000)
        after = default_sim_cache().stats()
        assert after.hits == before.hits + 1


class TestAllCalibratedProfiles:
    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_baked_parameters_reproduce_fit(self, name):
        space = DesignSpace()
        model = NodeModel()
        profile = get_application(name)
        obj = _Objective(profile, PAPER_TABLE2[name], space, model)
        x = [
            profile.bytes_per_flop, profile.parallel_fraction,
            profile.cache_hit_rate, profile.thrash_pressure,
            profile.latency_sensitivity, profile.mlp_per_cu,
            profile.cu_utilization,
        ]
        # HPGMG retains a small shape-penalty residual; everything else
        # sits at (near) zero loss.
        assert obj(x) < 3.0


class TestChipletPenaltyTable:
    """The Fig. 7-style simulated-vs-analytic chiplet-penalty sweep."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.workloads.calibration import chiplet_penalty_table

        return chiplet_penalty_table(
            names=["CoMD", "MaxFlops", "LULESH"], n_accesses=12_000
        )

    def test_covers_full_grid(self, rows):
        from repro.workloads.calibration import DEFAULT_CHIPLET_PENALTIES_NS

        names = {r.name for r in rows}
        assert names == {"CoMD", "MaxFlops", "LULESH"}
        for name in names:
            penalties = [r.penalty_ns for r in rows if r.name == name]
            assert penalties == list(DEFAULT_CHIPLET_PENALTIES_NS)

    def test_zero_penalty_is_unity(self, rows):
        for r in rows:
            if r.penalty_ns == 0.0:
                assert r.sim_relative == pytest.approx(1.0, rel=1e-12)
                assert r.analytic_relative == pytest.approx(1.0, rel=1e-12)

    def test_monotone_degradation(self, rows):
        """Higher penalties never help: the analytic column is exactly
        non-increasing; the simulated column is allowed sub-percent
        scheduling noise (compute-bound kernels are penalty-blind)."""
        for name in {r.name for r in rows}:
            app = sorted(
                (r for r in rows if r.name == name),
                key=lambda r: r.penalty_ns,
            )
            for earlier, later in zip(app, app[1:]):
                assert later.analytic_relative <= (
                    earlier.analytic_relative + 1e-12
                )
                assert later.sim_relative <= earlier.sim_relative + 0.02

    def test_memory_bound_apps_degrade(self, rows):
        worst = {
            r.name: r.sim_relative
            for r in rows
            if r.penalty_ns == max(x.penalty_ns for x in rows)
        }
        assert worst["CoMD"] < 0.95
        assert worst["LULESH"] < 0.95
        # MaxFlops is compute-bound: penalties barely register.
        assert worst["MaxFlops"] > 0.98

    def test_substrates_agree_within_band(self, rows):
        for r in rows:
            assert 0.9 < r.agreement < 1.1

    def test_rejects_negative_penalties(self):
        from repro.workloads.calibration import chiplet_penalty_table

        with pytest.raises(ValueError):
            chiplet_penalty_table(penalties_ns=(-1.0,), names=["CoMD"])
