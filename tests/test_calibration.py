"""Calibration machinery (no full refits — those run offline)."""

import numpy as np
import pytest

from repro.core.config import DesignSpace, EHPConfig
from repro.core.node import NodeModel
from repro.util.units import MHZ, TB
from repro.workloads.calibration import (
    PAPER_TABLE2,
    CalibrationTarget,
    _Objective,
)
from repro.workloads.catalog import APPLICATIONS, get_application


@pytest.fixture(scope="module")
def objective():
    return _Objective(
        get_application("CoMD"),
        PAPER_TABLE2["CoMD"],
        DesignSpace(),
        NodeModel(),
    )


class TestPaperTable2:
    def test_eight_targets(self):
        assert len(PAPER_TABLE2) == 8

    def test_target_configs_valid(self):
        for name, target in PAPER_TABLE2.items():
            cfg = target.config
            assert isinstance(cfg, EHPConfig)
            assert cfg.n_cus <= 384

    def test_benefit_with_opt_exceeds_without(self):
        for target in PAPER_TABLE2.values():
            assert target.benefit_opt_pct > target.benefit_pct

    def test_known_values(self):
        t = PAPER_TABLE2["MaxFlops"]
        assert (t.n_cus, t.freq_mhz, t.bw_tbps) == (384, 925, 1)
        assert t.benefit_pct == 10.7
        assert t.benefit_opt_pct == 19.9


class TestObjective:
    def test_flat_index_roundtrip(self, objective):
        cfg = EHPConfig(n_cus=256, gpu_freq=1100 * MHZ, bandwidth=4 * TB)
        index = objective._flat_index(cfg)
        assert objective.space.config_at(index).label() == cfg.label()

    def test_profile_from_clips_to_bounds(self, objective):
        x = [99.0, 99.0, 99.0, 99.0, 99.0, 999.0, 99.0]
        profile = objective.profile_from(x)
        assert profile.parallel_fraction <= 1.0
        assert profile.cache_hit_rate <= 0.9

    def test_calibrated_profile_has_near_zero_loss(self, objective):
        # The shipped catalog parameters reproduce the fit: evaluating
        # the objective at the baked values scores (nearly) zero.
        p = get_application("CoMD")
        x = [
            p.bytes_per_flop, p.parallel_fraction, p.cache_hit_rate,
            p.thrash_pressure, p.latency_sensitivity, p.mlp_per_cu,
            p.cu_utilization,
        ]
        assert objective(x) < 0.1

    def test_argmax_distance_zero_at_target(self, objective):
        assert objective._argmax_distance(objective.target_index) == 0.0

    def test_argmax_distance_positive_elsewhere(self, objective):
        assert objective._argmax_distance(objective.mean_index) > 0.0

    def test_caps_drop_target_index(self):
        target = PAPER_TABLE2["CoMD"]
        space = DesignSpace()
        obj = _Objective(
            get_application("CoMD"), target, space, NodeModel(),
            caps={0: 0.1},
        )
        assert obj.target_index not in obj.caps
        assert 0 in obj.caps


class TestAllCalibratedProfiles:
    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_baked_parameters_reproduce_fit(self, name):
        space = DesignSpace()
        model = NodeModel()
        profile = get_application(name)
        obj = _Objective(profile, PAPER_TABLE2[name], space, model)
        x = [
            profile.bytes_per_flop, profile.parallel_fraction,
            profile.cache_hit_rate, profile.thrash_pressure,
            profile.latency_sensitivity, profile.mlp_per_cu,
            profile.cu_utilization,
        ]
        # HPGMG retains a small shape-penalty residual; everything else
        # sits at (near) zero loss.
        assert obj(x) < 3.0
