"""The combined CPU+GPU (APU) application model."""

import pytest

from repro.perfmodel.apu import (
    ApuApplicationModel,
    MixedApplication,
)
from repro.workloads.catalog import get_application


@pytest.fixture(scope="module")
def model():
    return ApuApplicationModel()


def app(**overrides) -> MixedApplication:
    defaults = dict(
        name="mixed",
        profile=get_application("CoMD"),
        serial_fraction=1.0e-4,
        region_alternations=200,
        bytes_per_offload=256e6,
    )
    defaults.update(overrides)
    return MixedApplication(**defaults)


class TestMixedApplication:
    def test_validation(self):
        with pytest.raises(ValueError):
            app(serial_fraction=1.0)
        with pytest.raises(ValueError):
            app(region_alternations=-1)
        with pytest.raises(ValueError):
            app(bytes_per_offload=-1.0)


class TestOrganizations:
    def test_apu_beats_cpu_only(self, model):
        speedups = model.apu_speedup(app())
        assert speedups["cpu-only"] > 5.0

    def test_apu_beats_discrete_on_chatty_apps(self, model):
        speedups = model.apu_speedup(app(region_alternations=500))
        assert speedups["discrete"] > 1.05

    def test_discrete_converges_to_apu_without_transitions(self, model):
        speedups = model.apu_speedup(app(region_alternations=0))
        assert speedups["discrete"] == pytest.approx(1.0)

    def test_offload_share_grows_with_alternations(self, model):
        chatty = model.evaluate(app(region_alternations=1000), "discrete")
        calm = model.evaluate(app(region_alternations=10), "discrete")
        assert chatty.offload_share > calm.offload_share

    def test_cpu_only_has_no_offload(self, model):
        r = model.evaluate(app(), "cpu-only")
        assert r.offload_time == 0.0

    def test_serial_fraction_amdahl(self, model):
        # More serial work hurts every organization; by 1% serial flops
        # the CPU region dominates the whole run (Amdahl at APU scale).
        light = model.evaluate(app(serial_fraction=1e-5), "apu")
        heavy = model.evaluate(app(serial_fraction=1e-2), "apu")
        assert heavy.total_time > light.total_time
        assert heavy.serial_time > heavy.parallel_time

    def test_totals_are_component_sums(self, model):
        for org in ("cpu-only", "discrete", "apu"):
            r = model.evaluate(app(), org)
            assert r.total_time == pytest.approx(
                r.serial_time + r.parallel_time + r.offload_time
            )

    def test_unknown_organization(self, model):
        with pytest.raises(ValueError):
            model.evaluate(app(), "tpu-pod")

    def test_paper_narrative_holds_across_catalog(self, model):
        # The APU organization wins for every Table I application with
        # typical region structure — the Section II-A1 claim.
        for name in ("CoMD", "LULESH", "SNAP", "HPGMG"):
            speedups = model.apu_speedup(
                app(profile=get_application(name))
            )
            assert speedups["cpu-only"] > 1.0, name
            assert speedups["discrete"] >= 1.0, name
