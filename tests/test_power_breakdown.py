"""Node power roll-up and external memory configurations."""

import numpy as np
import pytest

from repro.perfmodel.roofline import evaluate_kernel
from repro.power.breakdown import (
    ExternalMemoryConfig,
    external_memory_power,
    node_power,
)
from repro.power.components import PowerParams
from repro.workloads.catalog import get_application


class TestExternalMemoryConfig:
    def test_dram_only_capacity(self):
        cfg = ExternalMemoryConfig.dram_only(1.0)
        assert cfg.n_dram_modules == 16
        assert cfg.n_nvm_modules == 0
        assert cfg.capacity_bytes == pytest.approx(1.024e12, rel=0.05)

    def test_hybrid_preserves_capacity(self):
        dram = ExternalMemoryConfig.dram_only(1.0)
        hybrid = ExternalMemoryConfig.hybrid(1.0)
        assert hybrid.capacity_bytes == pytest.approx(
            dram.capacity_bytes, rel=0.05
        )

    def test_hybrid_uses_fewer_modules_and_links(self):
        dram = ExternalMemoryConfig.dram_only(1.0)
        hybrid = ExternalMemoryConfig.hybrid(1.0)
        assert hybrid.n_links < dram.n_links

    def test_hybrid_nvm_share_is_half(self):
        hybrid = ExternalMemoryConfig.hybrid(1.0)
        assert hybrid.nvm_capacity_share == pytest.approx(0.5, abs=0.05)

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            ExternalMemoryConfig(n_dram_modules=0, n_nvm_modules=0)


class TestExternalMemoryPower:
    def test_dram_only_static_matches_paper(self):
        # Fig. 9: ~27 W DRAM static + ~10 W SerDes background.
        profile = get_application("CoMD")
        params = PowerParams()
        cfg = ExternalMemoryConfig.dram_only()
        mem_s, _, ser_s, _ = external_memory_power(profile, 0.0, cfg, params)
        assert float(mem_s) == pytest.approx(27.0, abs=3.0)
        assert float(ser_s) == pytest.approx(10.0, abs=1.5)

    def test_hybrid_halves_static_power(self):
        # Fig. 9 Finding 2.
        profile = get_application("CoMD")
        params = PowerParams()
        d = ExternalMemoryConfig.dram_only()
        h = ExternalMemoryConfig.hybrid()
        d_s = sum(
            float(x)
            for x in external_memory_power(profile, 0.0, d, params)[::2]
        )
        h_s = sum(
            float(x)
            for x in external_memory_power(profile, 0.0, h, params)[::2]
        )
        assert h_s == pytest.approx(d_s / 2.0, rel=0.25)

    def test_nvm_dynamic_energy_exceeds_dram(self):
        profile = get_application("SNAP")
        params = PowerParams()
        rate = 0.3e12
        _, d_dyn, _, _ = external_memory_power(
            profile, rate, ExternalMemoryConfig.dram_only(), params
        )
        _, h_dyn, _, _ = external_memory_power(
            profile, rate, ExternalMemoryConfig.hybrid(), params
        )
        assert float(h_dyn) > float(d_dyn) * 1.5

    def test_write_heavy_traffic_costs_more_on_nvm(self):
        params = PowerParams()
        hybrid = ExternalMemoryConfig.hybrid()
        reader = get_application("XSBench").with_overrides(write_fraction=0.05)
        writer = reader.with_overrides(write_fraction=0.6)
        _, r_dyn, _, _ = external_memory_power(reader, 1e11, hybrid, params)
        _, w_dyn, _, _ = external_memory_power(writer, 1e11, hybrid, params)
        assert float(w_dyn) > float(r_dyn)


class TestNodePower:
    def _breakdown(self, app="CoMD", ext_fraction=0.5, **kwargs):
        profile = get_application(app)
        metrics = evaluate_kernel(
            profile, 320, 1e9, 3e12, ext_fraction=ext_fraction
        )
        return node_power(profile, metrics, 320, 1e9, 3e12, **kwargs)

    def test_total_is_sum_of_parts(self):
        b = self._breakdown()
        parts = (
            b.cu_dynamic + b.cu_static + b.cpu + b.noc_dynamic
            + b.noc_static + b.dram3d_dynamic + b.dram3d_static
            + b.ext_memory_dynamic + b.ext_memory_static
            + b.serdes_dynamic + b.serdes_static
        )
        assert float(b.total) == pytest.approx(float(parts))

    def test_ehp_plus_external_equals_total(self):
        b = self._breakdown()
        assert float(b.ehp_package + b.external) == pytest.approx(
            float(b.total)
        )

    def test_fig9_categories_cover_total(self):
        b = self._breakdown()
        cats = b.fig9_categories()
        assert sum(float(v) for v in cats.values()) == pytest.approx(
            float(b.total)
        )
        assert set(cats) == {
            "SerDes (S)", "External memory (S)", "SerDes (D)",
            "External memory (D)", "CUs (D)", "Other",
        }

    def test_no_external_traffic_means_no_external_dynamic(self):
        b = self._breakdown(ext_fraction=0.0)
        assert float(b.ext_memory_dynamic) == 0.0
        assert float(b.serdes_dynamic) == 0.0

    def test_all_components_nonnegative(self):
        b = self._breakdown()
        for cats in (b.fig9_categories(),):
            for name, value in cats.items():
                assert float(value) >= 0.0, name

    def test_map_components(self):
        b = self._breakdown()
        doubled = b.map_components(lambda a: a * 2.0)
        assert float(doubled.total) == pytest.approx(2 * float(b.total))

    def test_vectorized_over_configs(self):
        profile = get_application("CoMD")
        cus = np.array([192.0, 320.0])
        metrics = evaluate_kernel(profile, cus, 1e9, 3e12)
        b = node_power(profile, metrics, cus, 1e9, 3e12)
        assert b.total.shape == (2,)
        assert float(b.total[1]) > float(b.total[0])
