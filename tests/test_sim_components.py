"""Cache simulator and CU/wavefront model."""

import numpy as np
import pytest

from repro.sim.cache_sim import CacheLevel, CacheSim
from repro.sim.gpu_core import ComputeUnit, Wavefront


class TestCacheLevel:
    def test_cold_miss_then_hit(self):
        c = CacheLevel("L1", 64 * 1024)
        assert not c.access(0)
        assert c.access(0)

    def test_same_line_shares_entry(self):
        c = CacheLevel("L1", 64 * 1024, line_bytes=64)
        c.access(0)
        assert c.access(63)
        assert not c.access(64)

    def test_lru_within_set(self):
        # 2 ways, 1 set.
        c = CacheLevel("tiny", 128, line_bytes=64, associativity=2)
        c.access(0)
        c.access(64)
        c.access(0)      # refresh line 0
        c.access(128)    # evicts line 64 (LRU)
        assert c.access(0)
        assert not c.access(64)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 64, line_bytes=64, associativity=2)

    def test_flush_keeps_stats(self):
        c = CacheLevel("L1", 64 * 1024)
        c.access(0)
        c.flush()
        assert not c.access(0)
        assert c.stats.misses == 2


class TestCacheSim:
    def test_hierarchy_promotion(self):
        sim = CacheSim([
            CacheLevel("L1", 4096, associativity=4),
            CacheLevel("L2", 64 * 1024, associativity=8),
        ])
        assert sim.access(0) == 2  # DRAM on cold miss
        assert sim.access(0) == 0  # now in L1

    def test_l2_catches_l1_eviction(self):
        sim = CacheSim([
            CacheLevel("L1", 128, line_bytes=64, associativity=2),
            CacheLevel("L2", 64 * 1024, associativity=8),
        ])
        for line in range(4):
            sim.access(line * 64)
        # Line 0 evicted from the tiny L1 but still resident in L2.
        assert sim.access(0) == 1

    def test_run_trace_reports(self):
        sim = CacheSim.ehp_default(n_cus=32)
        rng = np.random.default_rng(0)
        out = sim.run_trace(rng.integers(0, 1 << 20, size=3000) * 64)
        assert set(out) == {"L1", "LLC", "dram_fraction"}
        assert 0.0 <= out["dram_fraction"] <= 1.0

    def test_small_working_set_hits(self):
        sim = CacheSim.ehp_default()
        addrs = np.tile(np.arange(64) * 64, 50)
        out = sim.run_trace(addrs)
        assert out["dram_fraction"] < 0.05

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheSim([])


class TestComputeUnit:
    def test_wavefront_pool_limit(self):
        cu = ComputeUnit(0, 64e9, max_wavefronts=1)
        cu.add_wavefront(Wavefront(0, 10, 100.0))
        with pytest.raises(RuntimeError):
            cu.add_wavefront(Wavefront(1, 10, 100.0))

    def test_duplicate_id_rejected(self):
        cu = ComputeUnit(0, 64e9)
        cu.add_wavefront(Wavefront(0, 10, 100.0))
        with pytest.raises(ValueError):
            cu.add_wavefront(Wavefront(0, 10, 100.0))

    def test_burst_duration(self):
        cu = ComputeUnit(0, 64e9)
        wf = Wavefront(0, 1, 640.0)
        assert cu.burst_duration(wf) == pytest.approx(1e-8)

    def test_busy_time_accounting(self):
        cu = ComputeUnit(0, 64e9)
        wf = Wavefront(0, 1, 100.0)
        cu.add_wavefront(wf)
        cu.start_compute(wf, 0.0)
        cu.end_compute(wf, 2.0)
        assert cu.busy_time == pytest.approx(2.0)
        assert cu.utilization(4.0) == pytest.approx(0.5)

    def test_overlapping_wavefronts_counted_once(self):
        cu = ComputeUnit(0, 64e9)
        a, b = Wavefront(0, 1, 1.0), Wavefront(1, 1, 1.0)
        cu.add_wavefront(a)
        cu.add_wavefront(b)
        cu.start_compute(a, 0.0)
        cu.start_compute(b, 1.0)
        cu.end_compute(a, 2.0)
        cu.end_compute(b, 3.0)
        assert cu.busy_time == pytest.approx(3.0)

    def test_double_start_rejected(self):
        cu = ComputeUnit(0, 64e9)
        wf = Wavefront(0, 1, 1.0)
        cu.add_wavefront(wf)
        cu.start_compute(wf, 0.0)
        with pytest.raises(RuntimeError):
            cu.start_compute(wf, 0.5)

    def test_active_wavefronts(self):
        cu = ComputeUnit(0, 64e9)
        wf = Wavefront(0, 1, 1.0)
        cu.add_wavefront(wf)
        assert cu.active_wavefronts == 1
        wf.state = "done"
        assert cu.active_wavefronts == 0
