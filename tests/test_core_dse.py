"""Design-space exploration."""

import numpy as np
import pytest

from repro.core.config import PAPER_BEST_MEAN, DesignSpace
from repro.core.dse import best_config_for, best_mean_config, explore
from repro.core.node import NodeModel
from repro.workloads.catalog import APPLICATIONS, get_application


@pytest.fixture(scope="module")
def full_result():
    return explore(list(APPLICATIONS.values()))


class TestExplore:
    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            explore([])

    def test_duplicate_names_rejected(self):
        p = get_application("CoMD")
        with pytest.raises(ValueError):
            explore([p, p])

    def test_every_app_has_feasible_points(self, full_result):
        for name, mask in full_result.feasible.items():
            assert mask.any(), name

    def test_best_mean_feasible_for_all(self, full_result):
        assert full_result.all_feasible_mask()[full_result.best_mean_index]

    def test_per_app_best_at_least_best_mean(self, full_result):
        for name in full_result.performance:
            perf = full_result.performance[name]
            assert (
                perf[full_result.per_app_best_index[name]]
                >= perf[full_result.best_mean_index] - 1e-9
            )

    def test_power_respects_budget_at_optima(self, full_result):
        budget = full_result.space.power_budget
        for name in full_result.node_power:
            i = full_result.per_app_best_index[name]
            assert float(full_result.node_power[name][i]) <= budget

    def test_mean_performance_is_geomean(self, full_result):
        mean = full_result.mean_performance()
        stacked = np.stack(
            [full_result.performance[n] for n in full_result.performance]
        )
        manual = np.exp(np.log(stacked).mean(axis=0))
        np.testing.assert_allclose(mean, manual)

    def test_benefit_over_mean_formula(self, full_result):
        name = "CoMD"
        perf = full_result.performance[name]
        expected = (
            perf[full_result.per_app_best_index[name]]
            / perf[full_result.best_mean_index]
            - 1.0
        ) * 100.0
        assert full_result.benefit_over_mean(name) == pytest.approx(
            float(expected)
        )


class TestCalibratedOptima:
    """Each application's model argmax reproduces its Table II config."""

    @pytest.mark.parametrize(
        "app,expected",
        [
            ("LULESH", (256, 1100e6, 4e12)),
            ("MiniAMR", (256, 1200e6, 4e12)),
            ("XSBench", (224, 1400e6, 5e12)),
            ("SNAP", (384, 700e6, 5e12)),
            ("CoMD", (192, 1500e6, 6e12)),
            ("CoMD-LJ", (224, 1300e6, 6e12)),
            ("HPGMG", (352, 900e6, 7e12)),
            ("MaxFlops", (384, 925e6, 1e12)),
        ],
    )
    def test_table2_configs(self, full_result, app, expected):
        cfg = full_result.best_config(app)
        assert (cfg.n_cus, cfg.gpu_freq, cfg.bandwidth) == expected

    def test_best_mean_in_paper_neighbourhood(self, full_result):
        # The model's joint argmax should land near the paper's
        # 320/1000/3: hundreds of GHz.CU of compute and 3-5 TB/s.
        cfg = full_result.best_mean_config
        assert 3e12 <= cfg.bandwidth <= 5e12
        assert 250e9 <= cfg.n_cus * cfg.gpu_freq <= 340e9

    def test_paper_best_mean_close_to_model_argmax(self, full_result):
        mean = full_result.mean_performance()
        space = full_result.space
        i_cu = list(space.cu_counts).index(PAPER_BEST_MEAN.n_cus)
        i_f = list(space.frequencies).index(PAPER_BEST_MEAN.gpu_freq)
        i_b = list(space.bandwidths).index(PAPER_BEST_MEAN.bandwidth)
        paper_index = (
            i_cu * len(space.frequencies) + i_f
        ) * len(space.bandwidths) + i_b
        ratio = mean[full_result.best_mean_index] / mean[paper_index]
        assert ratio < 1.25  # documented deviation in EXPERIMENTS.md


class TestConvenienceWrappers:
    def test_best_config_for_single_app(self):
        cfg = best_config_for(get_application("MaxFlops"))
        assert (cfg.n_cus, cfg.gpu_freq, cfg.bandwidth) == (
            384, 925e6, 1e12
        )

    def test_best_mean_config_runs(self):
        cfg = best_mean_config(
            [get_application("CoMD"), get_application("MaxFlops")]
        )
        assert cfg.n_cus in DesignSpace().cu_counts


class TestSmallSpace:
    def test_explore_on_coarse_grid(self, small_space):
        result = explore(
            [get_application("CoMD")], small_space, NodeModel()
        )
        assert 0 <= result.best_mean_index < small_space.size

    def test_infeasible_budget_raises(self):
        space = DesignSpace(power_budget=1.0)
        with pytest.raises(RuntimeError):
            explore([get_application("CoMD")], space)
