"""Oracle-equivalence harness for the memsys array engines.

Every test drives the same input through ``engine="array"`` and the
retained scalar ``engine="event"`` oracle and requires identical
results: exact for integral counters, placements, and LRU orders,
``rtol=1e-9`` for the few float outputs (hit rates, fractions).
"""

from __future__ import annotations

from dataclasses import astuple

import numpy as np
import pytest

from repro.memsys.dramcache import DramCache
from repro.memsys.dramcache import ENGINES as DRAM_ENGINES
from repro.memsys.manager import (
    ENGINES as MANAGER_ENGINES,
    FirstTouchPolicy,
    HotnessMigrationPolicy,
    MemoryManager,
)
from repro.memsys.rowbuffer import ENGINES as ROWBUFFER_ENGINES, RowBufferSim

RTOL = 1e-9

# Capacity (bytes), page/row size, associativity grid for the caches.
DRAM_GEOMETRIES = [
    (1 << 20, 256, 1),
    (1 << 20, 1024, 2),
    (4 << 20, 4096, 8),
    (64 << 20, 4096, 16),
]

ROWBUFFER_GEOMETRIES = [
    # (n_banks, row_bytes, interleave)
    (1, 1024, 256),
    (8, 512, 64),
    (128, 1024, 256),
    (16, 4096, 1024),
]


def _random_stream(rng, n, span):
    return rng.integers(0, span, size=n)


def _streams(rng, n=4000):
    """The equivalence stream grid: random spans plus degenerate cases."""
    return {
        "dense": _random_stream(rng, n, 1 << 16),
        "sparse": _random_stream(rng, n, 1 << 30),
        "single-address": np.zeros(n // 4, dtype=np.int64),
        "sequential": np.arange(n, dtype=np.int64) * 64,
        "empty": np.zeros(0, dtype=np.int64),
    }


# ----------------------------------------------------------------------
# RowBufferSim
# ----------------------------------------------------------------------
class TestRowBufferOracle:
    @pytest.mark.parametrize("geometry", ROWBUFFER_GEOMETRIES)
    def test_equivalence_grid(self, geometry):
        n_banks, row_bytes, interleave = geometry
        rng = np.random.default_rng(1234)
        for name, stream in _streams(rng).items():
            a = RowBufferSim(n_banks, row_bytes, interleave, engine="array")
            b = RowBufferSim(n_banks, row_bytes, interleave, engine="event")
            sa = a.run(stream)
            sb = b.run(stream)
            assert astuple(sa) == astuple(sb), name
            assert np.array_equal(a._open_row, b._open_row), name
            assert a._last_bank == b._last_bank, name
            assert sa.hit_rate == pytest.approx(sb.hit_rate, rel=RTOL)

    def test_single_bank_stream(self):
        """All accesses land in one bank: every miss after the first to
        an open row is a bank conflict."""
        a = RowBufferSim(n_banks=1, row_bytes=64, engine="array")
        b = RowBufferSim(n_banks=1, row_bytes=64, engine="event")
        stream = np.array([0, 0, 64, 64, 128, 0], dtype=np.int64)
        assert astuple(a.run(stream)) == astuple(b.run(stream))
        assert a.stats.bank_conflicts == b.stats.bank_conflicts > 0

    def test_all_hits_stream(self):
        sim = RowBufferSim(n_banks=4, row_bytes=1024)
        sim.run(np.zeros(100, dtype=np.int64))
        assert sim.stats.hits == 99
        assert sim.stats.misses == 1

    def test_all_misses_stream(self):
        # Stride of a full row group: every access opens a new row in
        # bank 0.
        sim = RowBufferSim(
            n_banks=4, row_bytes=1024, channel_interleave_bytes=256
        )
        stride = 1024 * 4
        sim.run(np.arange(64, dtype=np.int64) * stride)
        assert sim.stats.hits == 0
        assert sim.stats.misses == 64

    def test_chunked_state_carry(self):
        """Array chunks and scalar replay agree across chunk seams."""
        rng = np.random.default_rng(7)
        stream = _random_stream(rng, 3000, 1 << 22)
        a = RowBufferSim(engine="array")
        b = RowBufferSim(engine="event")
        for chunk in np.array_split(stream, 7):
            a.run(chunk)
        b.run(stream)
        assert astuple(a.stats) == astuple(b.stats)
        assert np.array_equal(a._open_row, b._open_row)

    def test_engine_selection(self):
        with pytest.raises(ValueError):
            RowBufferSim(engine="nope")
        sim = RowBufferSim()
        with pytest.raises(ValueError):
            sim.run(np.zeros(1, dtype=np.int64), engine="nope")
        assert ROWBUFFER_ENGINES == ("array", "event")

    def test_negative_address_rejected(self):
        for engine in ROWBUFFER_ENGINES:
            sim = RowBufferSim(engine=engine)
            with pytest.raises(ValueError):
                sim.run(np.array([-1], dtype=np.int64))


# ----------------------------------------------------------------------
# DramCache
# ----------------------------------------------------------------------
class TestDramCacheOracle:
    @pytest.mark.parametrize("geometry", DRAM_GEOMETRIES)
    def test_equivalence_grid(self, geometry):
        capacity, page, assoc = geometry
        rng = np.random.default_rng(99)
        for name, stream in _streams(rng).items():
            writes = rng.random(len(stream)) < 0.3
            a = DramCache(capacity, page, assoc, engine="array")
            b = DramCache(capacity, page, assoc, engine="event")
            flags = a.run_trace(stream, writes)
            b.run_trace(stream, writes, engine="event")
            assert astuple(a.stats) == astuple(b.stats), name
            assert flags.hits + flags.misses == len(stream)
            # LRU state must match per set, *including order*.
            assert set(a._sets) == set(b._sets), name
            for s, ways in a._sets.items():
                assert list(ways.items()) == list(b._sets[s].items()), name
            assert a.stats.hit_rate == pytest.approx(
                b.stats.hit_rate, rel=RTOL
            )

    def test_hit_flags_match_scalar(self):
        rng = np.random.default_rng(5)
        stream = _random_stream(rng, 2000, 1 << 20)
        writes = rng.random(2000) < 0.5
        a = DramCache(1 << 18, 1024, 4)
        b = DramCache(1 << 18, 1024, 4)
        flags = a.access_many(stream, writes)
        expected = np.array(
            [b.access(int(x), bool(w)) for x, w in zip(stream, writes)],
            dtype=bool,
        )
        assert np.array_equal(flags, expected)

    def test_interleaved_scalar_and_batched(self):
        """The two entry points share LRU state."""
        rng = np.random.default_rng(17)
        a = DramCache(1 << 18, 1024, 4)
        b = DramCache(1 << 18, 1024, 4)
        for _ in range(10):
            chunk = _random_stream(rng, 200, 1 << 20)
            writes = rng.random(200) < 0.3
            a.access_many(chunk, writes)
            for x, w in zip(chunk.tolist(), writes.tolist()):
                b.access(x, w)
            probe = int(chunk[0])
            assert a.access(probe, True) == b.access(probe, True)
        assert astuple(a.stats) == astuple(b.stats)

    def test_all_hits_stream(self):
        cache = DramCache(1 << 20, 4096, 8)
        stream = np.zeros(50, dtype=np.int64)
        cache.run_trace(stream)
        assert cache.stats.hits == 49
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0

    def test_all_misses_stream_with_writebacks(self):
        # Two-way set 0 thrashed by three pages: every access misses
        # and every eviction of a written page writes back.
        page = 1024
        cache = DramCache(2 * page, page, 2)  # a single 2-way set
        assert cache.n_sets == 1
        stream = np.array([0, page, 2 * page] * 10, dtype=np.int64)
        writes = np.ones(len(stream), dtype=bool)
        oracle = DramCache(2 * page, page, 2)
        cache.run_trace(stream, writes)
        oracle.run_trace(stream, writes, engine="event")
        assert astuple(cache.stats) == astuple(oracle.stats)
        assert cache.stats.hits == 0
        assert cache.stats.writebacks == cache.stats.evictions > 0

    def test_empty_stream(self):
        cache = DramCache()
        flags = cache.access_many(np.zeros(0, dtype=np.int64))
        assert flags.size == 0
        assert cache.stats.accesses == 0

    def test_engine_selection(self):
        with pytest.raises(ValueError):
            DramCache(engine="nope")
        cache = DramCache()
        with pytest.raises(ValueError):
            cache.run_trace(np.zeros(1, dtype=np.int64), engine="nope")
        assert DRAM_ENGINES == ("array", "event")

    def test_negative_address_rejected(self):
        cache = DramCache()
        with pytest.raises(ValueError):
            cache.access_many(np.array([-4], dtype=np.int64))

    def test_writes_length_mismatch_rejected(self):
        cache = DramCache()
        with pytest.raises(ValueError):
            cache.access_many(
                np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool)
            )

    def test_occupancy_bounded(self):
        rng = np.random.default_rng(3)
        cache = DramCache(1 << 16, 1024, 2)
        cache.access_many(_random_stream(rng, 5000, 1 << 26))
        assert cache.resident_pages <= cache.n_sets * cache.associativity
        for ways in cache._sets.values():
            assert len(ways) <= cache.associativity


# ----------------------------------------------------------------------
# MemoryManager
# ----------------------------------------------------------------------
def _manager_pair(policy_factory, capacity_pages=64, page=4096, limit=None):
    a = MemoryManager(
        capacity_pages * page, policy_factory(limit), page, engine="array"
    )
    b = MemoryManager(
        capacity_pages * page, policy_factory(limit), page, engine="event"
    )
    return a, b


def _hotness(limit):
    return HotnessMigrationPolicy(limit)


def _first_touch(_limit):
    return FirstTouchPolicy()


class TestManagerOracle:
    @pytest.mark.parametrize("factory", [_hotness, _first_touch])
    @pytest.mark.parametrize("limit", [None, 0, 7])
    def test_equivalence_epochs(self, factory, limit):
        rng = np.random.default_rng(21)
        a, b = _manager_pair(factory, capacity_pages=48, limit=limit)
        for _ in range(5):
            epoch = _random_stream(rng, 1500, 1 << 20)
            fa = a.epoch_array(epoch)
            fb = b.epoch(epoch)
            assert fa == pytest.approx(fb, rel=RTOL)
        assert a.placement == b.placement
        assert a.total_migrated == b.total_migrated
        assert a.resident_pages == b.resident_pages

    def test_run_batch_matches_event(self):
        rng = np.random.default_rng(33)
        epochs = [_random_stream(rng, 800, 1 << 18) for _ in range(4)]
        a, b = _manager_pair(_hotness, capacity_pages=32)
        fa = a.run_batch(epochs)
        fb = b.run_batch(epochs, engine="event")
        assert fa == pytest.approx(fb, rel=RTOL)
        assert a.placement == b.placement

    def test_interleaved_engines_share_state(self):
        rng = np.random.default_rng(55)
        a, b = _manager_pair(_hotness, capacity_pages=16)
        for i in range(6):
            epoch = _random_stream(rng, 500, 1 << 16)
            if i % 2:
                fa = a.epoch(epoch)  # scalar on the array manager
            else:
                fa = a.epoch_array(epoch)
            fb = b.epoch(epoch)
            assert fa == pytest.approx(fb, rel=RTOL)
        assert a.placement == b.placement
        assert a.total_migrated == b.total_migrated

    def test_empty_epoch(self):
        a, b = _manager_pair(_hotness)
        assert a.epoch_array(np.zeros(0, dtype=np.int64)) == 1.0
        assert b.epoch(np.zeros(0, dtype=np.int64)) == 1.0

    def test_occupancy_never_exceeds_capacity(self):
        rng = np.random.default_rng(8)
        manager = MemoryManager(8 * 4096, HotnessMigrationPolicy(), 4096)
        for _ in range(5):
            manager.epoch_array(_random_stream(rng, 400, 1 << 16))
            assert manager.resident_pages <= manager.capacity_pages

    def test_unknown_policy_falls_back_to_scalar(self):
        class WeirdPolicy(HotnessMigrationPolicy):
            """Subclass: the exact-type check must not claim it."""

        rng = np.random.default_rng(2)
        epoch = _random_stream(rng, 300, 1 << 14)
        a = MemoryManager(16 * 4096, WeirdPolicy(), 4096, engine="array")
        b = MemoryManager(16 * 4096, WeirdPolicy(), 4096, engine="event")
        assert a.epoch_array(epoch) == b.epoch(epoch)
        assert a.placement == b.placement

    def test_engine_selection(self):
        with pytest.raises(ValueError):
            MemoryManager(4096, FirstTouchPolicy(), engine="nope")
        manager = MemoryManager(4096, FirstTouchPolicy())
        with pytest.raises(ValueError):
            manager.run_batch([], engine="nope")
        assert MANAGER_ENGINES == ("array", "event")
