"""Oracle equivalence of the array-engine APU simulator.

The event-driven implementation (``engine="event"``) is the readable
specification; the array engine (``engine="array"``, the default) must
reproduce its results on every shared field at tight tolerance. The
array engine is in fact a bit-exact replay of the event schedule, so
these assertions use rtol=1e-9 as the contract while the implementation
delivers equality.
"""

import numpy as np
import pytest

from repro.sim.apu_sim import ENGINES, ApuSimConfig, ApuSimulator
from repro.workloads.catalog import application_names, get_application
from repro.workloads.traces import MemoryTrace, TraceGenerator

RTOL = 1e-9

# The configuration grid the issue calls out: the default, a single-CU
# machine (no cross-CU concurrency), a chiplet organization with extra
# hop latency, a narrow-DRAM machine (deep service queue), and a deep
# wavefront pool (more slot contention per CU).
CONFIGS = {
    "default": ApuSimConfig(),
    "one_cu": ApuSimConfig(n_cus=1),
    "one_cu_one_wf": ApuSimConfig(n_cus=1, wavefronts_per_cu=1),
    "chiplet": ApuSimConfig(chiplet_extra_latency=25e-9),
    "narrow_dram": ApuSimConfig(dram_bandwidth=10e9),
    "deep_pool": ApuSimConfig(n_cus=4, wavefronts_per_cu=32),
}


def make_trace(app: str, n: int, seed: int = 42) -> MemoryTrace:
    return TraceGenerator(get_application(app), seed=seed).generate(n)


def assert_equivalent(array, event):
    assert array.elapsed == pytest.approx(event.elapsed, rel=RTOL)
    assert array.total_flops == pytest.approx(event.total_flops, rel=RTOL)
    assert array.total_accesses == event.total_accesses
    assert array.dram_accesses == event.dram_accesses
    assert array.cu_utilization == pytest.approx(
        event.cu_utilization, rel=RTOL
    )
    assert array.mean_memory_latency == pytest.approx(
        event.mean_memory_latency, rel=RTOL
    )
    assert set(array.hit_rates) == set(event.hit_rates)
    for level, rate in event.hit_rates.items():
        assert array.hit_rates[level] == pytest.approx(rate, rel=RTOL)


class TestOracleEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_config_grid(self, config_name):
        config = CONFIGS[config_name]
        trace = make_trace("CoMD", 6000)
        sim = ApuSimulator(config)
        assert_equivalent(sim.run(trace), sim.run(trace, engine="event"))

    @pytest.mark.parametrize("app", ["MaxFlops", "SNAP", "XSBench"])
    def test_application_mix(self, app):
        # Compute-bound, memory-bound and random-access traces exercise
        # different branches (slot-bound vs DRAM-queue-bound schedules).
        trace = make_trace(app, 5000)
        sim = ApuSimulator()
        assert_equivalent(sim.run(trace), sim.run(trace, engine="event"))

    @pytest.mark.parametrize("n", [1, 2, 3, 7])
    def test_tiny_traces(self, n):
        trace = make_trace("CoMD", n)
        sim = ApuSimulator()
        assert_equivalent(sim.run(trace), sim.run(trace, engine="event"))

    def test_trace_shorter_than_wavefront_pool(self):
        # Fewer accesses than n_cus * wavefronts_per_cu: most wavefronts
        # get an empty partition and must be skipped identically.
        config = ApuSimConfig(n_cus=16, wavefronts_per_cu=8)
        trace = make_trace("LULESH", 100)
        assert len(trace) < config.n_cus * config.wavefronts_per_cu
        sim = ApuSimulator(config)
        assert_equivalent(sim.run(trace), sim.run(trace, engine="event"))

    def test_partition_remainder(self):
        # A trace length that is not a multiple of the wavefront count
        # leaves some partitions one access longer than others.
        trace = make_trace("CoMD", 16 * 8 * 3 + 5)
        sim = ApuSimulator()
        assert_equivalent(sim.run(trace), sim.run(trace, engine="event"))

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_seed_sweep(self, seed):
        trace = make_trace("MiniAMR", 4000, seed=seed)
        sim = ApuSimulator()
        assert_equivalent(sim.run(trace), sim.run(trace, engine="event"))

    def test_bit_identical_on_default_trace(self):
        # Stronger than the rtol contract: the array engine replays the
        # event schedule exactly, so scalar fields match bit for bit.
        trace = make_trace("CoMD", 6000)
        sim = ApuSimulator()
        a = sim.run(trace)
        e = sim.run(trace, engine="event")
        assert (a.elapsed, a.total_flops, a.mean_memory_latency) == (
            e.elapsed, e.total_flops, e.mean_memory_latency
        )
        assert a.hit_rates == e.hit_rates


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("array", "event")
        assert ApuSimulator().engine == "array"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ApuSimulator(engine="fast")
        with pytest.raises(ValueError, match="unknown engine"):
            ApuSimulator().run(make_trace("CoMD", 10), engine="oracle")

    def test_per_call_override(self):
        trace = make_trace("CoMD", 2000)
        event_default = ApuSimulator(engine="event")
        assert_equivalent(event_default.run(trace, engine="array"),
                          event_default.run(trace))


class TestRunBatch:
    def test_matches_individual_runs(self):
        sim = ApuSimulator()
        traces = [make_trace(app, 2000) for app in ("CoMD", "SNAP")]
        batched = sim.run_batch(traces)
        for trace, res in zip(traces, batched):
            assert_equivalent(res, sim.run(trace, engine="event"))

    def test_cold_caches_per_trace(self):
        # Running the same trace twice in one batch must give identical
        # results: no cache state may leak between batch entries.
        sim = ApuSimulator()
        trace = make_trace("XSBench", 3000)
        a, b = sim.run_batch([trace, trace])
        assert a == b

    def test_event_engine_batch(self):
        sim = ApuSimulator(engine="event")
        trace = make_trace("CoMD", 1500)
        (res,) = sim.run_batch([trace])
        assert_equivalent(sim.run(trace, engine="array"), res)

    def test_empty_trace_rejected(self):
        empty = MemoryTrace(
            addresses=np.array([], dtype=np.int64),
            is_write=np.array([], dtype=bool),
            flops_between=np.array([]),
            footprint_bytes=1024.0,
        )
        with pytest.raises(ValueError, match="empty trace"):
            ApuSimulator().run_batch([make_trace("CoMD", 10), empty])


def test_every_application_equivalent_quick():
    # One small trace per Table I application, both engines.
    sim = ApuSimulator(ApuSimConfig(n_cus=4, wavefronts_per_cu=4))
    for app in application_names():
        trace = make_trace(app, 1200)
        assert_equivalent(sim.run(trace), sim.run(trace, engine="event"))
