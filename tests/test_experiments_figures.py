"""Shape assertions for the figure reproductions (Figs. 4-14).

Each test checks the property the paper's figure demonstrates — who
wins, approximate factors, where knees fall — not absolute values.
"""

import numpy as np
import pytest

from repro.experiments.chiplet_traffic import run_fig7
from repro.experiments.exascale_target import run_fig14
from repro.experiments.external_memory import run_fig9
from repro.experiments.kernel_sweeps import run_fig4, run_fig5, run_fig6
from repro.experiments.miss_sensitivity import run_fig8
from repro.experiments.power_opts import run_fig12, run_fig13
from repro.experiments.thermal_eval import run_fig10, run_fig11


@pytest.fixture(scope="module")
def fig4():
    return run_fig4()


@pytest.fixture(scope="module")
def fig5():
    return run_fig5()


@pytest.fixture(scope="module")
def fig6():
    return run_fig6()


@pytest.fixture(scope="module")
def fig9():
    return run_fig9()


@pytest.fixture(scope="module")
def fig12():
    return run_fig12()


class TestFig4MaxFlops:
    def test_bandwidth_curves_coincide(self, fig4):
        # "corresponding CU-frequency points across different bandwidth
        # curves have roughly the same performance level"
        perf = fig4.data["a"]["perf"]
        lo = np.array(perf["1TBps"])
        hi = np.array(perf["7TBps"])
        np.testing.assert_allclose(lo, hi, rtol=0.03)

    def test_performance_linear_in_frequency(self, fig4):
        perf = np.array(fig4.data["a"]["perf"]["3TBps"])
        freqs = np.arange(700, 1501, 100)
        ratio = perf / freqs
        assert ratio.std() / ratio.mean() < 0.03

    def test_performance_increases_with_cus(self, fig4):
        perf = np.array(fig4.data["b"]["perf"]["3TBps"])
        assert np.all(np.diff(perf) > 0)

    def test_normalized_to_best_mean(self, fig4):
        # 320 CUs at 1000 MHz on the 3 TB/s curve is the reference = 1.0.
        perf = fig4.data["b"]["perf"]["3TBps"]
        cus = list(range(192, 385, 32))
        assert perf[cus.index(320)] == pytest.approx(1.0, rel=1e-6)


class TestFig5CoMD:
    def test_balanced_kernel_gains_from_bandwidth(self, fig5):
        perf = fig5.data["a"]["perf"]
        assert perf["6TBps"][-1] > perf["1TBps"][-1] * 1.1

    def test_plateau_beyond_knee(self, fig5):
        # At low bandwidth the frequency curve flattens: the last step
        # gains much less than the first.
        perf = np.array(fig5.data["a"]["perf"]["1TBps"])
        first_gain = perf[1] / perf[0]
        last_gain = perf[-1] / perf[-2]
        assert last_gain < first_gain

    def test_higher_bw_curves_dominate(self, fig5):
        perf = fig5.data["a"]["perf"]
        for i in range(len(perf["1TBps"])):
            assert perf["6TBps"][i] >= perf["1TBps"][i] - 1e-9


class TestFig6Lulesh:
    def test_memory_kernel_bandwidth_sensitivity(self, fig6):
        perf = fig6.data["b"]["perf"]
        assert perf["7TBps"][-1] > perf["1TBps"][-1] * 1.3

    def test_cu_overprovisioning_declines(self, fig6):
        # Fig. 6(b): past the knee, adding CUs hurts at fixed bandwidth.
        perf = np.array(fig6.data["b"]["perf"]["3TBps"])
        peak = perf.max()
        assert perf[-1] < peak * 0.999

    def test_rise_before_fall(self, fig6):
        perf = np.array(fig6.data["b"]["perf"]["4TBps"])
        assert perf.argmax() > 0


class TestFig7Chiplet:
    def test_remote_traffic_dominates(self):
        result = run_fig7()
        for app, row in result.data.items():
            assert 55.0 <= row["out_of_chiplet_pct"] <= 95.0, app

    def test_performance_impact_small(self):
        # Finding 2: largest degradation 13%.
        result = run_fig7()
        for app, row in result.data.items():
            assert row["perf_vs_monolithic_pct"] >= 87.0, app


class TestFig8MissRates:
    def test_maxflops_insensitive(self):
        result = run_fig8()
        assert min(result.data["MaxFlops"]) > 95.0

    def test_other_apps_degrade(self):
        result = run_fig8()
        for app, series in result.data.items():
            if app == "MaxFlops":
                continue
            assert series[-1] < 93.0, app  # paper: 7% to 75% degradation

    def test_monotone_nonincreasing(self):
        result = run_fig8()
        for app, series in result.data.items():
            assert all(
                a >= b - 1e-9 for a, b in zip(series, series[1:])
            ), app


class TestFig9ExternalMemory:
    def test_external_power_range(self, fig9):
        # Finding 1: external power (memory + SerDes) spans ~40-70 W for
        # the DRAM-only configuration.
        for app, cats in fig9.data["3D DRAM only"].items():
            ext = (
                cats["SerDes (S)"] + cats["External memory (S)"]
                + cats["SerDes (D)"] + cats["External memory (D)"]
            )
            if app == "MaxFlops":
                continue  # barely touches external memory
            assert 35.0 <= ext <= 80.0, app

    def test_dram_static_dominated(self, fig9):
        # 27 W DRAM static + 10 W SerDes background.
        cats = fig9.data["3D DRAM only"]["CoMD"]
        assert cats["External memory (S)"] == pytest.approx(27.0, abs=3.0)
        assert cats["SerDes (S)"] == pytest.approx(10.0, abs=1.5)

    def test_hybrid_halves_static(self, fig9):
        for app in fig9.data["3D DRAM only"]:
            d = fig9.data["3D DRAM only"][app]
            h = fig9.data["3D DRAM + NVM"][app]
            d_static = d["External memory (S)"] + d["SerDes (S)"]
            h_static = h["External memory (S)"] + h["SerDes (S)"]
            assert h_static < 0.65 * d_static, app

    def test_nvm_raises_total_for_memory_heavy_apps(self, fig9):
        # Finding 2: up to ~2x for applications with heavy external
        # traffic; reductions only for the compute-lean ones.
        heavy = ("XSBench", "SNAP", "HPGMG", "LULESH", "MiniAMR")
        for app in heavy:
            d = fig9.data["3D DRAM only"][app]["Total"]
            h = fig9.data["3D DRAM + NVM"][app]["Total"]
            assert h > d, app

    def test_nvm_saves_for_compute_lean_apps(self, fig9):
        # CoMD/CoMD-LJ/MaxFlops benefit from the static-power cut.
        for app in ("MaxFlops",):
            d = fig9.data["3D DRAM only"][app]["Total"]
            h = fig9.data["3D DRAM + NVM"][app]["Total"]
            assert h < d, app


class TestFig10Fig11Thermal:
    def test_all_below_dram_limit(self):
        result = run_fig10()
        for app, temps in result.data.items():
            assert temps["best_mean_c"] < 85.0, app
            assert temps["best_app_c"] < 85.0, app

    def test_temps_above_ambient(self):
        result = run_fig10()
        for temps in result.data.values():
            assert temps["best_mean_c"] > 50.0

    def test_fig11_heatmap_gpu_hotspots(self):
        result = run_fig11()
        heat = result.data["best-mean"]["heatmap"]
        nx = heat.shape[1]
        gpu_side = heat[:, : nx // 6].mean()
        cpu_centre = heat[:, 5 * nx // 12: 7 * nx // 12].mean()
        assert gpu_side > cpu_centre

    def test_fig11_reports_both_configs(self):
        result = run_fig11()
        assert set(result.data) == {"best-mean", "best-per-app"}

    def test_shared_model_matches_private_model(self):
        # The drivers default to the process-wide shared ThermalModel
        # (one factorization, batched back-substitution); a fresh
        # per-driver model must render the identical Fig. 10 table.
        from repro.experiments.thermal_eval import shared_thermal_model
        from repro.thermal.analysis import ThermalModel

        shared = run_fig10(thermal=shared_thermal_model())
        private = run_fig10(thermal=ThermalModel())
        assert shared.rendered == private.rendered
        assert shared.data == private.data

    def test_shared_model_is_singleton(self):
        from repro.experiments.thermal_eval import shared_thermal_model

        model = shared_thermal_model()
        assert shared_thermal_model() is model
        # After one driver run the factorization is warm for the next.
        run_fig10()
        assert model.grid.factorization_cached


class TestFig12Fig13Optimizations:
    def test_paper_average_savings(self, fig12):
        avgs = {
            key: np.mean([fig12.data[a][key] for a in fig12.data])
            for key in ("NTC", "Async. CUs", "Async. routers",
                        "Low-power links", "Compression", "All")
        }
        # Paper averages: 14 / 4.3 / 3.0 / 1.6 / 1.7.
        assert avgs["NTC"] == pytest.approx(14.0, abs=4.0)
        assert avgs["Async. CUs"] == pytest.approx(4.3, abs=1.5)
        assert avgs["Async. routers"] == pytest.approx(3.0, abs=1.2)
        assert avgs["Low-power links"] == pytest.approx(1.6, abs=0.8)
        assert avgs["Compression"] == pytest.approx(1.7, abs=0.8)

    def test_ntc_is_largest_lever(self, fig12):
        for app, row in fig12.data.items():
            singles = {k: v for k, v in row.items() if k != "All"}
            assert max(singles, key=singles.get) == "NTC", app

    def test_all_is_superadditive_floor(self, fig12):
        for app, row in fig12.data.items():
            assert row["All"] >= max(
                v for k, v in row.items() if k != "All"
            ), app

    def test_fig13_efficiency_improves_for_all_apps(self):
        result = run_fig13()
        for app, gain in result.data.items():
            assert gain > 0.0, app

    def test_fig13_trend_differs_from_fig12(self, fig12):
        # The paper notes the Fig. 13 ordering across kernels is not the
        # Fig. 12 ordering (the best-mean config itself moved).
        fig13 = run_fig13()
        order12 = sorted(fig12.data, key=lambda a: fig12.data[a]["All"])
        order13 = sorted(fig13.data, key=fig13.data.get)
        assert order12 != order13


class TestFig14Exascale:
    def test_endpoint_matches_paper(self):
        result = run_fig14()
        end = result.data[320]
        assert end["exaflops"] == pytest.approx(1.86, rel=0.05)
        assert end["power_mw"] == pytest.approx(11.1, rel=0.10)

    def test_linear_scaling(self):
        result = run_fig14()
        ef = [result.data[n]["exaflops"] for n in (192, 256, 320)]
        assert ef[2] / ef[0] == pytest.approx(320 / 192, rel=0.02)

    def test_stays_within_power_envelope(self):
        result = run_fig14()
        for row in result.data.values():
            assert row["power_mw"] < 20.0


class TestFig8Measured:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.miss_sensitivity import run_fig8_measured

        return run_fig8_measured()

    def test_covers_all_applications_and_capacities(self, result):
        from repro.experiments.miss_sensitivity import CAPACITY_FRACTIONS

        for app, payload in result.data.items():
            assert len(payload["miss_rates"]) == len(CAPACITY_FRACTIONS)
            assert len(payload["relative_pct"]) == len(CAPACITY_FRACTIONS)

    def test_miss_rates_valid_and_monotone_in_capacity(self, result):
        for app, payload in result.data.items():
            rates = payload["miss_rates"]
            assert all(0.0 <= r <= 1.0 for r in rates)
            # More capacity never increases the measured miss rate.
            for earlier, later in zip(rates, rates[1:]):
                assert later <= earlier + 1e-12

    def test_performance_bounded_by_no_miss_case(self, result):
        for app, payload in result.data.items():
            assert all(0.0 < p <= 100.0 + 1e-9
                       for p in payload["relative_pct"])

    def test_engines_agree(self):
        from repro.experiments.miss_sensitivity import measured_miss_rates
        from repro.perf.evalcache import MemsysCache
        from repro.workloads.catalog import get_application

        profile = get_application("CoMD")
        array_rates = measured_miss_rates(
            profile, (0.05, 0.5), cache=MemsysCache()
        )
        event_rates = measured_miss_rates(
            profile, (0.05, 0.5), engine="event", cache=MemsysCache()
        )
        assert array_rates == pytest.approx(event_rates, rel=1e-9)

    def test_repeat_run_hits_memsys_cache(self, result):
        from repro.experiments.miss_sensitivity import run_fig8_measured
        from repro.perf.evalcache import default_memsys_cache

        before = default_memsys_cache().stats()
        run_fig8_measured()
        after = default_memsys_cache().stats()
        assert after.misses == before.misses
        assert after.hits > before.hits


class TestFig9Managed:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.external_memory import run_fig9_managed

        return run_fig9_managed()

    def test_ext_fraction_measured_not_static(self, result):
        for ext_name, apps in result.data.items():
            for app, cats in apps.items():
                assert 0.0 <= cats["Ext frac"] <= 1.0

    def test_totals_positive_and_structured(self, result):
        for ext_name, apps in result.data.items():
            for app, cats in apps.items():
                assert cats["Total"] > 0
                parts = sum(
                    v for k, v in cats.items()
                    if k not in ("Total", "Ext frac")
                )
                assert parts == pytest.approx(cats["Total"], rel=1e-6)

    def test_engines_agree(self):
        from repro.experiments.external_memory import (
            measured_inpackage_fraction,
        )
        from repro.perf.evalcache import MemsysCache
        from repro.workloads.catalog import get_application

        profile = get_application("CoMD")
        fa = measured_inpackage_fraction(profile, cache=MemsysCache())
        fe = measured_inpackage_fraction(
            profile, engine="event", cache=MemsysCache()
        )
        assert fa == pytest.approx(fe, rel=1e-9)
