"""Tests for the observability layer (:mod:`repro.obs`).

Covers the metrics registry (counters, gauges, histograms, snapshot
merge/diff algebra, the disabled fast path), the span tracer with an
injected fake clock (deterministic Chrome trace-event output), the run
manifest, cache-stat ergonomics, the benchmark-JSON compaction helpers,
and the acceptance criterion that ``parallel_explore(metrics=True)``
returns a merged snapshot whose cache totals equal the sum of the
per-worker snapshots.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import Tracer
from repro.perf.evalcache import CacheStats
from repro.util import benchjson


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        snap = reg.snapshot()
        assert snap.counter("a") == 5
        assert snap.counter("missing") == 0

    def test_gauges_last_value_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("temp", 1.5)
        reg.set_gauge("temp", 2.5)
        assert reg.snapshot().gauges["temp"] == 2.5

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        reg.observe("lat", 2e-6)   # second bucket (> 1e-6)
        reg.observe("lat", 0.5)
        reg.observe("lat", 1e9)    # beyond the last bound -> overflow
        hist = reg.snapshot().histograms["lat"]
        assert hist.count == 3
        assert hist.total == pytest.approx(2e-6 + 0.5 + 1e9)
        assert sum(hist.counts) == 3
        assert len(hist.counts) == len(DEFAULT_BUCKETS) + 1
        assert hist.counts[-1] == 1  # the 1e9 overflow observation
        assert hist.mean == pytest.approx(hist.total / 3)

    def test_timed_records_a_duration(self):
        ticks = iter([10.0, 10.25])
        reg = MetricsRegistry(clock=lambda: next(ticks))
        with reg.timed("step_seconds"):
            pass
        hist = reg.snapshot().histograms["step_seconds"]
        assert hist.count == 1
        assert hist.total == pytest.approx(0.25)

    def test_clear_resets_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.1)
        reg.clear()
        snap = reg.snapshot()
        assert not snap.counters and not snap.gauges and not snap.histograms


class TestSnapshotAlgebra:
    def test_merge_sums_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("hits", 2)
        b.inc("hits", 3)
        b.inc("misses", 1)
        a.observe("lat", 0.01)
        b.observe("lat", 0.01)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counter("hits") == 5
        assert merged.counter("misses") == 1
        assert merged.histograms["lat"].count == 2

    def test_merge_gauges_take_the_other_side(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        assert a.snapshot().merge(b.snapshot()).gauges["g"] == 9.0

    def test_diff_isolates_activity_between_snapshots(self):
        reg = MetricsRegistry()
        reg.inc("work", 10)
        before = reg.snapshot()
        reg.inc("work", 7)
        reg.inc("other")
        delta = reg.snapshot().diff(before)
        assert delta.counter("work") == 7
        assert delta.counter("other") == 1

    def test_diff_drops_unchanged_counters(self):
        reg = MetricsRegistry()
        reg.inc("idle", 3)
        before = reg.snapshot()
        reg.inc("busy")
        delta = reg.snapshot().diff(before)
        assert "idle" not in delta.counters

    def test_empty_is_a_merge_identity(self):
        reg = MetricsRegistry()
        reg.inc("x", 4)
        reg.observe("h", 0.2)
        snap = reg.snapshot()
        merged = MetricsSnapshot.empty().merge(snap)
        assert merged.counters == snap.counters
        assert merged.histograms["h"].counts == snap.histograms["h"].counts

    def test_as_dict_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 1.25)
        reg.observe("h", 0.3)
        text = json.dumps(reg.snapshot().as_dict())
        data = json.loads(text)
        assert data["counters"]["c"] == 2
        assert data["histograms"]["h"]["count"] == 1


class TestModuleFastPath:
    def test_disabled_is_a_no_op(self):
        reg = obs_metrics.default_registry()
        before = reg.snapshot()
        with obs_metrics.disabled():
            obs_metrics.inc("should.not.exist", 100)
            obs_metrics.observe("nor.this", 1.0)
            with obs_metrics.timed("nor.this.timer"):
                pass
        after = reg.snapshot().diff(before)
        assert after.counter("should.not.exist") == 0
        assert "nor.this" not in after.histograms

    def test_enabled_flag_restored_after_disabled_block(self):
        assert obs_metrics.metrics_enabled()
        with obs_metrics.disabled():
            assert not obs_metrics.metrics_enabled()
        assert obs_metrics.metrics_enabled()

    def test_module_inc_reaches_default_registry(self):
        before = obs_metrics.snapshot()
        obs_metrics.inc("test.fastpath.counter", 2)
        delta = obs_metrics.snapshot().diff(before)
        assert delta.counter("test.fastpath.counter") == 2


# ----------------------------------------------------------------------
# Tracer (injected fake clock -> fully deterministic output)
# ----------------------------------------------------------------------
class FakeClock:
    """A clock advancing 1 ms per reading, starting at t=1.0 s."""

    def __init__(self, start: float = 1.0, step: float = 1e-3):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_span_ts_and_dur_are_deterministic(self):
        tracer = Tracer(clock=FakeClock())
        # clock readings: t0=1.000, enter=1.001, exit=1.002
        with tracer.span("work"):
            pass
        (event,) = tracer.events
        assert event["ts"] == pytest.approx(1000.0)   # us since t0
        assert event["dur"] == pytest.approx(1000.0)  # 1 ms span
        assert event["ph"] == "X"
        assert event["name"] == "work"

    def test_nested_spans_record_inner_before_outer(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.events]
        assert names == ["inner", "outer"]
        outer = tracer.events[1]
        inner = tracer.events[0]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_span_args_are_recorded(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run", cat="sim", engine="array", accesses=10):
            pass
        (event,) = tracer.events
        assert event["cat"] == "sim"
        # User args survive alongside the stamped span-context ids.
        assert event["args"]["engine"] == "array"
        assert event["args"]["accesses"] == 10
        assert event["args"]["trace_id"] == tracer.root.trace_id
        assert event["args"]["span_id"] == "0.1"
        assert event["args"]["parent_id"] == "0"

    def test_chrome_trace_event_schema(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.instant("marker")
        doc = tracer.to_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert isinstance(event["name"], str)
            assert event["ph"] in {"X", "i"}
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0

    def test_write_and_load_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("persisted"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        data = json.loads(path.read_text())
        assert data["traceEvents"][0]["name"] == "persisted"

    def test_module_span_is_noop_without_active_tracer(self):
        assert obs_trace.active_tracer() is None
        with obs_trace.span("ignored"):
            pass  # must not raise, must not record anywhere

    def test_trace_installs_and_restores_active_tracer(self):
        with obs_trace.trace(clock=FakeClock()) as tracer:
            assert obs_trace.active_tracer() is tracer
            with obs_trace.span("seen"):
                pass
        assert obs_trace.active_tracer() is None
        assert [e["name"] for e in tracer.events] == ["seen"]

    def test_trace_nesting_restores_the_outer_tracer(self):
        with obs_trace.trace(clock=FakeClock()) as outer:
            with obs_trace.trace(clock=FakeClock()) as inner:
                assert obs_trace.active_tracer() is inner
            assert obs_trace.active_tracer() is outer

    def test_extend_appends_foreign_events_verbatim(self):
        # The pool ships worker-side span buffers back to the parent
        # tracer with extend(): events keep their own pid/ts.
        parent = Tracer(clock=FakeClock())
        with parent.span("parent.work"):
            pass
        foreign = [
            {"name": "worker.task", "cat": "pool", "ph": "X",
             "ts": 5.0, "dur": 2.0, "pid": 99999, "tid": 1},
        ]
        parent.extend(foreign)
        assert [e["name"] for e in parent.events] == [
            "parent.work", "worker.task",
        ]
        merged = parent.to_chrome()["traceEvents"]
        assert merged[1]["pid"] == 99999
        assert merged[1]["ts"] == 5.0


# ----------------------------------------------------------------------
# SpanContext: deterministic ids, cross-process parent/child edges
# ----------------------------------------------------------------------
class TestSpanContext:
    def test_root_and_as_args(self):
        root = obs_trace.SpanContext.root("t1")
        assert (root.trace_id, root.span_id, root.parent_id) == (
            "t1", "0", None,
        )
        assert root.as_args() == {"trace_id": "t1", "span_id": "0"}
        child = obs_trace.SpanContext("t1", "0.1", "0")
        assert child.as_args() == {
            "trace_id": "t1", "span_id": "0.1", "parent_id": "0",
        }

    def test_context_is_picklable(self):
        import pickle

        ctx = obs_trace.SpanContext("t1", "0.3.1", "0.3")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_child_ids_are_hierarchical_and_deterministic(self):
        tracer = Tracer(
            clock=FakeClock(), context=obs_trace.SpanContext.root("t1")
        )
        first = tracer.child_context()
        second = tracer.child_context()
        grandchild = tracer.child_context(parent=first)
        assert first.span_id == "0.1"
        assert second.span_id == "0.2"
        assert grandchild.span_id == "0.1.1"
        assert grandchild.parent_id == "0.1"
        assert grandchild.trace_id == "t1"

    def test_nested_spans_stamp_parent_edges(self):
        tracer = Tracer(
            clock=FakeClock(), context=obs_trace.SpanContext.root("t1")
        )
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events
        assert outer["args"]["span_id"] == "0.1"
        assert outer["args"]["parent_id"] == "0"
        assert inner["args"]["span_id"] == "0.1.1"
        assert inner["args"]["parent_id"] == "0.1"

    def test_record_span_uses_raw_clock_readings(self):
        clock = FakeClock()  # t0 = 1.000
        tracer = Tracer(
            clock=clock, context=obs_trace.SpanContext.root("t1")
        )
        start = tracer.now()  # 1.001
        end = tracer.now()    # 1.002
        ctx = tracer.record_span("queue_wait", start, end, seq=7)
        (event,) = tracer.events
        assert event["ts"] == pytest.approx(1000.0)
        assert event["dur"] == pytest.approx(1000.0)
        assert event["args"]["seq"] == 7
        assert ctx.span_id == "0.1"

    def test_explicit_parent_overrides_thread_stack(self):
        tracer = Tracer(
            clock=FakeClock(), context=obs_trace.SpanContext.root("t1")
        )
        request = tracer.child_context()  # 0.1
        with tracer.span("batch", parent=request):
            pass
        (event,) = tracer.events
        assert event["args"]["span_id"] == "0.1.1"
        assert event["args"]["parent_id"] == "0.1"

    def test_cross_worker_merge_pins_ids_and_timestamps(self):
        """A shipped context + extend() yields one connected tree with
        exact ids and exact (fake-clock) timestamps on both sides."""
        parent = Tracer(
            clock=FakeClock(start=1.0),
            context=obs_trace.SpanContext.root("t1"),
        )
        run_ctx = parent.child_context()                 # 0.1
        task_ctx = parent.child_context(parent=run_ctx)  # 0.1.1

        # Worker process: its own tracer, its own clock, opens its span
        # under the context shipped in the task envelope.
        worker = Tracer(clock=FakeClock(start=5.0))
        with worker.span("pool.task", cat="pool", context=task_ctx):
            pass

        start = parent.now()
        end = parent.now()
        parent.record_span(
            "pool.run", start, end, cat="pool", context=run_ctx
        )
        parent.extend(worker.events)

        run_event, task_event = parent.events
        assert run_event["args"] == {
            "trace_id": "t1", "span_id": "0.1", "parent_id": "0",
        }
        assert task_event["args"] == {
            "trace_id": "t1", "span_id": "0.1.1", "parent_id": "0.1",
        }
        # The child's parent_id is exactly the parent's span_id: the
        # edge survives the merge.
        assert task_event["args"]["parent_id"] == (
            run_event["args"]["span_id"]
        )
        # Timestamps are exact on each side's own fake timeline.
        assert run_event["ts"] == pytest.approx(1000.0)
        assert run_event["dur"] == pytest.approx(1000.0)
        assert task_event["ts"] == pytest.approx(1000.0)
        assert task_event["dur"] == pytest.approx(1000.0)

    def test_worker_children_never_collide_across_workers(self):
        # Two workers each mint children under their own shipped id.
        parent = Tracer(
            clock=FakeClock(), context=obs_trace.SpanContext.root("t1")
        )
        task_a = parent.child_context()  # 0.1
        task_b = parent.child_context()  # 0.2
        worker_a = Tracer(clock=FakeClock())
        worker_b = Tracer(clock=FakeClock())
        sub_a = worker_a.child_context(parent=task_a)
        sub_b = worker_b.child_context(parent=task_b)
        assert sub_a.span_id == "0.1.1"
        assert sub_b.span_id == "0.2.1"
        assert sub_a.span_id != sub_b.span_id

    def test_module_current_context(self):
        assert obs_trace.current_context() is None
        with obs_trace.trace(clock=FakeClock()) as tracer:
            assert obs_trace.current_context() == tracer.root
            with obs_trace.span("outer") as ctx:
                assert obs_trace.current_context() == ctx


# ----------------------------------------------------------------------
# CacheStats ergonomics
# ----------------------------------------------------------------------
class TestCacheStats:
    def test_rates(self):
        stats = CacheStats(hits=6, misses=2, spill_hits=2)
        assert stats.requests == 10
        # hit_rate counts both in-memory and spill hits over lookups.
        assert stats.hit_rate == pytest.approx(0.8)
        assert stats.spill_hit_rate == pytest.approx(0.2)

    def test_zero_requests_rates_are_zero(self):
        stats = CacheStats()
        assert stats.requests == 0
        assert stats.hit_rate == 0.0
        assert stats.spill_hit_rate == 0.0

    def test_as_dict(self):
        stats = CacheStats(hits=3, misses=1)
        data = stats.as_dict()
        assert data["hits"] == 3
        assert data["requests"] == 4
        assert data["hit_rate"] == pytest.approx(0.75)
        assert data["spill_hit_rate"] == 0.0
        json.dumps(data)  # JSON-serializable by construction

    def test_repr_is_readable(self):
        text = repr(CacheStats(hits=1, misses=3))
        assert "hits=1" in text
        assert "hit_rate=0.250" in text


# ----------------------------------------------------------------------
# Instrumentation: subsystems publish to the default registry
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_apu_sim_counters(self):
        from repro.sim.apu_sim import ApuSimulator
        from repro.workloads.calibration import default_calibration_trace

        trace = default_calibration_trace(n_accesses=500)
        before = obs_metrics.snapshot()
        ApuSimulator().run(trace)
        delta = obs_metrics.snapshot().diff(before)
        assert delta.counter("sim.apu.runs") == 1
        assert delta.counter("sim.apu.trace_rows") == 500
        assert "sim.apu.run_seconds" in delta.histograms

    def test_cache_memo_publishes_hits_and_misses(self):
        from repro.core.node import NodeModel
        from repro.perf.evalcache import EvalCache
        from repro.workloads.catalog import get_application

        cache = EvalCache()
        model = NodeModel()
        profile = get_application("CoMD")
        cus = np.array([64.0])
        freqs = np.array([1.0])
        bws = np.array([1.0])
        before = obs_metrics.snapshot()
        cache.evaluate_arrays(model, profile, cus, freqs, bws)
        cache.evaluate_arrays(model, profile, cus, freqs, bws)
        delta = obs_metrics.snapshot().diff(before)
        assert delta.counter("cache.eval.misses") == 1
        assert delta.counter("cache.eval.hits") == 1

    def test_dse_explore_counters(self):
        from repro.core.dse import explore
        from repro.workloads.catalog import get_application

        before = obs_metrics.snapshot()
        explore([get_application("CoMD")], cache=False)
        delta = obs_metrics.snapshot().diff(before)
        assert delta.counter("dse.explores") == 1
        assert delta.counter("dse.grid_points") > 0


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_build_manifest_structure(self):
        from repro.obs import manifest as obs_manifest

        doc = obs_manifest.build_manifest(
            command="test", experiments=["fig7"],
            wall_times={"fig7": 0.5}, clock=lambda: 1234.0,
        )
        assert doc["manifest_version"] == obs_manifest.MANIFEST_VERSION
        assert doc["created_unix"] == 1234.0
        assert doc["command"] == "test"
        assert doc["experiments"] == ["fig7"]
        assert doc["wall_times_s"] == {"fig7": 0.5}
        assert "sim.apu_sim" in doc["engines"]
        assert doc["engines"]["sim.apu_sim"]["default"] == "array"
        assert "eval" in doc["caches"]
        assert "hit_rate" in doc["caches"]["eval"]
        assert "counters" in doc["metrics"]

    def test_write_manifest_creates_dirs_and_valid_json(self, tmp_path):
        from repro.obs import manifest as obs_manifest

        path = tmp_path / "sub" / "manifest.json"
        obs_manifest.write_manifest(
            str(path), command="t", experiments=[], wall_times={},
        )
        data = json.loads(path.read_text())
        assert data["manifest_version"] >= 1
        assert data["python"]

    def test_manifest_carries_process_memory_gauges(self):
        from repro.obs import manifest as obs_manifest
        from repro.obs.proc import rss_bytes

        if rss_bytes() is None:  # pragma: no cover
            pytest.skip("no /proc/self/statm on this platform")
        doc = obs_manifest.build_manifest(command="t", clock=lambda: 0.0)
        gauges = doc["metrics"]["gauges"]
        assert gauges["proc.rss_bytes"] > 0
        assert gauges["proc.peak_rss_bytes"] >= gauges["proc.rss_bytes"] * 0


# ----------------------------------------------------------------------
# Process memory gauges (repro.obs.proc)
# ----------------------------------------------------------------------
class TestProcGauges:
    def test_readings_are_positive_or_none(self):
        from repro.obs import proc

        rss = proc.rss_bytes()
        peak = proc.peak_rss_bytes()
        assert rss is None or rss > 0
        assert peak is None or peak > 0

    def test_publish_into_explicit_registry(self):
        from repro.obs import proc

        registry = MetricsRegistry()
        readings = proc.publish_memory_gauges(registry)
        snap = registry.snapshot()
        for name, value in readings.items():
            assert name.startswith("proc.")
            assert snap.gauges[name] == value

    def test_publish_respects_disabled_flag(self):
        from repro.obs import proc

        registry = obs_metrics.default_registry()
        before = set(registry.snapshot().gauges)
        with obs_metrics.disabled():
            readings = proc.publish_memory_gauges(prefix="proc.test")
        after = set(registry.snapshot().gauges)
        # Readings are still returned, but nothing lands in the
        # registry while the module-level helpers are disabled.
        assert not any(name in after - before for name in readings)

    def test_custom_prefix(self):
        from repro.obs import proc

        registry = MetricsRegistry()
        readings = proc.publish_memory_gauges(registry, prefix="mem")
        assert all(name.startswith("mem.") for name in readings)


# ----------------------------------------------------------------------
# parallel_explore(metrics=True): the acceptance criterion
# ----------------------------------------------------------------------
class TestParallelMetrics:
    def test_merged_totals_equal_sum_of_worker_snapshots(self):
        from repro.perf.parallel import parallel_explore
        from repro.workloads.catalog import get_application

        profiles = [get_application("CoMD"), get_application("HPGMG")]
        n_chunks = 3
        result, snap = parallel_explore(
            profiles, n_chunks=n_chunks, max_workers=2, metrics=True
        )
        # One cache.eval lookup per (profile, chunk) task; fresh worker
        # caches mean every lookup is a hit or a miss, never dropped.
        tasks = len(profiles) * n_chunks
        total = snap.counter("cache.eval.hits") + snap.counter(
            "cache.eval.misses"
        )
        assert total == tasks
        assert result.best_mean_index >= 0

    def test_metrics_false_returns_bare_result(self):
        from repro.core.dse import DseResult
        from repro.perf.parallel import parallel_explore
        from repro.workloads.catalog import get_application

        result = parallel_explore(
            [get_application("CoMD")], n_chunks=2, max_workers=1
        )
        assert isinstance(result, DseResult)


# ----------------------------------------------------------------------
# Benchmark-JSON compaction helpers
# ----------------------------------------------------------------------
SAMPLE_BENCH = {
    "machine_info": {"cpu": "x"},
    "benchmarks": [
        {
            "fullname": "benchmarks/test_a.py::test_a",
            "stats": {
                "mean": 0.01, "stddev": 0.001, "min": 0.009, "rounds": 5,
                "data": [0.009, 0.01, 0.011, 0.01, 0.01],
            },
        }
    ],
}


class TestBenchJson:
    def test_summarize(self):
        summary = benchjson.summarize(SAMPLE_BENCH)
        entry = summary["benchmarks/test_a.py::test_a"]
        assert entry["mean_s"] == 0.01
        assert entry["rounds"] == 5

    def test_compact_file_and_load_summary(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(SAMPLE_BENCH, indent=4))
        assert len(path.read_text().splitlines()) > 10  # legacy pretty
        benchjson.compact_file(str(path))
        text = path.read_text()
        assert len(text.splitlines()) == 1  # compact
        data = json.loads(text)
        assert benchjson.SUMMARY_KEY in data
        assert data["benchmarks"] == SAMPLE_BENCH["benchmarks"]
        summary = benchjson.load_summary(str(path))
        assert summary["benchmarks/test_a.py::test_a"]["mean_s"] == 0.01

    def test_load_summary_legacy_pretty_format(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(SAMPLE_BENCH, indent=4))
        summary = benchjson.load_summary(str(path))
        assert summary["benchmarks/test_a.py::test_a"]["rounds"] == 5

    def test_compact_is_idempotent(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(SAMPLE_BENCH))
        benchjson.compact_file(str(path))
        first = path.read_text()
        benchjson.compact_file(str(path))
        assert path.read_text() == first
