"""Deterministic load harness for the serving layer's sans-io core.

The asyncio service is a thin real-clock driver around
:class:`repro.serve.batcher.BatcherCore`; every interesting decision —
admission, queue-full shed, deadline shed, expiry, batch formation,
ordered release — lives in the core and is a pure function of the
arrival trace and the policy. This harness replays an arrival schedule
against the core with a :class:`FakeClock` and a *modeled* batch
service time, producing a flat transcript of every event. Because no
real clock, thread, or process is involved, the transcript is
**bit-for-bit reproducible**: the same (arrivals, policy, cost model)
triple yields the same transcript on every run, on every machine —
which is what lets CI assert on exact shed/expiry/batching decisions
instead of sleeping and hoping.

Timing model: a single dispatcher (like the service's one worker
thread) plans a batch ``window_s`` after the queue first becomes
non-empty once the dispatcher is free, then executes it for
``service_time(planned)`` seconds. Arrivals scheduled during an
execution are admitted at their own timestamps (the real event loop
stays responsive while the executor thread runs), and their outcomes
drain after the batch completes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.serve.batcher import BatcherCore, PlannedBatch
from repro.serve.requests import OK

__all__ = ["FakeClock", "BatchCostModel", "ServeHarness", "run_trace"]


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("time only moves forward")
        self._now += dt
        return self._now

    def set(self, t: float) -> float:
        if t < self._now:
            raise ValueError("time only moves forward")
        self._now = float(t)
        return self._now


@dataclass(frozen=True)
class BatchCostModel:
    """Affine modeled execution time for one planned batch:
    ``base_s + per_request_s * len(tickets)``."""

    base_s: float = 1e-3
    per_request_s: float = 2e-3

    def __call__(self, planned: PlannedBatch) -> float:
        return self.base_s + self.per_request_s * len(planned.tickets)


@dataclass
class ServeHarness:
    """Drive a :class:`BatcherCore` through an arrival trace.

    Parameters
    ----------
    core:
        The state machine under test (fresh per run for determinism).
    service_time:
        ``PlannedBatch -> seconds`` cost model for batch execution.
    window_s:
        Coalescing window between queue-non-empty and plan, matching
        ``EvalService.batch_window_s``.
    group_key / stream_of / deadline_of / value_of:
        Request adapters. Defaults read ``request.stream`` /
        ``request.deadline_s`` when present and answer every request
        with ``("answer", seq)``.
    on_batch:
        Optional hook called with each completed ``(planned, dt)`` —
        the adaptive-policy tests feed a metrics registry here.
    """

    core: BatcherCore
    service_time: Callable[[PlannedBatch], float] = BatchCostModel()
    window_s: float = 2e-3
    group_key: Callable[[Any], Any] = lambda request: None
    stream_of: Callable[[Any], str] = (
        lambda request: getattr(request, "stream", "default")
    )
    deadline_of: Callable[[Any], float | None] = (
        lambda request: getattr(request, "deadline_s", None)
    )
    value_of: Callable[[Any, int], Any] = (
        lambda request, seq: ("answer", seq)
    )
    on_batch: Callable[[PlannedBatch, float], None] | None = None
    transcript: list[tuple] = field(default_factory=list)

    def _drain(self) -> None:
        for outcome in self.core.poll_outcomes():
            self.transcript.append(
                (
                    round(outcome.completed_at, 9),
                    "outcome",
                    outcome.ticket.seq,
                    outcome.ticket.stream,
                    outcome.ticket.stream_seq,
                    outcome.status,
                    outcome.batch_id,
                )
            )

    def _admit(self, clock: FakeClock, at: float, request: Any) -> None:
        clock.set(at)
        ticket = self.core.admit(
            request,
            clock.now,
            stream=self.stream_of(request),
            deadline_s=self.deadline_of(request),
            group_key=self.group_key(request),
        )
        accepted = ticket.stream_seq >= 0
        self.transcript.append(
            (
                round(clock.now, 9),
                "admit" if accepted else "shed",
                ticket.seq,
                ticket.stream,
                ticket.stream_seq,
            )
        )
        self._drain()

    def run(self, arrivals: Sequence) -> list[tuple]:
        """Replay *arrivals* (``Arrival``-like, sorted by ``.at``) to
        completion; returns the transcript."""
        clock = FakeClock()
        i = 0
        n = len(arrivals)
        while i < n or self.core.depth() > 0:
            if self.core.depth() == 0:
                # Idle dispatcher: jump to the next arrival.
                self._admit(clock, arrivals[i].at, arrivals[i].request)
                i += 1
                continue
            # Queue is non-empty: the dispatcher plans after the window.
            plan_at = clock.now + self.window_s
            while i < n and arrivals[i].at <= plan_at:
                self._admit(clock, arrivals[i].at, arrivals[i].request)
                i += 1
            clock.set(plan_at)
            planned = self.core.plan(clock.now)
            self._drain()
            if planned is None:  # everything expired at plan time
                continue
            self.transcript.append(
                (
                    round(clock.now, 9),
                    "dispatch",
                    planned.batch_id,
                    tuple(t.seq for t in planned.tickets),
                )
            )
            dt = float(self.service_time(planned))
            if not math.isfinite(dt) or dt < 0:
                raise ValueError("service_time must be finite and >= 0")
            done_at = clock.now + dt
            # The event loop keeps admitting while the batch executes.
            while i < n and arrivals[i].at <= done_at:
                self._admit(clock, arrivals[i].at, arrivals[i].request)
                i += 1
            clock.set(done_at)
            results = {
                t.seq: (OK, (self.value_of(t.request, t.seq), "coalesced"))
                for t in planned.tickets
            }
            self.core.complete(planned.batch_id, results, clock.now)
            if self.on_batch is not None:
                self.on_batch(planned, dt)
            self.transcript.append(
                (round(clock.now, 9), "complete", planned.batch_id)
            )
            self._drain()
        self.core.flush(clock.now)
        self._drain()
        return self.transcript


def run_trace(arrivals: Sequence, *, policy=None, max_queue: int = 1024,
              **kwargs) -> list[tuple]:
    """One-shot convenience: fresh core, fresh harness, one transcript."""
    core = BatcherCore(policy, max_queue=max_queue)
    return ServeHarness(core, **kwargs).run(arrivals)
