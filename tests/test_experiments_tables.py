"""Table I, Table II, DSE summary and ablation experiment tests."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_contention_ablation,
    run_latency_hiding_ablation,
    run_memory_management_ablation,
)
from repro.experiments.dse_summary import run_dse_summary
from repro.experiments.reconfiguration import run_table2
from repro.experiments.table1 import run_table1
from repro.workloads.calibration import PAPER_TABLE2


@pytest.fixture(scope="module")
def table2():
    return run_table2()


class TestTable1:
    def test_eight_rows(self):
        result = run_table1()
        assert len(result.data["rows"]) == 8

    def test_render_contains_all_apps(self):
        text = run_table1().render()
        for app in PAPER_TABLE2:
            assert app in text


class TestTable2:
    def test_all_eight_apps(self, table2):
        assert set(table2.data) == set(PAPER_TABLE2)

    def test_configs_match_paper_exactly(self, table2):
        for app, row in table2.data.items():
            assert row["config"] == row["paper_config"], app

    def test_benefits_close_to_paper(self, table2):
        # The calibrated model reproduces the without-optimization
        # benefit column to within a few points.
        for app, row in table2.data.items():
            assert row["benefit_pct"] == pytest.approx(
                row["paper_benefit_pct"], abs=4.0
            ), app

    def test_with_opt_benefits_close_to_paper(self, table2):
        # The with-optimizations column (same config, optimized best-mean
        # baseline) tracks the paper's values within ~16 points and stays
        # positive everywhere.
        for app, row in table2.data.items():
            assert row["benefit_opt_pct"] > 0.0, app
            assert row["benefit_opt_pct"] == pytest.approx(
                row["paper_benefit_opt_pct"], abs=17.0
            ), app

    def test_benefit_ranges(self, table2):
        # Paper: 10.7% (MaxFlops) to 47.3% (MiniAMR) without opts.
        benefits = {a: r["benefit_pct"] for a, r in table2.data.items()}
        assert min(benefits, key=benefits.get) == "MaxFlops"
        assert benefits["MiniAMR"] == max(benefits.values())

    def test_render_mentions_paper_columns(self, table2):
        assert "Paper" in table2.rendered


class TestDseSummary:
    def test_grid_size_over_thousand(self):
        result = run_dse_summary()
        assert result.data["grid_size"] > 1000

    def test_model_argmax_close_to_paper(self):
        result = run_dse_summary()
        assert result.data["argmax_over_paper_ratio"] < 1.25

    def test_best_mean_in_neighbourhood(self):
        result = run_dse_summary()
        n, f, b = result.data["best_mean"]
        assert 3e12 <= b <= 5e12
        assert 250e9 <= n * f <= 340e9


class TestAblations:
    def test_latency_hiding_matters(self):
        result = run_latency_hiding_ablation()
        for app, row in result.data.items():
            assert row["without_hiding_pct"] > row["with_hiding_pct"], app

    def test_thrash_removal_flattens_falloff(self):
        result = run_contention_ablation()
        # With thrashing removed, the 384-CU point no longer collapses.
        assert result.data["no_thrash"][-1] > result.data["full"][-1]

    def test_memory_management_policies_diverge(self):
        result = run_memory_management_ablation()
        ft = result.data["first-touch"]
        hm = result.data["hotness-migration"]
        # After the first epoch the migration policy dominates.
        assert hm[1] > ft[1] + 0.5
        assert max(ft) < 0.2

    def test_migration_converges_to_hot_set(self):
        result = run_memory_management_ablation()
        hm = result.data["hotness-migration"]
        assert hm[-1] == pytest.approx(0.8, abs=0.1)
