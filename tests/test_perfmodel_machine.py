"""MachineParams validation and helpers."""

import pytest

from repro.perfmodel.machine import MachineParams


class TestDefaults:
    def test_peak_flops_matches_paper_chiplet(self):
        # A 32-CU chiplet at 1 GHz delivers 2 DP teraflops (Section II-A1).
        m = MachineParams()
        assert m.peak_flops(32, 1.0e9) == pytest.approx(2.048e12, rel=0.05)

    def test_ehp_peak_at_320_cus(self):
        m = MachineParams()
        assert m.peak_flops(320, 1.0e9) == pytest.approx(20.48e12, rel=0.01)

    def test_external_bandwidth_below_in_package(self):
        m = MachineParams()
        assert m.ext_bandwidth < 1.0e12  # far below the 3-4 TB/s HBM level

    def test_ext_latency_exceeds_mem_latency(self):
        m = MachineParams()
        assert m.ext_latency > m.mem_latency

    def test_remote_fraction_uniform_is_seven_eighths(self):
        assert MachineParams().remote_fraction_uniform == pytest.approx(7 / 8)


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        ["flops_per_cu_cycle", "cacheline_bytes", "mem_latency",
         "ext_latency", "ext_bandwidth", "overlap_sharpness",
         "reference_cus", "reference_freq"],
    )
    def test_positive_fields(self, field):
        with pytest.raises(ValueError):
            MachineParams(**{field: 0.0})

    def test_remote_fraction_bounds(self):
        with pytest.raises(ValueError):
            MachineParams(remote_fraction_uniform=1.5)

    def test_contention_nonnegative(self):
        with pytest.raises(ValueError):
            MachineParams(contention_kappa=-1.0)
        MachineParams(contention_kappa=0.0)  # disabling is allowed

    def test_frozen(self):
        m = MachineParams()
        with pytest.raises(Exception):
            m.mem_latency = 1.0  # type: ignore[misc]
