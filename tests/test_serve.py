"""The serving layer (``repro.serve``).

Covers the deterministic batcher core (admission, backpressure,
deadline shed, expiry, grouping, ordered release), the adaptive sizing
policy, the harness's bit-for-bit reproducibility, the cache peek/seed
fast path, and — through a real asyncio service over a real worker
pool — oracle equivalence of every response path against direct serial
evaluation, fault injection (worker kill mid-serve), and clean
shutdown-while-in-flight behaviour.

No pytest-asyncio in the toolchain: async tests run via
``asyncio.run`` inside plain test functions.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core.config import DesignSpace
from repro.core.dse import DseResult
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.perf.evalcache import EvalCache, SimCache
from repro.perf.pool import ShardedPool
from repro.serve import (
    AdaptiveBatchPolicy,
    BatcherCore,
    EvalService,
    FixedPolicy,
    PointRequest,
    PointResult,
    ServeResponse,
    SimulateRequest,
    SweepRequest,
    serial_answer,
)
from repro.serve.requests import (
    EXPIRED,
    FAILED,
    OK,
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SHUTDOWN,
    STATUSES,
    ExperimentRequest,
)
from repro.serve.workload import Arrival, synthetic_arrivals
from serve_harness import BatchCostModel, FakeClock, ServeHarness, run_trace

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _new_pool(n_shards=2, **kwargs):
    try:
        return ShardedPool(n_shards, **kwargs)
    except (OSError, PermissionError) as exc:  # pragma: no cover
        pytest.skip(f"cannot spawn worker processes: {exc}")


@pytest.fixture(scope="module")
def pool():
    """One long-lived 2-shard pool shared by the pooled serve tests."""
    p = _new_pool(2)
    yield p
    p.shutdown()


def _fresh_service(**kwargs):
    """A service over private caches (no cross-test pollution)."""
    kwargs.setdefault("cache", EvalCache())
    kwargs.setdefault("sim_cache", SimCache())
    return EvalService(**kwargs)


def _assert_same_answer(response: ServeResponse, request, model=None):
    """The served value must be bit-identical to the serial oracle."""
    assert response.status == OK, (response.status, response.error)
    oracle = serial_answer(request, model)
    value = response.value
    if isinstance(oracle, PointResult):
        assert value == oracle  # exact float equality: bit-identical
    elif isinstance(oracle, DseResult):
        assert value.best_mean_index == oracle.best_mean_index
        assert value.per_app_best_index == oracle.per_app_best_index
        for name in oracle.performance:
            assert np.array_equal(
                value.performance[name], oracle.performance[name]
            )
            assert np.array_equal(
                value.node_power[name], oracle.node_power[name]
            )
            assert np.array_equal(
                value.feasible[name], oracle.feasible[name]
            )
    else:
        assert value == oracle


def _statuses_account_for_everything(stats: dict) -> None:
    terminal = (
        stats["completed_ok"]
        + stats["failed"]
        + stats["shed_queue_full"]
        + stats["shed_deadline"]
        + stats["expired"]
        + stats["shutdown"]
    )
    assert terminal == stats["admitted"]


# ----------------------------------------------------------------------
# Batcher core (sans-io)
# ----------------------------------------------------------------------
class TestBatcherCore:
    def test_fifo_batch_and_ordered_release(self):
        core = BatcherCore(FixedPolicy(batch=3))
        tickets = [core.admit(f"r{i}", 0.0, stream="s") for i in range(5)]
        assert [t.stream_seq for t in tickets] == [0, 1, 2, 3, 4]
        planned = core.plan(1.0)
        assert [t.seq for t in planned.tickets] == [0, 1, 2]
        assert core.depth() == 2 and core.inflight() == 3
        # Complete out of order within the batch: release holds order.
        core.complete(
            planned.batch_id,
            {2: (OK, "c"), 0: (OK, "a"), 1: (OK, "b")},
            2.0,
        )
        released = core.poll_outcomes()
        assert [o.ticket.seq for o in released] == [0, 1, 2]
        assert [o.value for o in released] == ["a", "b", "c"]

    def test_queue_full_sheds_explicitly(self):
        core = BatcherCore(FixedPolicy(), max_queue=2)
        for i in range(2):
            core.admit(i, 0.0)
        shed = core.admit(2, 0.0)
        assert shed.stream_seq == -1
        outcomes = core.poll_outcomes()
        assert [o.status for o in outcomes] == [SHED_QUEUE_FULL]
        assert core.stats["shed_queue_full"] == 1

    def test_deadline_shed_at_admission(self):
        core = BatcherCore(
            FixedPolicy(est_request_s=1.0, dispatch_overhead_s=0.0)
        )
        ok = core.admit("fits", 0.0, deadline_s=10.0)
        assert ok.stream_seq >= 0
        shed = core.admit("cannot", 0.0, deadline_s=0.5)
        assert shed.stream_seq == -1
        (outcome,) = core.poll_outcomes()
        assert outcome.status == SHED_DEADLINE

    def test_expiry_at_plan_time(self):
        core = BatcherCore(FixedPolicy(est_request_s=1e-6))
        core.admit("r", 0.0, deadline_s=0.1)
        assert core.plan(1.0) is None  # deadline long past
        (outcome,) = core.poll_outcomes()
        assert outcome.status == EXPIRED

    def test_group_keys_and_solo(self):
        core = BatcherCore(FixedPolicy(batch=10))
        core.admit("a", 0.0, group_key="g")
        core.admit("b", 0.0, group_key="g")
        core.admit("c", 0.0, group_key=None)
        planned = core.plan(0.0)
        keys = set(planned.groups)
        assert "g" in keys
        assert ("solo", 2) in keys
        assert len(planned.groups["g"]) == 2

    def test_missing_result_fails_not_lost(self):
        core = BatcherCore(FixedPolicy(batch=2))
        core.admit("a", 0.0)
        core.admit("b", 0.0)
        planned = core.plan(0.0)
        core.complete(planned.batch_id, {0: (OK, "a")}, 1.0)
        outcomes = {o.ticket.seq: o for o in core.poll_outcomes()}
        assert outcomes[0].status == OK
        assert outcomes[1].status == FAILED
        assert "no result" in str(outcomes[1].error)

    def test_invalid_status_rejected(self):
        core = BatcherCore()
        core.admit("a", 0.0)
        planned = core.plan(0.0)
        with pytest.raises(ValueError):
            core.complete(planned.batch_id, {0: ("bogus", None)}, 1.0)

    def test_unknown_batch_rejected(self):
        with pytest.raises(KeyError):
            BatcherCore().complete(99, {}, 0.0)

    def test_inline_held_behind_pending_same_stream(self):
        core = BatcherCore(FixedPolicy(batch=1))
        core.admit("slow", 0.0, stream="s")
        planned = core.plan(0.0)
        inline = core.admit_completed("fast", "hit", 0.1, stream="s")
        assert inline.stream_seq == 1
        assert core.poll_outcomes() == []  # held behind seq 0
        core.complete(planned.batch_id, {0: (OK, "v")}, 0.2)
        released = core.poll_outcomes()
        assert [o.ticket.stream_seq for o in released] == [0, 1]
        assert released[1].path == "inline-cache"

    def test_streams_are_independent(self):
        core = BatcherCore(FixedPolicy(batch=1))
        core.admit("a", 0.0, stream="s1")
        planned = core.plan(0.0)
        inline = core.admit_completed("b", "hit", 0.1, stream="s2")
        (released,) = core.poll_outcomes()  # s2 not held behind s1
        assert released.ticket.seq == inline.seq
        core.complete(planned.batch_id, {0: (OK, "v")}, 0.2)
        assert len(core.poll_outcomes()) == 1

    def test_flush_resolves_queued_and_inflight(self):
        core = BatcherCore(FixedPolicy(batch=2))
        for i in range(5):
            core.admit(i, 0.0)
        core.plan(0.0)
        flushed = core.flush(1.0)
        assert flushed == 5
        outcomes = core.poll_outcomes()
        assert len(outcomes) == 5
        assert all(o.status == SHUTDOWN for o in outcomes)
        _statuses_account_for_everything(core.stats)

    def test_bad_max_queue(self):
        with pytest.raises(ValueError):
            BatcherCore(max_queue=0)


# ----------------------------------------------------------------------
# Adaptive policy and quantiles
# ----------------------------------------------------------------------
class TestAdaptivePolicy:
    def test_cold_start_uses_default(self):
        policy = AdaptiveBatchPolicy(
            obs_metrics.MetricsRegistry(), default_request_seconds=5e-3,
            target_batch_seconds=0.02,
        )
        assert policy.est_request_seconds() == 5e-3
        assert policy.batch_limit() == 4  # 0.02 / 5e-3

    def test_refresh_tracks_measured_rate(self):
        registry = obs_metrics.MetricsRegistry()
        policy = AdaptiveBatchPolicy(
            registry, target_batch_seconds=0.1, max_batch=1000
        )
        registry.observe("serve.batch_seconds", 0.2)
        registry.inc("serve.batch_requests", 200)  # 1 ms / request
        assert policy.refresh() == pytest.approx(1e-3)
        assert policy.batch_limit() == 100

    def test_clamped_to_bounds(self):
        registry = obs_metrics.MetricsRegistry()
        policy = AdaptiveBatchPolicy(
            registry, min_batch=2, max_batch=8, target_batch_seconds=1.0
        )
        registry.observe("serve.batch_seconds", 1e-6)
        registry.inc("serve.batch_requests", 1)
        policy.refresh()
        assert policy.batch_limit() == 8
        registry.observe("serve.batch_seconds", 1e6)
        policy.refresh()
        assert policy.batch_limit() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(min_batch=0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(min_batch=4, max_batch=2)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(target_batch_seconds=0.0)


class TestHistogramQuantile:
    def test_empty_is_zero(self):
        snap = obs_metrics.MetricsRegistry().snapshot()
        assert snap.histograms == {}
        registry = obs_metrics.MetricsRegistry()
        registry.observe("h", 1.0)
        hist = registry.snapshot().histograms["h"]
        empty = hist.diff(hist)
        assert empty.quantile(0.99) == 0.0

    def test_bucket_upper_bound(self):
        registry = obs_metrics.MetricsRegistry(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 3.0):
            registry.observe("h", v)
        hist = registry.snapshot().histograms["h"]
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.75) == 2.0
        assert hist.quantile(1.0) == 4.0

    def test_overflow_is_inf(self):
        registry = obs_metrics.MetricsRegistry(buckets=(1.0,))
        registry.observe("h", 100.0)
        assert registry.snapshot().histograms["h"].quantile(0.5) == float(
            "inf"
        )

    def test_out_of_range_rejected(self):
        registry = obs_metrics.MetricsRegistry()
        registry.observe("h", 1.0)
        hist = registry.snapshot().histograms["h"]
        with pytest.raises(ValueError):
            hist.quantile(1.5)


# ----------------------------------------------------------------------
# Deterministic harness
# ----------------------------------------------------------------------
def _mixed_arrivals(n=60, seed=3, rate_hz=400.0, deadline_s=0.05):
    return synthetic_arrivals(
        seed, n, rate_hz=rate_hz, deadline_s=deadline_s
    )


class TestServeHarness:
    def test_transcript_is_bit_for_bit_reproducible(self):
        arrivals = _mixed_arrivals()
        first = run_trace(arrivals, policy=FixedPolicy(batch=4))
        second = run_trace(arrivals, policy=FixedPolicy(batch=4))
        assert first == second
        assert any(row[1] == "dispatch" for row in first)
        assert any(row[1] == "outcome" for row in first)

    def test_every_arrival_gets_exactly_one_outcome(self):
        arrivals = _mixed_arrivals(n=80)
        transcript = run_trace(arrivals, policy=FixedPolicy(batch=4))
        outcome_seqs = [r[2] for r in transcript if r[1] == "outcome"]
        assert sorted(outcome_seqs) == list(range(len(arrivals)))

    def test_overload_sheds_and_expires_deterministically(self):
        # Service time far above the arrival rate: the bounded queue
        # must shed and the tight deadline must expire requests, and
        # the exact decision sequence must replay.
        arrivals = _mixed_arrivals(n=50, rate_hz=2000.0, deadline_s=0.02)
        kwargs = dict(
            policy=FixedPolicy(batch=2, est_request_s=5e-3),
            max_queue=4,
            service_time=BatchCostModel(base_s=5e-3, per_request_s=1e-2),
        )
        first = run_trace(arrivals, **kwargs)
        second = run_trace(arrivals, **kwargs)
        assert first == second
        statuses = {r[5] for r in first if r[1] == "outcome"}
        assert SHED_QUEUE_FULL in statuses or SHED_DEADLINE in statuses
        assert EXPIRED in statuses or OK in statuses
        shed_rows = [r for r in first if r[1] == "shed"]
        assert shed_rows, "overload trace must shed"

    def test_stream_order_preserved_in_transcript(self):
        arrivals = _mixed_arrivals(n=60, rate_hz=1500.0, deadline_s=None)
        transcript = run_trace(arrivals, policy=FixedPolicy(batch=5))
        per_stream: dict = {}
        for row in transcript:
            if row[1] == "outcome" and row[4] >= 0:
                per_stream.setdefault(row[3], []).append(row[4])
        assert per_stream
        for stream, seqs in per_stream.items():
            assert seqs == sorted(seqs), f"stream {stream} reordered"

    def test_adaptive_policy_inside_harness(self):
        # Feed the measured batch timings back through a private
        # registry: the planned batch sizes must grow deterministically
        # from min upward as the estimate converges below default.
        arrivals = _mixed_arrivals(n=60, rate_hz=3000.0, deadline_s=None)

        def run_once():
            registry = obs_metrics.MetricsRegistry()
            policy = AdaptiveBatchPolicy(
                registry,
                target_batch_seconds=0.02,
                default_request_seconds=1e-2,
                max_batch=32,
            )
            core = BatcherCore(policy)

            def on_batch(planned, dt):
                registry.observe("serve.batch_seconds", dt)
                registry.inc("serve.batch_requests", len(planned.tickets))
                policy.refresh()

            harness = ServeHarness(
                core,
                service_time=BatchCostModel(
                    base_s=0.0, per_request_s=1e-3
                ),
                on_batch=on_batch,
            )
            transcript = harness.run(arrivals)
            return transcript, policy.batch_limit()

        first, limit1 = run_once()
        second, limit2 = run_once()
        assert first == second and limit1 == limit2
        assert limit1 == 20  # 0.02 s target / 1 ms measured
        sizes = [len(r[3]) for r in first if r[1] == "dispatch"]
        assert max(sizes) > 2  # grew past the cold-start size of 2

    def test_fake_clock_monotonic(self):
        clock = FakeClock()
        clock.advance(1.0)
        with pytest.raises(ValueError):
            clock.advance(-0.1)
        with pytest.raises(ValueError):
            clock.set(0.5)


# ----------------------------------------------------------------------
# Cache peek / seed
# ----------------------------------------------------------------------
class TestCachePeekSeed:
    def test_peek_miss_counts_nothing(self, model, maxflops):
        cache = EvalCache()
        space = DesignSpace(
            cu_counts=(256,), frequencies=(1e9,), bandwidths=(2e12,)
        )
        assert cache.peek_grid(model, [maxflops], space) is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_seed_then_peek_is_hit(self, model, maxflops):
        cache = EvalCache()
        space = DesignSpace(
            cu_counts=(256,), frequencies=(1e9,), bandwidths=(2e12,)
        )
        grid = model.evaluate_grid([maxflops], space)
        cache.seed_grid(model, [maxflops], space, grid)
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0  # seeding is free
        peeked = cache.peek_grid(model, [maxflops], space)
        assert peeked is grid
        assert cache.stats().hits == 1

    def test_seeded_equals_computed(self, model, maxflops):
        # A cache that was seeded answers evaluate_grid without
        # recomputing, and the value is the seeded one.
        cache = EvalCache()
        space = DesignSpace(
            cu_counts=(192, 256), frequencies=(1e9,), bandwidths=(2e12,)
        )
        grid = model.evaluate_grid([maxflops], space)
        cache.seed_grid(model, [maxflops], space, grid)
        again = cache.evaluate_grid(model, [maxflops], space)
        assert again is grid

    def test_sim_cache_seed_roundtrip(self, maxflops):
        from repro.sim.apu_sim import ApuSimulator
        from repro.workloads.traces import TraceGenerator

        trace = TraceGenerator(maxflops, seed=7).generate(500)
        cache = SimCache()
        assert cache.peek_run(trace) is None
        result = ApuSimulator().run(trace)
        cache.seed_run(trace, result)
        assert cache.peek_run(trace) is result
        assert cache.peek_run(trace, engine="event") is None  # no alias


# ----------------------------------------------------------------------
# The asyncio service: oracle equivalence of every path
# ----------------------------------------------------------------------
class TestServiceOracle:
    def test_all_paths_bit_identical_no_pool(self, model):
        """Coalesced, degraded, and inline-cache answers all match the
        serial oracle exactly (inline batch execution, no pool)."""
        arrivals = synthetic_arrivals(11, 30, deadline_s=None)

        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.01)
            async with svc:
                first = await asyncio.gather(
                    *(svc.submit(a.request) for a in arrivals)
                )
                second = await asyncio.gather(
                    *(svc.submit(a.request) for a in arrivals)
                )
                stats = svc.stats()
            return first, second, stats

        first, second, stats = asyncio.run(scenario())
        for responses in (first, second):
            for arrival, response in zip(arrivals, responses):
                _assert_same_answer(response, arrival.request, model)
        paths = {r.path for r in first}
        assert "coalesced" in paths
        # Every repeat answers from the cache without a worker trip.
        assert all(r.path == "inline-cache" for r in second)
        assert stats["inline"] >= len(arrivals)
        _statuses_account_for_everything(stats)

    def test_degraded_solo_point_matches(self, model, lulesh):
        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.0)
            async with svc:
                return await svc.evaluate(lulesh, 320, 1.0e9, 3.0e12)

        response = asyncio.run(scenario())
        assert response.path == "degraded"  # nothing to coalesce with
        _assert_same_answer(
            response, PointRequest(lulesh, 320, 1.0e9, 3.0e12), model
        )

    def test_sweep_matches_explore_optima(self, model, maxflops, comd):
        space = DesignSpace(
            cu_counts=(192, 256, 320),
            frequencies=(0.9e9, 1.2e9),
            bandwidths=(1e12, 3e12),
        )
        request = SweepRequest((maxflops, comd), space)

        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.0)
            async with svc:
                return await svc.submit(request)

        response = asyncio.run(scenario())
        _assert_same_answer(response, request, model)

    def test_simulate_and_experiment_paths(self, model, maxflops):
        from repro.workloads.traces import TraceGenerator

        trace = TraceGenerator(maxflops, seed=5).generate(800)
        sim_request = SimulateRequest(trace)
        exp_request = ExperimentRequest("table1")

        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.0)
            async with svc:
                sim1 = await svc.submit(sim_request)
                exp1 = await svc.submit(exp_request)
                sim2 = await svc.submit(sim_request)
                exp2 = await svc.submit(exp_request)
            return sim1, exp1, sim2, exp2

        sim1, exp1, sim2, exp2 = asyncio.run(scenario())
        assert sim1.path == "solo" and exp1.path == "solo"
        _assert_same_answer(sim1, sim_request, model)
        assert exp1.status == OK
        # Repeats hit the parent-side caches inline.
        assert sim2.path == "inline-cache" and exp2.path == "inline-cache"
        assert sim2.value == sim1.value
        assert exp2.value is exp1.value

    def test_failed_sweep_is_contained(self, model, maxflops, comd):
        # An infeasible sweep (1 W budget: nothing fits) fails alone;
        # a good request in the same batch still answers.
        bad_space = DesignSpace(
            cu_counts=(192, 256),
            frequencies=(1e9,),
            bandwidths=(1e12,),
            power_budget=1.0,
        )
        bad = SweepRequest((maxflops,), bad_space)
        good = PointRequest(comd, 256, 1.0e9, 2.0e12)

        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.05)
            async with svc:
                return await asyncio.gather(
                    svc.submit(bad), svc.submit(good)
                )

        bad_response, good_response = asyncio.run(scenario())
        assert bad_response.status == FAILED
        assert isinstance(bad_response.error, RuntimeError)
        _assert_same_answer(good_response, good, model)

    def test_within_stream_order_holds_under_concurrency(self, model):
        arrivals = synthetic_arrivals(
            23, 40, n_streams=2, deadline_s=None
        )
        done: list[tuple[str, int]] = []

        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.005)

            async def one(i, request):
                response = await svc.submit(request)
                done.append((request.stream, i))
                return response

            async with svc:
                responses = await asyncio.gather(
                    *(one(i, a.request) for i, a in enumerate(arrivals))
                )
            return responses

        responses = asyncio.run(scenario())
        assert all(r.status == OK for r in responses)
        per_stream: dict = {}
        for stream, i in done:
            per_stream.setdefault(stream, []).append(i)
        for stream, order in per_stream.items():
            assert order == sorted(order), f"stream {stream} reordered"


# ----------------------------------------------------------------------
# Backpressure, deadlines, shutdown (no pool: deterministic timing)
# ----------------------------------------------------------------------
class TestServiceBackpressure:
    def test_queue_full_sheds_immediately(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(
                model=model, batch_window_s=0.2, max_queue=2
            )
            requests = [
                PointRequest(maxflops, 192 + 64 * (i % 4), 1.0e9, 1e12 * (1 + i))
                for i in range(8)
            ]
            async with svc:
                return await asyncio.gather(
                    *(svc.submit(r) for r in requests)
                )

        responses = asyncio.run(scenario())
        statuses = [r.status for r in responses]
        assert statuses.count(SHED_QUEUE_FULL) == len(responses) - 2
        assert statuses.count(OK) == 2
        assert all(s in STATUSES for s in statuses)

    def test_deadline_shed_at_admission(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(
                model=model,
                policy=FixedPolicy(est_request_s=10.0),
                batch_window_s=0.0,
            )
            async with svc:
                return await svc.evaluate(
                    maxflops, 256, 1.0e9, 2e12, deadline_s=0.01
                )

        response = asyncio.run(scenario())
        assert response.status == SHED_DEADLINE
        assert response.latency_s == 0.0

    def test_expiry_while_queued(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(
                model=model,
                policy=FixedPolicy(
                    est_request_s=1e-6, dispatch_overhead_s=0.0
                ),
                batch_window_s=0.2,
            )
            async with svc:
                return await svc.evaluate(
                    maxflops, 256, 1.0e9, 2e12, deadline_s=0.02
                )

        response = asyncio.run(scenario())
        assert response.status == EXPIRED

    def test_submit_after_close_refused(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(model=model)
            async with svc:
                pass
            return await svc.evaluate(maxflops, 256, 1.0e9, 2e12)

        response = asyncio.run(scenario())
        assert response.status == SHUTDOWN

    def test_close_flushes_queued_requests(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=5.0)
            async with svc:
                pending = [
                    asyncio.ensure_future(
                        svc.evaluate(maxflops, 192 + 64 * i, 1.0e9, 2e12)
                    )
                    for i in range(3)
                ]
                await asyncio.sleep(0.05)  # queued, window still open
            return await asyncio.gather(*pending)

        responses = asyncio.run(
            asyncio.wait_for(scenario(), timeout=30)
        )
        assert [r.status for r in responses] == [SHUTDOWN] * 3

    def test_manifest_section_lifecycle(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.0)
            async with svc:
                await svc.evaluate(maxflops, 256, 1.0e9, 2e12)
                open_manifest = obs_manifest.build_manifest()
            closed_manifest = obs_manifest.build_manifest()
            return open_manifest, closed_manifest

        open_manifest, closed_manifest = asyncio.run(scenario())
        section = open_manifest["sections"]["serve"]
        assert section["completed_ok"] == 1
        assert "batch_limit" in section
        assert "serve" not in closed_manifest["sections"]


# ----------------------------------------------------------------------
# Pooled service: slab fan-out, fault injection, shutdown-in-flight
# ----------------------------------------------------------------------
class TestServiceOnPool:
    def test_coalesced_pool_answers_match_oracle(self, pool, model):
        arrivals = synthetic_arrivals(31, 24, deadline_s=None)

        async def scenario():
            svc = _fresh_service(
                model=model, pool=pool, batch_window_s=0.02
            )
            async with svc:
                responses = await asyncio.gather(
                    *(svc.submit(a.request) for a in arrivals)
                )
                stats = svc.stats()
            return responses, stats

        responses, stats = asyncio.run(
            asyncio.wait_for(scenario(), timeout=300)
        )
        for arrival, response in zip(arrivals, responses):
            _assert_same_answer(response, arrival.request, model)
        assert stats["pool_tasks"] > 0
        _statuses_account_for_everything(stats)

    def test_worker_kill_mid_serve_no_lost_answers(self, pool, model):
        """Kill every worker while requests are in flight: the pool
        requeues and respawns, every request still gets exactly one
        bit-identical answer, and the restart surfaces in stats()."""
        from repro.workloads.catalog import APPLICATIONS
        from repro.workloads.traces import TraceGenerator

        arrivals = synthetic_arrivals(37, 10, deadline_s=None)
        trace = TraceGenerator(
            APPLICATIONS["CoMD"], seed=37
        ).generate(60_000)
        requests = [a.request for a in arrivals] + [SimulateRequest(trace)]

        async def scenario():
            svc = _fresh_service(
                model=model, pool=pool, batch_window_s=0.05
            )
            restarts_before = pool.stats().worker_restarts
            async with svc:
                pending = [
                    asyncio.ensure_future(svc.submit(r)) for r in requests
                ]
                await asyncio.sleep(0.15)  # batch dispatched / running
                for index in range(pool.n_shards):
                    pool.kill_worker(index)
                first = await asyncio.gather(*pending)
                # A second round forces dead-worker detection even if
                # the first batch squeaked through before the kill.
                second = await asyncio.gather(
                    *(
                        svc.evaluate(
                            r.profile, r.n_cus, r.gpu_freq, r.bandwidth,
                            power_budget=150.0,  # distinct: no inline hit
                        )
                        for r in requests
                        if isinstance(r, PointRequest)
                    )
                )
                stats = svc.stats()
            return first, second, stats, restarts_before

        first, second, stats, restarts_before = asyncio.run(
            asyncio.wait_for(scenario(), timeout=300)
        )
        for request, response in zip(requests, first):
            _assert_same_answer(response, request, model)
        assert all(r.status == OK for r in second)
        assert stats["pool_worker_restarts"] >= restarts_before + 1
        # Exactly one outcome per admission: nothing lost or doubled.
        _statuses_account_for_everything(stats)
        assert stats["admitted"] == len(first) + len(second)

    def test_pool_shutdown_mid_serve_batch_resolves_all(self, model):
        """Shutting the pool down under a live service must resolve
        every pending request (shutdown/failed), not hang or leak."""
        from repro.workloads.catalog import APPLICATIONS
        from repro.workloads.traces import TraceGenerator

        arrivals = synthetic_arrivals(41, 8, deadline_s=None)
        trace = TraceGenerator(
            APPLICATIONS["CoMD"], seed=41
        ).generate(60_000)
        own_pool = _new_pool(2)

        async def scenario():
            svc = _fresh_service(
                model=model, pool=own_pool, batch_window_s=0.05
            )
            async with svc:
                pending = [
                    asyncio.ensure_future(svc.submit(SimulateRequest(trace)))
                ]
                pending += [
                    asyncio.ensure_future(svc.submit(a.request))
                    for a in arrivals
                ]
                await asyncio.sleep(0.15)  # batch in flight
                own_pool.shutdown()
                return await asyncio.gather(*pending)

        try:
            responses = asyncio.run(
                asyncio.wait_for(scenario(), timeout=120)
            )
        finally:
            own_pool.shutdown()
        assert len(responses) == len(arrivals) + 1
        statuses = {r.status for r in responses}
        assert statuses <= {SHUTDOWN, FAILED, OK}
        assert SHUTDOWN in statuses or FAILED in statuses


# ----------------------------------------------------------------------
# Request tracing: one submit -> one connected span tree
# ----------------------------------------------------------------------
class TestServeTracing:
    def test_single_request_renders_connected_tree(
        self, pool, model, maxflops, comd
    ):
        """One traced sweep request is one connected tree with pinned
        ids: serve.SweepRequest (0.1) -> serve.queue_wait (0.1.1) +
        serve.batch (0.1.2) -> pool.run -> worker task spans."""
        import os

        space = DesignSpace(
            cu_counts=(192, 256, 320),
            frequencies=(0.9e9, 1.2e9),
            bandwidths=(1e12,),
        )
        request = SweepRequest((maxflops, comd), space)
        tracer = obs_trace.Tracer(
            context=obs_trace.SpanContext.root("t1")
        )

        async def scenario():
            svc = _fresh_service(
                model=model, pool=pool, batch_window_s=0.0,
                slab_min_points=1,
            )
            async with svc:
                return await svc.submit(request)

        with obs_trace.trace(tracer=tracer):
            response = asyncio.run(
                asyncio.wait_for(scenario(), timeout=300)
            )
        assert response.status == OK

        by_name: dict[str, list] = {}
        for event in tracer.events:
            by_name.setdefault(event["name"], []).append(event)

        (req_event,) = by_name["serve.SweepRequest"]
        assert req_event["args"]["trace_id"] == "t1"
        assert req_event["args"]["span_id"] == "0.1"
        assert req_event["args"]["parent_id"] == "0"

        (wait_event,) = by_name["serve.queue_wait"]
        assert wait_event["args"]["span_id"] == "0.1.1"
        assert wait_event["args"]["parent_id"] == "0.1"
        assert wait_event["dur"] >= 0

        # A batch serving exactly one traced request parents under it.
        (batch_event,) = by_name["serve.batch"]
        assert batch_event["args"]["span_id"] == "0.1.2"
        assert batch_event["args"]["parent_id"] == "0.1"

        run_events = by_name["pool.run"]
        assert run_events
        run_ids = set()
        for run_event in run_events:
            assert run_event["args"]["parent_id"] == "0.1.2"
            run_ids.add(run_event["args"]["span_id"])

        worker_events = [
            e
            for e in tracer.events
            if e["args"].get("parent_id") in run_ids
            and e["name"] != "pool.run"
        ]
        assert worker_events
        parent_pid = os.getpid()
        for event in worker_events:
            assert event["args"]["trace_id"] == "t1"
            assert event["pid"] != parent_pid

    def test_multi_request_batch_links_request_spans(
        self, model, maxflops
    ):
        """A batch serving several requests can't be a child of all of
        them; it records their span ids as links instead, and each
        request still gets its own queue-wait child span."""
        tracer = obs_trace.Tracer(
            context=obs_trace.SpanContext.root("t1")
        )

        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.05)
            async with svc:
                return await asyncio.gather(
                    *(
                        svc.evaluate(
                            maxflops, 192 + 64 * i, 1.0e9, 2e12
                        )
                        for i in range(3)
                    )
                )

        with obs_trace.trace(tracer=tracer):
            responses = asyncio.run(
                asyncio.wait_for(scenario(), timeout=300)
            )
        assert all(r.status == OK for r in responses)

        request_ids = {
            e["args"]["span_id"]
            for e in tracer.events
            if e["name"] == "serve.PointRequest"
        }
        assert request_ids == {"0.1", "0.2", "0.3"}
        linked: set = set()
        for event in tracer.events:
            if event["name"] != "serve.batch":
                continue
            spans = event["args"].get("request_spans")
            if spans is not None:
                linked.update(spans)
            else:
                # Singleton batch: parented under its one request.
                linked.add(event["args"]["parent_id"])
        assert linked == request_ids
        wait_parents = {
            e["args"]["parent_id"]
            for e in tracer.events
            if e["name"] == "serve.queue_wait"
        }
        assert wait_parents == request_ids

    def test_untraced_requests_record_nothing(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.0)
            async with svc:
                response = await svc.evaluate(
                    maxflops, 256, 1.0e9, 2e12
                )
                stats = svc.stats()
            return response, stats

        response, stats = asyncio.run(scenario())
        assert response.status == OK
        assert obs_trace.active_tracer() is None
        assert stats["slo"]["requests"] == 1

    def test_stats_report_slo_health(self, model, maxflops):
        async def scenario():
            svc = _fresh_service(model=model, batch_window_s=0.0)
            async with svc:
                for i in range(4):
                    await svc.evaluate(
                        maxflops, 192 + 64 * i, 1.0e9, 2e12
                    )
                return svc.stats()

        stats = asyncio.run(scenario())
        slo = stats["slo"]
        assert slo["requests"] == 4
        assert slo["ok"] == 4
        assert slo["budget_burn"] == pytest.approx(0.0)
        assert slo["p99_latency_s"] > 0.0


# ----------------------------------------------------------------------
# Workload generator and CLI
# ----------------------------------------------------------------------
class TestWorkload:
    def test_deterministic_for_seed(self):
        a = synthetic_arrivals(5, 50, rate_hz=100.0)
        b = synthetic_arrivals(5, 50, rate_hz=100.0)
        assert a == b
        c = synthetic_arrivals(6, 50, rate_hz=100.0)
        assert a != c

    def test_open_loop_times_increase(self):
        arrivals = synthetic_arrivals(1, 40, rate_hz=500.0)
        times = [a.at for a in arrivals]
        assert times == sorted(times) and times[-1] > 0

    def test_closed_loop_all_at_zero(self):
        arrivals = synthetic_arrivals(1, 10)
        assert all(a.at == 0.0 for a in arrivals)

    def test_mix_and_validation(self):
        arrivals = synthetic_arrivals(
            2, 200, point_fraction=0.6, simulate_fraction=0.05
        )
        kinds = {type(a.request).__name__ for a in arrivals}
        assert kinds == {
            "PointRequest", "SweepRequest", "SimulateRequest"
        }
        with pytest.raises(ValueError):
            synthetic_arrivals(0, -1)
        with pytest.raises(ValueError):
            synthetic_arrivals(0, 1, point_fraction=0.9,
                               simulate_fraction=0.5)

    def test_templates_repeat(self):
        arrivals = synthetic_arrivals(
            3, 100, point_fraction=1.0, n_templates=8, deadline_s=None
        )
        distinct = {
            (a.request.profile.name, a.request.n_cus,
             a.request.gpu_freq, a.request.bandwidth)
            for a in arrivals
        }
        assert len(distinct) <= 8 < len(arrivals)


class TestServeCli:
    def test_serve_bench_cli_smoke(self, capsys, tmp_path):
        from repro.__main__ import main

        manifest_path = tmp_path / "serve_manifest.json"
        code = main(
            [
                "serve",
                "--serve-requests", "12",
                "--pool-shards", "2",
                "--serve-deadline-ms", "0",
                "--metrics-out", str(manifest_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve bench:" in out
        import json

        manifest = json.loads(manifest_path.read_text())
        assert manifest["extra"]["serve_bench"]["n_requests"] == 12

    def test_no_artifacts_errors(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main([])


class TestRequestTypes:
    def test_point_to_space_singleton(self, maxflops):
        request = PointRequest(maxflops, 256, 1.0e9, 2e12,
                               power_budget=120.0)
        space = request.to_space()
        assert space.size == 1
        assert space.power_budget == 120.0

    def test_from_config(self, maxflops, best_mean_config):
        request = PointRequest.from_config(maxflops, best_mean_config)
        assert request.n_cus == best_mean_config.n_cus

    def test_sweep_rejects_duplicates(self, maxflops):
        with pytest.raises(ValueError):
            SweepRequest((maxflops, maxflops), DesignSpace())
        with pytest.raises(ValueError):
            SweepRequest((), DesignSpace())

    def test_response_latency(self):
        response = ServeResponse(
            status=OK, admitted_at=1.0, completed_at=3.5
        )
        assert response.ok and response.latency_s == 2.5
