"""The fleet layer (``repro.fleet``): link tier, specs, sharded sweeps.

Covers the link tier's two-engine bit-identity and derate-only
contract, fleet spec validation and synthetic determinism, and the
sweep engine's core guarantee: the sharded fleet sweep is bit-identical
to the serial per-point estimate loop — cold, on a warm reused pool,
after a worker death, and across pools sharing a spill directory.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import EHPConfig
from repro.core.node import NodeModel
from repro.fleet import (
    LinkTierParams,
    FleetGroup,
    FleetSpec,
    derate,
    derate_machine,
    derate_model,
    fleet_manifest,
    fleet_sweep,
    fleet_sweep_serial,
    synthetic_fleet,
)
from repro.fleet.bench import identical_results, run_fleet_bench
from repro.obs import trace as obs_trace
from repro.perf.evalcache import clear_cache
from repro.perf.pool import ShardedPool
from repro.perfmodel.machine import MachineParams
from repro.workloads.catalog import application_names, get_application

CUS = (192, 256, 320, 384)


def small_fleet(link=LinkTierParams(), seed=3):
    return synthetic_fleet(n_nodes=40, n_groups=2, seed=seed, link=link)


# ----------------------------------------------------------------------
# Link tier
# ----------------------------------------------------------------------
class TestLinkTier:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            LinkTierParams(n_links=0)
        with pytest.raises(ValueError):
            LinkTierParams(downlink_fraction=1.0)
        with pytest.raises(ValueError):
            LinkTierParams(protocol_efficiency=0.0)
        with pytest.raises(ValueError):
            LinkTierParams(contention_exponent=2.5)
        with pytest.raises(ValueError):
            LinkTierParams(arbitration_overhead=-0.1)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown link engine"):
            derate(LinkTierParams(), 0.2, engine="magic")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            derate(LinkTierParams(), 1.5)
        with pytest.raises(ValueError):
            derate(LinkTierParams(), 0.2, 0)

    def test_only_degrades(self):
        machine = MachineParams()
        for k in (1, 2, 4, 8):
            d = derate(LinkTierParams(), 0.3, k, machine)
            assert d.ext_bandwidth <= machine.ext_bandwidth
            assert d.ext_latency >= machine.ext_latency

    def test_contention_monotonic(self):
        machine = MachineParams()
        prev_bw, prev_lat = np.inf, 0.0
        for k in (1, 2, 3, 4, 6, 8):
            d = derate(LinkTierParams(), 0.3, k, machine)
            assert d.ext_bandwidth <= prev_bw
            assert d.ext_latency >= prev_lat
            prev_bw, prev_lat = d.ext_bandwidth, d.ext_latency

    def test_scalar_in_scalar_out(self):
        d = derate(LinkTierParams(), 0.25, 2)
        assert isinstance(d.ext_bandwidth, float)
        assert isinstance(d.ext_latency, float)

    @settings(max_examples=30, deadline=None)
    @given(
        w=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8
        ),
        k=st.integers(min_value=1, max_value=16),
    )
    def test_engines_bit_identical(self, w, k):
        params = LinkTierParams()
        w_arr = np.asarray(w, dtype=float)
        tensor = derate(params, w_arr, k, engine="tensor")
        point = derate(params, w_arr, k, engine="point")
        assert np.array_equal(tensor.ext_bandwidth, point.ext_bandwidth)
        assert np.array_equal(tensor.ext_latency, point.ext_latency)

    def test_derate_machine_fields(self):
        machine = MachineParams()
        derated = derate_machine(machine, LinkTierParams(), 0.3, 4)
        assert derated.ext_bandwidth < machine.ext_bandwidth
        assert derated.ext_latency > machine.ext_latency
        # Every other field untouched.
        assert derated.flops_per_cu_cycle == machine.flops_per_cu_cycle
        assert derated.mem_latency == machine.mem_latency

    def test_derate_model_none_is_identity(self):
        model = NodeModel()
        profile = get_application("CoMD")
        assert derate_model(model, None, profile) is model

    def test_derate_model_changes_external_results(self):
        model = NodeModel()
        profile = get_application("XSBench")
        derated = derate_model(model, LinkTierParams(), profile, 4)
        config = EHPConfig(n_cus=320, gpu_freq=1e9, bandwidth=1e12)
        base = model.evaluate(profile, config, ext_fraction=0.5)
        hit = derated.evaluate(profile, config, ext_fraction=0.5)
        assert float(hit.performance) <= float(base.performance)


# ----------------------------------------------------------------------
# Fleet specs
# ----------------------------------------------------------------------
class TestFleetSpec:
    def test_group_validation(self):
        p = get_application("CoMD")
        with pytest.raises(ValueError):
            FleetGroup(name="", profiles=(p,))
        with pytest.raises(ValueError):
            FleetGroup(name="g", profiles=())
        with pytest.raises(ValueError):
            FleetGroup(name="g", profiles=(p, p))
        with pytest.raises(ValueError):
            FleetGroup(name="g", profiles=(p,), n_nodes=0)
        with pytest.raises(ValueError):
            FleetGroup(name="g", profiles=(p,), concurrent_kernels=0)

    def test_spec_validation(self):
        p = get_application("CoMD")
        g = FleetGroup(name="g", profiles=(p,))
        with pytest.raises(ValueError):
            FleetSpec(groups=())
        with pytest.raises(ValueError):
            FleetSpec(groups=(g, g))
        with pytest.raises(ValueError):
            FleetSpec(groups=(g,), power_budget_mw=0.0)

    def test_synthetic_deterministic(self):
        a = synthetic_fleet(n_nodes=100, n_groups=3, seed=7)
        b = synthetic_fleet(n_nodes=100, n_groups=3, seed=7)
        assert a == b
        c = synthetic_fleet(n_nodes=100, n_groups=3, seed=8)
        assert a != c

    def test_synthetic_node_count_exact(self):
        spec = synthetic_fleet(n_nodes=137, n_groups=5, seed=0)
        assert spec.n_nodes == 137
        assert all(g.n_nodes >= 1 for g in spec.groups)

    def test_synthetic_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            synthetic_fleet(n_nodes=2, n_groups=3)


# ----------------------------------------------------------------------
# Fleet sweeps
# ----------------------------------------------------------------------
class TestFleetSweep:
    def test_inprocess_matches_serial(self):
        spec = small_fleet()
        clear_cache()
        serial = fleet_sweep_serial(spec, CUS)
        clear_cache()
        sharded = fleet_sweep(spec, CUS, pool=None)
        assert identical_results(serial, sharded)

    def test_serial_engine_delegates(self):
        spec = small_fleet()
        a = fleet_sweep(spec, CUS, engine="serial")
        b = fleet_sweep_serial(spec, CUS)
        assert identical_results(a, b)

    def test_no_link_tier_matches_plain_estimate(self):
        # Without a link tier, each series point is literally
        # ExascaleSystem.estimate at the profile's external fraction.
        from repro.core.exascale import ExascaleSystem

        profile = get_application("HPGMG")
        group = FleetGroup(name="g", profiles=(profile,), n_nodes=17)
        spec = FleetSpec(groups=(group,), link=None)
        result = fleet_sweep_serial(spec, CUS)
        system = ExascaleSystem(17, NodeModel())
        for i, n in enumerate(CUS):
            est = system.estimate(
                profile,
                group.config.with_axes(n_cus=n),
                ext_fraction=float(profile.ext_memory_fraction),
            )
            assert result.series_exaflops[("g", profile.name)][i] == \
                est.exaflops
            assert result.series_power_mw[("g", profile.name)][i] == \
                est.machine_power_mw

    def test_rejects_bad_inputs(self):
        spec = small_fleet()
        with pytest.raises(ValueError, match="unknown fleet engine"):
            fleet_sweep(spec, CUS, engine="magic")
        with pytest.raises(ValueError):
            fleet_sweep(spec, ())
        # Invalid CU counts are rejected eagerly, before any work ships.
        with pytest.raises(ValueError):
            fleet_sweep(spec, (321,), pool=None)

    def test_metrics_snapshot_counts_chunks(self):
        spec = small_fleet()
        clear_cache()
        _, snap = fleet_sweep(
            spec, CUS, pool=None, n_chunks=2, metrics=True
        )
        lookups = snap.counter("cache.eval.hits") + snap.counter(
            "cache.eval.misses"
        )
        assert lookups == spec.n_series * 2
        assert snap.counter("cache.eval.misses") == spec.n_series * 2
        # Warm repeat: all hits, zero recomputation.
        _, warm = fleet_sweep(
            spec, CUS, pool=None, n_chunks=2, metrics=True
        )
        assert warm.counter("cache.eval.misses") == 0
        assert warm.counter("cache.eval.hits") == spec.n_series * 2

    def test_fleet_chunks_render_connected_tree(self):
        # One pooled fleet sweep = one pool.run span whose chunk tasks
        # all hang off it, with worker-side spans carrying the shipped
        # contexts — a single connected tree in Perfetto.
        spec = small_fleet()
        clear_cache()
        tracer = obs_trace.Tracer(context=obs_trace.SpanContext.root("t1"))
        with ShardedPool(n_shards=2) as pool:
            with obs_trace.trace(tracer=tracer):
                fleet_sweep(spec, CUS, pool=pool)

        runs = [e for e in tracer.events if e["name"] == "pool.run"]
        assert len(runs) == 1
        run = runs[0]["args"]
        assert run["trace_id"] == "t1"
        assert run["span_id"] == "0.1"
        assert run["parent_id"] == "0"
        n_tasks = run["tasks"]
        chunks = [
            e for e in tracer.events if e["name"].startswith("fleet.")
        ]
        assert len(chunks) == n_tasks
        assert {e["args"]["trace_id"] for e in chunks} == {"t1"}
        assert {e["args"]["parent_id"] for e in chunks} == {"0.1"}
        assert {e["args"]["span_id"] for e in chunks} == {
            f"0.1.{i}" for i in range(1, n_tasks + 1)
        }
        # Chunk spans were recorded inside worker processes.
        assert all(e["pid"] != runs[0]["pid"] for e in chunks)

    def test_pooled_bit_identity_cold_warm_and_after_death(self, tmp_path):
        spec = synthetic_fleet(n_nodes=60, n_groups=3, seed=5)
        clear_cache()
        serial = fleet_sweep_serial(spec, CUS)
        spill = str(tmp_path / "spill")
        clear_cache()  # workers fork from the parent: start them cold
        with ShardedPool(n_shards=2) as pool:
            cold = fleet_sweep(spec, CUS, pool=pool, spill_dir=spill)
            assert identical_results(serial, cold)
            warm, snap = fleet_sweep(
                spec, CUS, pool=pool, metrics=True, spill_dir=spill
            )
            assert identical_results(serial, warm)
            assert snap.counter("cache.eval.misses") == 0
            pool.kill_worker(0)
            again = fleet_sweep(spec, CUS, pool=pool, spill_dir=spill)
            assert identical_results(serial, again)
            assert pool.stats().worker_restarts >= 1
            # Default chunking on 2 shards: 4 chunks per series.
            assert sum(pool.last_shard_task_counts()) == spec.n_series * 4

    def test_spill_dir_is_cross_pool_warm_tier(self, tmp_path):
        spec = small_fleet(seed=9)
        spill = str(tmp_path / "spill")
        clear_cache()
        with ShardedPool(n_shards=2) as pool:
            first, snap = fleet_sweep(
                spec, CUS, pool=pool, metrics=True, spill_dir=spill
            )
            assert snap.counter("cache.eval.misses") > 0
        clear_cache()  # the next pool's workers must not inherit warmth
        with ShardedPool(n_shards=2) as pool:
            second, snap = fleet_sweep(
                spec, CUS, pool=pool, metrics=True, spill_dir=spill
            )
            assert snap.counter("cache.eval.misses") == 0
            assert snap.counter("cache.eval.spill_hits") > 0
        assert identical_results(first, second)

    def test_manifest_section(self):
        spec = small_fleet()
        result = fleet_sweep_serial(spec, CUS)
        section = fleet_manifest(result)
        assert section["n_nodes"] == spec.n_nodes
        assert section["n_series"] == spec.n_series
        assert section["cu_counts"] == list(CUS)
        assert section["best"]["cu"] == result.best_cu
        assert "pool" not in section

    def test_best_index_respects_budget(self):
        profile = get_application("MaxFlops")
        group = FleetGroup(name="g", profiles=(profile,), n_nodes=100_000)
        # A tight budget forces the pick away from the raw argmax.
        spec = FleetSpec(groups=(group,), link=None, power_budget_mw=9.0)
        result = fleet_sweep_serial(spec, (192, 256, 320, 384))
        assert result.fleet_power_mw[result.best_index] <= 9.0
        unconstrained = FleetSpec(
            groups=(group,), link=None, power_budget_mw=1e9
        )
        free = fleet_sweep_serial(unconstrained, (192, 256, 320, 384))
        assert free.best_index == int(np.argmax(free.fleet_exaflops))
        assert free.best_index != result.best_index

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_groups=st.integers(min_value=1, max_value=4),
    )
    def test_rollup_invariants(self, seed, n_groups):
        spec = synthetic_fleet(
            n_nodes=10 * n_groups, n_groups=n_groups, seed=seed
        )
        result = fleet_sweep_serial(spec, (256, 320))
        # Fleet curves are the sum of group curves; group curves are
        # the mean of their series; everything is positive.
        fleet_exa = np.zeros(2)
        for g in spec.groups:
            series = [
                result.series_exaflops[(g.name, p.name)]
                for p in g.profiles
            ]
            expected = sum(series) / float(len(series))
            assert np.array_equal(result.group_exaflops[g.name], expected)
            fleet_exa = fleet_exa + result.group_exaflops[g.name]
        assert np.array_equal(result.fleet_exaflops, fleet_exa)
        assert np.all(result.fleet_exaflops > 0)
        assert np.all(result.fleet_power_mw > 0)
        assert 0 <= result.best_index < 2

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_sharded_matches_serial_on_random_fleets(self, seed):
        spec = synthetic_fleet(n_nodes=30, n_groups=2, seed=seed)
        clear_cache()
        serial = fleet_sweep_serial(spec, (256, 320))
        clear_cache()
        sharded = fleet_sweep(spec, (256, 320), pool=None, n_chunks=2)
        assert identical_results(serial, sharded)


# ----------------------------------------------------------------------
# Bench plumbing
# ----------------------------------------------------------------------
class TestFleetBench:
    def test_report_shape(self):
        report = run_fleet_bench(
            n_nodes=20,
            n_groups=2,
            seed=1,
            shards=2,
            cu_counts=(256, 320),
            warm_rounds=1,
        )
        assert report.identical
        assert report.n_nodes == 20
        assert report.n_points == 2
        d = report.as_dict()
        assert d["best"]["cu"] in (256, 320)
        assert "fleet bench:" in report.render()
        # grid_chunks clamps to the axis length: 2 chunks per series.
        assert sum(report.shard_task_counts) == report.n_series * 2

    def test_profile_catalog_covers_fleet(self):
        # synthetic_fleet draws from the live catalog by default.
        spec = synthetic_fleet(n_nodes=10, n_groups=2, seed=0)
        names = set(application_names())
        for g in spec.groups:
            for p in g.profiles:
                assert p.name in names
