"""Command-line interface (python -m repro)."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig8", "table2", "dse"):
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["fig14"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out
        assert "Exaflops" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "table1", "table2", "dse",
            *(f"fig{i}" for i in range(4, 15)),
        }
        assert expected <= set(EXPERIMENTS)

    def test_every_registered_experiment_runs(self):
        # Smoke-run the fast ones; the slow thermal pair is covered by
        # their dedicated tests and benches.
        skip = {"fig10", "fig11", "dse", "table2"}
        for name, fn in EXPERIMENTS.items():
            if name in skip:
                continue
            result = fn()
            assert result.rendered, name

    def test_metrics_and_trace_out(self, capsys, tmp_path):
        manifest_path = tmp_path / "obs" / "manifest.json"
        trace_path = tmp_path / "obs" / "trace.json"
        assert main([
            "fig7",
            "--metrics-out", str(manifest_path),
            "--trace-out", str(trace_path),
        ]) == 0
        assert "fig7" in capsys.readouterr().out

        import json

        manifest = json.loads(manifest_path.read_text())
        assert manifest["manifest_version"] >= 1
        assert manifest["experiments"] == ["fig7"]
        assert "fig7" in manifest["wall_times_s"]
        assert "counters" in manifest["metrics"]

        trace = json.loads(trace_path.read_text())
        names = [e["name"] for e in trace["traceEvents"]]
        assert "experiment.fig7" in names

    def test_pool_shards(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main([
            "fig7", "table1",
            "--pool-shards", "2",
            "--trace-out", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "Table I" in out

        import json
        import os

        # The pooled path runs each experiment under a worker-side span
        # that is merged back into the parent's trace.
        trace = json.loads(trace_path.read_text())
        events = {e["name"]: e for e in trace["traceEvents"]}
        assert "experiments.pool" in events
        assert "experiment.fig7" in events
        assert events["experiment.fig7"]["pid"] != os.getpid()
