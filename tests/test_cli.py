"""Command-line interface (python -m repro)."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig8", "table2", "dse"):
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["fig14"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out
        assert "Exaflops" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "table1", "table2", "dse",
            *(f"fig{i}" for i in range(4, 15)),
        }
        assert expected <= set(EXPERIMENTS)

    def test_every_registered_experiment_runs(self):
        # Smoke-run the fast ones; the slow thermal pair is covered by
        # their dedicated tests and benches.
        skip = {"fig10", "fig11", "dse", "table2"}
        for name, fn in EXPERIMENTS.items():
            if name in skip:
                continue
            result = fn()
            assert result.rendered, name
