"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works through the legacy editable path in offline
environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Design and Analysis of an APU for Exascale "
        "Computing' (HPCA 2017)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.21", "scipy>=1.7", "networkx>=2.6"],
)
