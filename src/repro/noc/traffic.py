"""Traffic matrices and out-of-chiplet traffic accounting (Fig. 7).

The paper's Finding 1 (Section V-A): 60-95% of memory-system traffic
leaves its source chiplet, because the physical address space is
interleaved across all eight DRAM stacks (7/8 of uniform accesses are
remote) and because CPU-GPU coherence crosses the package. Finding 2:
despite that, performance loss versus a hypothetical monolithic EHP is
at most ~13%, because wavefront parallelism hides the extra TSV and
interposer hops.

This module computes traffic matrices over the topology and summarizes
them into the two Fig. 7 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.routing import route
from repro.noc.topology import EHPTopology
from repro.perfmodel.machine import MachineParams
from repro.perfmodel.roofline import evaluate_kernel
from repro.workloads.kernels import KernelProfile

__all__ = ["TrafficMatrix", "chiplet_traffic_summary", "ChipletTrafficSummary"]


@dataclass(frozen=True)
class TrafficMatrix:
    """Bytes exchanged between every pair of topology vertices.

    ``sources``/``destinations`` name the rows/columns of ``bytes_``.
    """

    sources: tuple[str, ...]
    destinations: tuple[str, ...]
    bytes_: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.sources), len(self.destinations))
        if self.bytes_.shape != expected:
            raise ValueError(
                f"matrix shape {self.bytes_.shape} != {expected}"
            )
        if np.any(self.bytes_ < 0):
            raise ValueError("traffic must be non-negative")

    @property
    def total(self) -> float:
        """All bytes in the matrix."""
        return float(self.bytes_.sum())

    def out_of_chiplet_fraction(self, topology: EHPTopology) -> float:
        """Share of bytes whose source and destination are not the same
        vertical chiplet stack."""
        total = self.total
        if total == 0:
            return 0.0
        remote = 0.0
        for i, src in enumerate(self.sources):
            for j, dst in enumerate(self.destinations):
                if not topology.same_chiplet(src, dst):
                    remote += float(self.bytes_[i, j])
        return remote / total

    def mean_latency(self, topology: EHPTopology) -> float:
        """Traffic-weighted mean route latency, seconds."""
        total = self.total
        if total == 0:
            return 0.0
        acc = 0.0
        for i, src in enumerate(self.sources):
            for j, dst in enumerate(self.destinations):
                w = float(self.bytes_[i, j])
                if w:
                    acc += w * route(topology, src, dst).latency
        return acc / total


def gpu_dram_traffic_matrix(
    topology: EHPTopology,
    total_bytes: float,
    locality: float = 1.0 / 8.0,
    coherence_fraction: float = 0.03,
) -> TrafficMatrix:
    """Build the kernel-level traffic matrix.

    GPU chiplets issue *total_bytes* of DRAM traffic, interleaved across
    the eight stacks: each chiplet sends *locality* of its traffic to its
    own stack and the rest uniformly to the other seven (the paper's
    interleaved physical address space). A *coherence_fraction* of the
    total additionally flows between GPU chiplets and the CPU clusters.
    """
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    if not 0.0 <= coherence_fraction < 1.0:
        raise ValueError("coherence_fraction must be in [0, 1)")

    gpus = topology.gpu_chiplets
    drams = topology.dram_stacks
    cpus = topology.cpu_chiplets
    sources = tuple(gpus)
    destinations = tuple(drams) + tuple(cpus)
    n_gpu = len(gpus)
    matrix = np.zeros((len(sources), len(destinations)))

    mem_bytes = total_bytes * (1.0 - coherence_fraction)
    per_gpu = mem_bytes / n_gpu
    for i, gpu in enumerate(gpus):
        local = drams.index(topology.local_dram(gpu))
        for j in range(len(drams)):
            if j == local:
                matrix[i, j] += per_gpu * locality
            else:
                matrix[i, j] += per_gpu * (1.0 - locality) / (n_gpu - 1)

    coh_bytes = total_bytes * coherence_fraction
    per_pair = coh_bytes / (n_gpu * len(cpus))
    for i in range(n_gpu):
        for j in range(len(cpus)):
            matrix[i, len(drams) + j] += per_pair

    return TrafficMatrix(sources=sources, destinations=destinations, bytes_=matrix)


@dataclass(frozen=True)
class ChipletTrafficSummary:
    """The two Fig. 7 metrics for one application."""

    application: str
    out_of_chiplet_fraction: float
    perf_vs_monolithic: float

    def as_percentages(self) -> tuple[float, float]:
        """(out-of-chiplet %, performance-vs-monolithic %)."""
        return (
            self.out_of_chiplet_fraction * 100.0,
            self.perf_vs_monolithic * 100.0,
        )


def chiplet_traffic_summary(
    profile: KernelProfile,
    n_cus: float,
    freq: float,
    bandwidth: float,
    topology: EHPTopology | None = None,
    machine: MachineParams | None = None,
) -> ChipletTrafficSummary:
    """Compute Fig. 7's two bars for one application.

    The out-of-chiplet fraction comes from the interleaved traffic
    matrix, weighted by the profile's cache behaviour (cache-resident
    kernels keep a larger share of traffic on-chiplet — their LLC slices
    are local). The performance ratio re-evaluates the kernel with the
    chiplet organization's extra interposer latency versus the
    monolithic baseline.
    """
    topology = topology or EHPTopology()
    machine = machine or MachineParams()

    # Cache-friendly kernels resolve more traffic in their local LLC
    # slice, lowering the remote share below the 7/8 interleaving bound.
    locality = 1.0 / 8.0 + profile.cache_hit_rate * 0.25
    matrix = gpu_dram_traffic_matrix(
        topology, total_bytes=1.0, locality=locality
    )
    remote_fraction = matrix.out_of_chiplet_fraction(topology)

    extra = 2 * 5.0e-9 + 15.0e-9  # two TSV hops + interposer traversal
    chiplet = evaluate_kernel(
        profile, n_cus, freq, bandwidth, machine=machine,
        extra_latency=extra * remote_fraction,
    )
    monolithic = evaluate_kernel(
        profile, n_cus, freq, bandwidth, machine=machine, extra_latency=0.0
    )
    ratio = float(monolithic.time / chiplet.time)
    return ChipletTrafficSummary(
        application=profile.name,
        out_of_chiplet_fraction=remote_fraction,
        perf_vs_monolithic=ratio,
    )
