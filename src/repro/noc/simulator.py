"""Event-driven NoC simulator.

A small discrete-event network simulator over the EHP topology, used to
cross-check the analytic contention model: messages serialize over each
link at the link's bandwidth, queueing behind earlier arrivals, so
latency grows with offered load exactly the way the analytic model's
bounded queueing term approximates.

This is deliberately flit-free (store-and-forward per message): the goal
is first-order contention behaviour across a wide design space, matching
the paper's choice of high-level simulation over cycle-level detail.

The hot loop works on integers and flat lists rather than graph objects:
links are enumerated once into integer ids with a latency table, every
(src, dst) route is resolved once into a tuple of link ids, and per-link
occupancy lives in flat ``busy_until`` lists. :meth:`NocSimulator.run`
keeps its object API; :meth:`NocSimulator.run_batch` injects whole
column arrays without building a ``SimMessage`` per message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.noc.routing import route
from repro.noc.topology import EHPTopology

__all__ = ["SimMessage", "LinkStats", "SimResult", "NocSimulator"]


@dataclass(frozen=True)
class SimMessage:
    """One injected message."""

    src: str
    dst: str
    size_bytes: float
    inject_time: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.inject_time < 0:
            raise ValueError("inject_time must be non-negative")


@dataclass
class LinkStats:
    """Accumulated per-link occupancy."""

    busy_until: float = 0.0
    bytes_carried: float = 0.0
    messages: int = 0


@dataclass
class SimResult:
    """Aggregate simulation outcome.

    Per-link statistics ride along in :attr:`link_stats` (keyed by the
    ``frozenset`` of the link's endpoint names), so a result is
    self-contained — no state has to be fished back out of the simulator.
    """

    delivered: int
    makespan: float
    total_bytes: float
    latencies: list[float] = field(repr=False, default_factory=list)
    link_stats: Mapping[frozenset, LinkStats] = field(
        repr=False, default_factory=dict
    )
    link_bandwidth: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end message latency, seconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        """99th-percentile latency, seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    @property
    def throughput(self) -> float:
        """Delivered bytes per second over the makespan."""
        if self.makespan == 0:
            return 0.0
        return self.total_bytes / self.makespan

    def link_utilization(
        self, makespan: float | None = None
    ) -> dict[frozenset, float]:
        """Per-link busy fraction over *makespan* (default: the run's)."""
        span = self.makespan if makespan is None else makespan
        if span <= 0:
            raise ValueError("makespan must be positive")
        if self.link_bandwidth <= 0:
            raise ValueError("result carries no link bandwidth")
        return {
            k: min(1.0, s.bytes_carried / self.link_bandwidth / span)
            for k, s in self.link_stats.items()
        }


class NocSimulator:
    """Store-and-forward message simulator over the EHP topology.

    Parameters
    ----------
    topology:
        The package graph; defaults to the standard EHP build.
    link_bandwidth:
        Bytes/s each link can carry (wide in-package paths).
    """

    def __init__(
        self,
        topology: EHPTopology | None = None,
        link_bandwidth: float = 512.0e9,
    ):
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        self.topology = topology or EHPTopology()
        self.link_bandwidth = link_bandwidth
        self._route_cache: dict[tuple[str, str], tuple[str, ...]] = {}
        # Integer link tables, built once from the topology graph.
        self._link_names: list[frozenset] = []
        self._link_latency: list[float] = []
        self._link_id: dict[tuple[str, str], int] = {}
        for a, b, data in self.topology.graph.edges(data=True):
            lid = len(self._link_names)
            self._link_names.append(frozenset((a, b)))
            self._link_latency.append(float(data["latency"]))
            self._link_id[(a, b)] = lid
            self._link_id[(b, a)] = lid
        self._path_links: dict[tuple[str, str], tuple[int, ...]] = {}
        self._last_result: SimResult | None = None

    def _path(self, src: str, dst: str) -> tuple[str, ...]:
        key = (src, dst)
        if key not in self._route_cache:
            self._route_cache[key] = route(self.topology, src, dst).nodes
        return self._route_cache[key]

    def _links_for(self, src: str, dst: str) -> tuple[int, ...]:
        """The route from *src* to *dst* as a tuple of integer link ids."""
        key = (src, dst)
        cached = self._path_links.get(key)
        if cached is None:
            nodes = self._path(src, dst)
            cached = tuple(
                self._link_id[(a, b)] for a, b in zip(nodes, nodes[1:])
            )
            self._path_links[key] = cached
        return cached

    # ------------------------------------------------------------------
    def run(self, messages: Sequence[SimMessage]) -> SimResult:
        """Deliver *messages*, honouring per-link serialization.

        Each message claims every link of its path in order; a link busy
        with an earlier message delays it (FCFS per link). Returns
        aggregate latency/throughput statistics plus per-link stats.
        """
        if not messages:
            return self._finish(
                SimResult(delivered=0, makespan=0.0, total_bytes=0.0,
                          link_bandwidth=self.link_bandwidth)
            )
        return self._run(
            [m.src for m in messages],
            [m.dst for m in messages],
            [m.size_bytes for m in messages],
            [m.inject_time for m in messages],
        )

    def run_batch(
        self,
        srcs: Sequence[str],
        dsts: Sequence[str],
        size_bytes,
        inject_times,
    ) -> SimResult:
        """Batch-injection API: columns instead of message objects.

        *srcs* and *dsts* are node-name sequences; *size_bytes* and
        *inject_times* are array-likes (scalars broadcast). Semantics are
        identical to wrapping each row in a :class:`SimMessage` and
        calling :meth:`run`, without the per-object overhead.
        """
        n = len(srcs)
        if len(dsts) != n:
            raise ValueError("srcs and dsts must have equal length")
        sizes = np.broadcast_to(
            np.asarray(size_bytes, dtype=float), (n,)
        )
        times = np.broadcast_to(
            np.asarray(inject_times, dtype=float), (n,)
        )
        if n == 0:
            return self._finish(
                SimResult(delivered=0, makespan=0.0, total_bytes=0.0,
                          link_bandwidth=self.link_bandwidth)
            )
        if np.any(sizes <= 0):
            raise ValueError("size_bytes must be positive")
        if np.any(times < 0):
            raise ValueError("inject_time must be non-negative")
        return self._run(srcs, dsts, sizes.tolist(), times.tolist())

    # ------------------------------------------------------------------
    def _run(
        self,
        srcs: Sequence[str],
        dsts: Sequence[str],
        sizes: list[float],
        times: list[float],
    ) -> SimResult:
        with obs_trace.span("noc.run", messages=len(srcs)), \
                obs_metrics.timed("noc.run_seconds"):
            result = self._run_messages(srcs, dsts, sizes, times)
        obs_metrics.inc("noc.runs")
        obs_metrics.inc("noc.messages", result.delivered)
        obs_metrics.inc("noc.bytes", int(result.total_bytes))
        return result

    def _run_messages(
        self,
        srcs: Sequence[str],
        dsts: Sequence[str],
        sizes: list[float],
        times: list[float],
    ) -> SimResult:
        n = len(srcs)
        # Resolve every message's route to a path id once; identical
        # (src, dst) pairs share one integer-link tuple.
        pid_of: dict[tuple[str, str], int] = {}
        paths: list[tuple[int, ...]] = []
        msg_pid = [0] * n
        for k in range(n):
            key = (srcs[k], dsts[k])
            pid = pid_of.get(key)
            if pid is None:
                pid = len(paths)
                pid_of[key] = pid
                paths.append(self._links_for(*key))
            msg_pid[k] = pid

        # FCFS by injection time, ties broken by injection order (the
        # same order the previous heap-based implementation processed).
        order = np.argsort(np.asarray(times), kind="stable").tolist()

        bandwidth = self.link_bandwidth
        busy = [0.0] * len(self._link_names)
        lat = self._link_latency
        latencies: list[float] = []
        append_latency = latencies.append
        makespan = 0.0
        total_bytes = 0.0
        path_bytes = [0.0] * len(paths)
        path_msgs = [0] * len(paths)

        for k in order:
            t0 = times[k]
            size = sizes[k]
            serialize = size / bandwidth
            pid = msg_pid[k]
            t = t0
            for li in paths[pid]:
                b = busy[li]
                start = b if b > t else t
                end = start + serialize
                busy[li] = end
                t = end + lat[li]
            append_latency(t - t0)
            if t > makespan:
                makespan = t
            total_bytes += size
            path_bytes[pid] += size
            path_msgs[pid] += 1

        link_stats: dict[frozenset, LinkStats] = {}
        for pid, links in enumerate(paths):
            if not path_msgs[pid]:
                continue
            for li in links:
                stats = link_stats.get(self._link_names[li])
                if stats is None:
                    stats = LinkStats()
                    link_stats[self._link_names[li]] = stats
                stats.bytes_carried += path_bytes[pid]
                stats.messages += path_msgs[pid]
                stats.busy_until = busy[li]

        return self._finish(
            SimResult(
                delivered=n,
                makespan=makespan,
                total_bytes=total_bytes,
                latencies=latencies,
                link_stats=link_stats,
                link_bandwidth=bandwidth,
            )
        )

    def _finish(self, result: SimResult) -> SimResult:
        self._last_result = result
        return result

    # ------------------------------------------------------------------
    def link_utilization(self, makespan: float) -> dict[frozenset, float]:
        """Per-link busy fraction over *makespan* (after a run).

        Prefer :meth:`SimResult.link_utilization` on the returned result;
        this method reads the last run and raises if none has happened
        (instead of silently returning ``{}``).
        """
        if makespan <= 0:
            raise ValueError("makespan must be positive")
        if self._last_result is None:
            raise RuntimeError(
                "link_utilization needs a completed run(); none yet"
            )
        return self._last_result.link_utilization(makespan)
