"""Event-driven NoC simulator.

A small discrete-event network simulator over the EHP topology, used to
cross-check the analytic contention model: messages serialize over each
link at the link's bandwidth, queueing behind earlier arrivals, so
latency grows with offered load exactly the way the analytic model's
bounded queueing term approximates.

This is deliberately flit-free (store-and-forward per message): the goal
is first-order contention behaviour across a wide design space, matching
the paper's choice of high-level simulation over cycle-level detail.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.noc.routing import route
from repro.noc.topology import EHPTopology

__all__ = ["SimMessage", "LinkStats", "NocSimulator"]


@dataclass(frozen=True)
class SimMessage:
    """One injected message."""

    src: str
    dst: str
    size_bytes: float
    inject_time: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.inject_time < 0:
            raise ValueError("inject_time must be non-negative")


@dataclass
class LinkStats:
    """Accumulated per-link occupancy."""

    busy_until: float = 0.0
    bytes_carried: float = 0.0
    messages: int = 0


@dataclass
class SimResult:
    """Aggregate simulation outcome."""

    delivered: int
    makespan: float
    total_bytes: float
    latencies: list[float] = field(repr=False, default_factory=list)

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end message latency, seconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        """99th-percentile latency, seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    @property
    def throughput(self) -> float:
        """Delivered bytes per second over the makespan."""
        if self.makespan == 0:
            return 0.0
        return self.total_bytes / self.makespan


class NocSimulator:
    """Store-and-forward message simulator over the EHP topology.

    Parameters
    ----------
    topology:
        The package graph; defaults to the standard EHP build.
    link_bandwidth:
        Bytes/s each link can carry (wide in-package paths).
    """

    def __init__(
        self,
        topology: EHPTopology | None = None,
        link_bandwidth: float = 512.0e9,
    ):
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        self.topology = topology or EHPTopology()
        self.link_bandwidth = link_bandwidth
        self._route_cache: dict[tuple[str, str], tuple[str, ...]] = {}

    def _path(self, src: str, dst: str) -> tuple[str, ...]:
        key = (src, dst)
        if key not in self._route_cache:
            self._route_cache[key] = route(self.topology, src, dst).nodes
        return self._route_cache[key]

    def run(self, messages: list[SimMessage]) -> SimResult:
        """Deliver *messages*, honouring per-link serialization.

        Each message claims every link of its path in order; a link busy
        with an earlier message delays it (FCFS per link). Returns
        aggregate latency/throughput statistics.
        """
        if not messages:
            return SimResult(delivered=0, makespan=0.0, total_bytes=0.0)
        links: dict[frozenset, LinkStats] = {}
        counter = itertools.count()
        heap: list[tuple[float, int, SimMessage]] = []
        for m in messages:
            heapq.heappush(heap, (m.inject_time, next(counter), m))

        latencies: list[float] = []
        makespan = 0.0
        total_bytes = 0.0
        while heap:
            now, _, msg = heapq.heappop(heap)
            path = self._path(msg.src, msg.dst)
            t = now
            for a, b in zip(path, path[1:]):
                edge = self.topology.graph.edges[a, b]
                link = links.setdefault(frozenset((a, b)), LinkStats())
                start = max(t, link.busy_until)
                serialize = msg.size_bytes / self.link_bandwidth
                done = start + serialize + edge["latency"]
                link.busy_until = start + serialize
                link.bytes_carried += msg.size_bytes
                link.messages += 1
                t = done
            latencies.append(t - msg.inject_time)
            makespan = max(makespan, t)
            total_bytes += msg.size_bytes

        self.links = links
        return SimResult(
            delivered=len(messages),
            makespan=makespan,
            total_bytes=total_bytes,
            latencies=latencies,
        )

    def link_utilization(self, makespan: float) -> dict[frozenset, float]:
        """Per-link busy fraction over *makespan* (after :meth:`run`)."""
        if makespan <= 0:
            raise ValueError("makespan must be positive")
        return {
            k: min(1.0, s.bytes_carried / self.link_bandwidth / makespan)
            for k, s in getattr(self, "links", {}).items()
        }
