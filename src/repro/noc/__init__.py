"""Chiplet and interposer network-on-chip substrate.

Models the EHP's physical organization (Section II-A, Fig. 2): two CPU
clusters of four chiplets each on active interposers, flanked by four GPU
clusters of two chiplets each, a DRAM stack atop every GPU chiplet, and
wide point-to-point paths between interposers. Provides:

* :mod:`repro.noc.topology` — the chiplet/interposer graph,
* :mod:`repro.noc.routing` — hop counts and latency accounting (TSV hops
  up/down plus interposer traversal),
* :mod:`repro.noc.traffic` — traffic matrices and out-of-chiplet traffic
  fractions (Fig. 7's first finding),
* :mod:`repro.noc.simulator` — a small event-driven network simulator
  used to cross-check contention behaviour.
"""

from repro.noc.topology import EHPTopology, NodeKind
from repro.noc.routing import Route, hop_latency, route
from repro.noc.traffic import TrafficMatrix, chiplet_traffic_summary
from repro.noc.simulator import NocSimulator, SimMessage

__all__ = [
    "EHPTopology",
    "NodeKind",
    "Route",
    "route",
    "hop_latency",
    "TrafficMatrix",
    "chiplet_traffic_summary",
    "NocSimulator",
    "SimMessage",
]
