"""Routing and latency accounting over the EHP topology.

Messages route along shortest latency-weighted paths. An out-of-chiplet
message pays the Section V-A structure: TSV down to the source
interposer, zero or more interposer-to-interposer traversals, TSV up into
the destination chiplet. A GPU's access to its own stacked DRAM pays only
the 3D-stack hop — the physical reason the paper stacks memory directly
on the compute die.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.noc.topology import EHPTopology

__all__ = ["Route", "route", "hop_latency", "monolithic_latency"]


@dataclass(frozen=True)
class Route:
    """A resolved path through the package."""

    nodes: tuple[str, ...]
    latency: float
    tsv_hops: int
    interposer_hops: int

    @property
    def n_hops(self) -> int:
        """Total link traversals."""
        return len(self.nodes) - 1

    @property
    def crosses_chiplet(self) -> bool:
        """Did the message leave its source chiplet's vertical stack?"""
        return self.interposer_hops > 0 or self.tsv_hops > 0


def route(topology: EHPTopology, src: str, dst: str) -> Route:
    """Shortest latency-weighted route from *src* to *dst*."""
    if src not in topology.graph or dst not in topology.graph:
        raise KeyError(f"unknown endpoint: {src!r} or {dst!r}")
    path = nx.shortest_path(topology.graph, src, dst, weight="latency")
    latency = 0.0
    tsv_hops = 0
    interposer_hops = 0
    for a, b in zip(path, path[1:]):
        edge = topology.graph.edges[a, b]
        latency += edge["latency"]
        if edge["kind"] == "tsv":
            tsv_hops += 1
        elif edge["kind"] == "interposer-interposer":
            interposer_hops += 1
    return Route(
        nodes=tuple(path),
        latency=latency,
        tsv_hops=tsv_hops,
        interposer_hops=interposer_hops,
    )


def hop_latency(topology: EHPTopology, src: str, dst: str) -> float:
    """Just the latency of the shortest route."""
    return route(topology, src, dst).latency


def monolithic_latency(topology: EHPTopology, src: str, dst: str) -> float:
    """Latency the same message would see on a hypothetical monolithic
    EHP: the chiplet route minus the two TSV hops (Section V-A's
    comparison baseline — on one huge die, the vertical chiplet
    crossings disappear but the lateral distance remains)."""
    r = route(topology, src, dst)
    tsv_edges = [
        topology.graph.edges[a, b]["latency"]
        for a, b in zip(r.nodes, r.nodes[1:])
        if topology.graph.edges[a, b]["kind"] == "tsv"
    ]
    return r.latency - sum(tsv_edges)
