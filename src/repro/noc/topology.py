"""The EHP's chiplet/interposer topology graph.

Builds the physical organization of Fig. 2 as a :mod:`networkx` graph:

* 8 GPU chiplets in 4 clusters of 2, each chiplet carrying a DRAM stack,
* 8 CPU chiplets in 2 central clusters of 4,
* one active interposer per cluster (6 total), connected to its chiplets
  by TSV links and to neighbouring interposers by wide in-package paths,
* 8 external-memory interfaces hanging off the GPU-cluster interposers.

Edge attributes carry per-hop latency and the physical kind of link, so
the routing layer can price any path. The layout is linear (Fig. 2's
left-to-right arrangement: G G | C C | G G clusters), giving the CPU
clusters their deliberately central, NUMA-minimizing position.
"""

from __future__ import annotations

import enum
import networkx as nx

from repro.util.units import NS

__all__ = ["NodeKind", "EHPTopology"]


class NodeKind(enum.Enum):
    """What a vertex in the topology graph represents."""

    GPU_CHIPLET = "gpu"
    CPU_CHIPLET = "cpu"
    DRAM_STACK = "dram"
    INTERPOSER = "interposer"
    EXT_INTERFACE = "ext"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# Per-hop latencies (Section V-A: two extra vertical hops via TSVs plus
# interposer traversal for any out-of-chiplet message).
TSV_HOP_LATENCY = 5.0 * NS
INTERPOSER_HOP_LATENCY = 10.0 * NS
INTERPOSER_CROSS_LATENCY = 15.0 * NS
DRAM_STACK_LATENCY = 2.0 * NS


class EHPTopology:
    """The EHP package as an annotated undirected graph.

    Node names are strings: ``gpu0..gpu7``, ``cpu0..cpu7``,
    ``dram0..dram7``, ``intp0..intp5``, ``ext0..ext7``. Interposers
    0, 1, 4, 5 are GPU-cluster interposers (in the paper's left-to-right
    order); 2 and 3 are the central CPU-cluster interposers.
    """

    N_GPU_CHIPLETS = 8
    N_CPU_CHIPLETS = 8
    N_INTERPOSERS = 6
    N_EXT_INTERFACES = 8

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._build()

    # ------------------------------------------------------------------
    def _add(self, name: str, kind: NodeKind, interposer: int | None = None):
        self.graph.add_node(name, kind=kind, interposer=interposer)

    def _link(self, a: str, b: str, kind: str, latency: float) -> None:
        self.graph.add_edge(a, b, kind=kind, latency=latency)

    def _build(self) -> None:
        # Interposers in physical left-to-right order: GPU, GPU, CPU,
        # CPU, GPU, GPU.
        gpu_interposers = [0, 1, 4, 5]
        cpu_interposers = [2, 3]
        for i in range(self.N_INTERPOSERS):
            self._add(f"intp{i}", NodeKind.INTERPOSER)
        # Neighbouring interposers connect with wide point-to-point paths.
        for i in range(self.N_INTERPOSERS - 1):
            self._link(
                f"intp{i}", f"intp{i + 1}", "interposer-interposer",
                INTERPOSER_CROSS_LATENCY,
            )

        # Two GPU chiplets per GPU-cluster interposer; a DRAM stack on
        # each GPU chiplet; an external interface per GPU chiplet's
        # interposer position (8 total).
        gpu = 0
        for intp in gpu_interposers:
            for _ in range(2):
                g, d, e = f"gpu{gpu}", f"dram{gpu}", f"ext{gpu}"
                self._add(g, NodeKind.GPU_CHIPLET, intp)
                self._add(d, NodeKind.DRAM_STACK, intp)
                self._add(e, NodeKind.EXT_INTERFACE, intp)
                self._link(g, f"intp{intp}", "tsv", TSV_HOP_LATENCY)
                self._link(d, g, "3d-stack", DRAM_STACK_LATENCY)
                self._link(e, f"intp{intp}", "io", INTERPOSER_HOP_LATENCY)
                gpu += 1

        # Four CPU chiplets per central interposer.
        cpu = 0
        for intp in cpu_interposers:
            for _ in range(4):
                c = f"cpu{cpu}"
                self._add(c, NodeKind.CPU_CHIPLET, intp)
                self._link(c, f"intp{intp}", "tsv", TSV_HOP_LATENCY)
                cpu += 1

    # ------------------------------------------------------------------
    def nodes_of_kind(self, kind: NodeKind) -> list[str]:
        """All vertex names of one kind, in index order."""
        names = [
            n for n, data in self.graph.nodes(data=True) if data["kind"] is kind
        ]
        return sorted(names, key=lambda n: int("".join(filter(str.isdigit, n))))

    @property
    def gpu_chiplets(self) -> list[str]:
        """The eight GPU chiplet vertices."""
        return self.nodes_of_kind(NodeKind.GPU_CHIPLET)

    @property
    def cpu_chiplets(self) -> list[str]:
        """The eight CPU chiplet vertices."""
        return self.nodes_of_kind(NodeKind.CPU_CHIPLET)

    @property
    def dram_stacks(self) -> list[str]:
        """The eight in-package DRAM stack vertices."""
        return self.nodes_of_kind(NodeKind.DRAM_STACK)

    def local_dram(self, gpu: str) -> str:
        """The DRAM stack sitting directly on *gpu*."""
        if not gpu.startswith("gpu"):
            raise ValueError(f"{gpu!r} is not a GPU chiplet")
        return "dram" + gpu[3:]

    def interposer_of(self, node: str) -> int | None:
        """Which interposer a chiplet sits on (None for interposers)."""
        return self.graph.nodes[node]["interposer"]

    def same_chiplet(self, a: str, b: str) -> bool:
        """True when *b* is *a*'s own 3D-stacked DRAM (or vice versa) or
        the same vertex — i.e., no interposer traversal is needed."""
        if a == b:
            return True
        pair = {a, b}
        for gpu in self.gpu_chiplets:
            if pair == {gpu, self.local_dram(gpu)}:
                return True
        return False

    def validate(self) -> None:
        """Sanity-check structural invariants; raises on violation."""
        expected = {
            NodeKind.GPU_CHIPLET: self.N_GPU_CHIPLETS,
            NodeKind.CPU_CHIPLET: self.N_CPU_CHIPLETS,
            NodeKind.DRAM_STACK: self.N_GPU_CHIPLETS,
            NodeKind.INTERPOSER: self.N_INTERPOSERS,
            NodeKind.EXT_INTERFACE: self.N_EXT_INTERFACES,
        }
        for kind, count in expected.items():
            actual = len(self.nodes_of_kind(kind))
            if actual != count:
                raise AssertionError(f"{kind}: expected {count}, got {actual}")
        if not nx.is_connected(self.graph):
            raise AssertionError("topology must be connected")
