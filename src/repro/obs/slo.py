"""Rolling-window SLO health tracking for the serving layer.

The metrics registry's histograms accumulate over the whole process
lifetime — the right shape for "where did the time go", the wrong one
for "are we healthy *right now*". An :class:`SloTracker` keeps the last
``window_s`` seconds of per-request outcomes and derives the live
signals an operator pages on:

* latency quantiles (p50/p99) over successful requests in the window,
* shed and error rates over all requests in the window,
* error-budget burn: the fraction of the configured budget (allowed
  bad-request rate) the current window consumes, and what remains.

:class:`~repro.serve.service.EvalService` records every drained outcome
here and republishes the derived values as ``serve.slo.*`` gauges, so
the live export stream (:mod:`repro.obs.export`) and the serve manifest
section both carry them. The clock is injected; tests drive the window
deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable

from repro.obs import metrics as _metrics

__all__ = ["SloTracker"]

_OK = "ok"
_SHED = "shed"
_ERROR = "error"


def _categorize(status: str) -> str:
    """Collapse a serve response status into ok / shed / error."""
    if status == "ok":
        return _OK
    if status.startswith("shed") or status == "expired":
        return _SHED
    return _ERROR  # failed, shutdown, anything unexpected


def _rank_quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of a sorted sample (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class SloTracker:
    """Sliding-window request-health accounting.

    Parameters
    ----------
    window_s:
        How much history the rates and quantiles cover.
    target_p99_s:
        The latency objective; :meth:`health` reports whether the
        window's p99 meets it.
    error_budget:
        Allowed bad-request (shed + error) fraction. Budget burn is the
        window's bad rate over this allowance — 1.0 means the window
        exactly exhausts the budget, above 1.0 the SLO is violated.
    clock:
        Zero-argument monotonic-seconds callable (injected in tests).
    registry:
        Where :meth:`publish` writes gauges. ``None`` uses the
        module-level helpers (respecting the global enable flag).
    prefix:
        Gauge name prefix (default ``"serve.slo"``).
    """

    def __init__(
        self,
        *,
        window_s: float = 60.0,
        target_p99_s: float = 0.25,
        error_budget: float = 0.01,
        clock: Callable[[], float] = time.monotonic,
        registry: "_metrics.MetricsRegistry | None" = None,
        prefix: str = "serve.slo",
    ):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 < error_budget <= 1.0:
            raise ValueError("error_budget must be in (0, 1]")
        self.window_s = float(window_s)
        self.target_p99_s = float(target_p99_s)
        self.error_budget = float(error_budget)
        self._clock = clock
        self._registry = registry
        self.prefix = prefix
        self._lock = threading.Lock()
        # (monotonic time, latency seconds or None, category)
        self._events: deque[tuple[float, float | None, str]] = deque()

    # ------------------------------------------------------------------
    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        events = self._events
        while events and events[0][0] < horizon:
            events.popleft()

    def record(
        self, latency_s: float | None, status: str = "ok"
    ) -> None:
        """Add one finished request to the window.

        *latency_s* only feeds the quantiles for successful requests;
        shed/errored requests count toward the rates regardless.
        """
        now = self._clock()
        category = _categorize(status)
        with self._lock:
            self._events.append(
                (now, float(latency_s) if latency_s is not None else None,
                 category)
            )
            self._prune(now)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The window's derived SLO signals as a plain dict."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            events = list(self._events)
        n = len(events)
        latencies = sorted(
            lat for _, lat, cat in events
            if cat == _OK and lat is not None
        )
        n_ok = sum(1 for _, _, cat in events if cat == _OK)
        n_shed = sum(1 for _, _, cat in events if cat == _SHED)
        n_error = n - n_ok - n_shed
        shed_rate = n_shed / n if n else 0.0
        error_rate = n_error / n if n else 0.0
        bad_rate = shed_rate + error_rate
        budget_burn = bad_rate / self.error_budget
        p99 = _rank_quantile(latencies, 0.99)
        return {
            "window_s": self.window_s,
            "requests": n,
            "ok": n_ok,
            "shed": n_shed,
            "errors": n_error,
            "p50_latency_s": _rank_quantile(latencies, 0.50),
            "p99_latency_s": p99,
            "target_p99_s": self.target_p99_s,
            "p99_within_target": bool(p99 <= self.target_p99_s),
            "shed_rate": shed_rate,
            "error_rate": error_rate,
            "error_budget": self.error_budget,
            "budget_burn": budget_burn,
            "budget_remaining": 1.0 - budget_burn,
        }

    def publish(self) -> dict:
        """Write the window's signals as ``<prefix>.*`` gauges and
        return them (booleans publish as 0/1)."""
        health = self.health()
        for key in (
            "requests",
            "p50_latency_s",
            "p99_latency_s",
            "p99_within_target",
            "shed_rate",
            "error_rate",
            "budget_burn",
            "budget_remaining",
        ):
            name = f"{self.prefix}.{key}"
            value = float(health[key])
            if self._registry is None:
                _metrics.set_gauge(name, value)
            else:
                self._registry.set_gauge(name, value)
        return health
