"""Node-wide observability: metrics registry, span tracing, manifests.

Three pieces, layered from always-on to opt-in:

* :mod:`repro.obs.metrics` — process-wide counters/gauges/timing
  histograms with mergeable snapshots; cheap enough that the hot layers
  publish into it unconditionally.
* :mod:`repro.obs.trace` — ``span()``/``trace()`` context-manager
  tracing that emits Chrome trace-event JSON (Perfetto-loadable);
  no-op until a tracer is installed.
* :mod:`repro.obs.manifest` — one-JSON-per-run manifests combining git
  revision, engine choices, cache counters, wall times, and the metrics
  snapshot (imported lazily: it reaches back into the instrumented
  layers, and eager import would cycle).
* :mod:`repro.obs.proc` — process-memory readings (RSS and peak RSS)
  published as gauges, per run manifest and per pool worker.
"""

from repro.obs import metrics, proc, trace
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    default_registry,
)
from repro.obs.trace import Tracer, active_tracer, span

__all__ = [
    "metrics",
    "proc",
    "trace",
    "manifest",
    "MetricsRegistry",
    "MetricsSnapshot",
    "default_registry",
    "Tracer",
    "active_tracer",
    "span",
]


def __getattr__(name):
    if name == "manifest":
        import importlib

        return importlib.import_module("repro.obs.manifest")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
