"""Node-wide observability: metrics registry, span tracing, manifests.

Three pieces, layered from always-on to opt-in:

* :mod:`repro.obs.metrics` — process-wide counters/gauges/timing
  histograms with mergeable snapshots; cheap enough that the hot layers
  publish into it unconditionally.
* :mod:`repro.obs.trace` — ``span()``/``trace()`` context-manager
  tracing that emits Chrome trace-event JSON (Perfetto-loadable);
  no-op until a tracer is installed.
* :mod:`repro.obs.manifest` — one-JSON-per-run manifests combining git
  revision, engine choices, cache counters, wall times, and the metrics
  snapshot (imported lazily: it reaches back into the instrumented
  layers, and eager import would cycle).
* :mod:`repro.obs.proc` — process-memory readings (RSS and peak RSS)
  published as gauges, per run manifest, per pool worker batch, and per
  sampler interval.
* :mod:`repro.obs.export` — Prometheus text formatting and the
  :class:`~repro.obs.export.PeriodicSampler` JSONL time-series export
  (``--metrics-export``).
* :mod:`repro.obs.slo` — rolling-window latency/shed/error-budget
  health tracking, published by the serving layer.
* :mod:`repro.obs.report` — run reports and BENCH_* regression diffs
  (``python -m repro obs report`` / ``obs diff``; imported lazily like
  the manifest module).
"""

from repro.obs import export, metrics, proc, slo, trace
from repro.obs.export import PeriodicSampler
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    default_registry,
)
from repro.obs.slo import SloTracker
from repro.obs.trace import SpanContext, Tracer, active_tracer, span

__all__ = [
    "metrics",
    "proc",
    "trace",
    "export",
    "slo",
    "manifest",
    "report",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PeriodicSampler",
    "SloTracker",
    "default_registry",
    "SpanContext",
    "Tracer",
    "active_tracer",
    "span",
]


def __getattr__(name):
    if name in ("manifest", "report"):
        import importlib

        return importlib.import_module(f"repro.obs.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
