"""Process-wide metrics: counters, gauges, timing histograms.

The registry is the always-on half of the observability layer: the hot
layers (:mod:`repro.sim.apu_sim`, the memsys engines, the NoC and
thermal solvers, the evaluation caches) publish *per-run* counters and
timings into the process-wide default registry, so any sweep can be
asked afterwards where its time went and which caches actually hit —
without enabling anything up front.

Design constraints, in order:

* **Cheap enough to be always on.** Instrumentation happens at run/
  batch granularity (one handful of dict updates per simulator run, not
  per trace row), and the module-level helpers check a single flag
  before touching the registry. ``benchmarks/check_perf.py`` gates the
  end-to-end overhead at <= 5% on the 50k calibration trace
  (``check_obs_overhead``).
* **Mergeable across processes.** :meth:`MetricsRegistry.snapshot`
  returns a plain-data :class:`MetricsSnapshot` that pickles cleanly
  and supports ``merge`` (sum counters and histogram buckets) and
  ``diff`` (subtract an earlier snapshot), which is how
  :func:`repro.perf.parallel.parallel_explore` workers report back and
  the parent aggregates.
* **Fixed-bucket histograms.** Timings land in log-spaced fixed buckets
  (:data:`DEFAULT_BUCKETS`), so merging never has to re-bin and the
  snapshot size is constant.

Counters and gauges are plain name -> number maps; dotted names
(``"sim.apu.runs"``, ``"cache.eval.hits"``) are a convention, not a
structure the registry interprets.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "MetricsSnapshot",
    "MetricsRegistry",
    "default_registry",
    "metrics_enabled",
    "set_metrics_enabled",
    "disabled",
    "inc",
    "set_gauge",
    "observe",
    "timed",
    "snapshot",
]

DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)
"""Upper bounds (seconds) of the fixed timing buckets; one overflow
bucket rides after the last bound."""


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen fixed-bucket histogram state.

    ``counts`` has ``len(bounds) + 1`` entries: ``counts[i]`` holds
    observations ``v <= bounds[i]``, and the final entry is the overflow
    bucket.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    total: float
    count: int

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Conservative quantile estimate from the fixed buckets.

        Returns the upper bound of the bucket the *q*-th observation
        falls in — an over-estimate by at most one bucket width, which
        is the right bias for deadline math (the serving layer sizes
        batches off these). The overflow bucket reports ``inf``; an
        empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return float("inf")

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise sum; both sides must share bucket bounds."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
        )

    def diff(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise subtraction of an *earlier* snapshot of the same
        histogram."""
        if self.bounds != earlier.bounds:
            raise ValueError("cannot diff histograms with different buckets")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            total=self.total - earlier.total,
            count=self.count - earlier.count,
        )

    def as_dict(self) -> dict:
        """JSON-ready plain-dict form."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "mean": self.mean,
        }


def _merge_maps(a: Mapping[str, float], b: Mapping[str, float]) -> dict:
    out = dict(a)
    for name, value in b.items():
        out[name] = out.get(name, 0) + value
    return out


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen, picklable view of a registry at one instant.

    This is the unit the process boundary moves: workers snapshot their
    registries, the parent merges the snapshots. ``merge`` sums counters
    and histogram buckets; gauges are last-writer-wins (the right-hand
    operand's value survives a name collision, since summing point-in-
    time readings is meaningless).
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, HistogramSnapshot] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The merge identity."""
        return cls()

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's value (``default`` when never incremented)."""
        return self.counters.get(name, default)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots (e.g. from two worker processes)."""
        hists = dict(self.histograms)
        for name, h in other.histograms.items():
            hists[name] = hists[name].merge(h) if name in hists else h
        return MetricsSnapshot(
            counters=_merge_maps(self.counters, other.counters),
            gauges={**self.gauges, **other.gauges},
            histograms=hists,
        )

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus an *earlier* one from the same registry
        (gauges keep their current values — they are readings, not
        accumulations)."""
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        counters = {n: v for n, v in counters.items() if v}
        hists = {}
        for name, h in self.histograms.items():
            if name in earlier.histograms:
                h = h.diff(earlier.histograms[name])
            if h.count:
                hists[name] = h
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=hists
        )

    def as_dict(self) -> dict:
        """JSON-ready plain-dict form (manifest payload)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """Thread-safe counter/gauge/histogram store.

    Parameters
    ----------
    buckets:
        Upper bounds of the timing histogram buckets, ascending. All
        histograms in one registry share them, which is what keeps
        snapshots mergeable without re-binning.
    clock:
        Zero-argument monotonic-seconds callable used by :meth:`timed`;
        defaults to :func:`time.perf_counter`. Injectable so tests can
        assert exact durations.
    """

    def __init__(
        self,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        clock: Callable[[], float] | None = None,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be ascending and non-empty")
        self.buckets = bounds
        self._clock = clock or perf_counter
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        # name -> [bucket counts (len+1), total, count]
        self._hists: dict[str, list] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add *value* to a counter (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time reading."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation (seconds, typically) to a histogram."""
        value = float(value)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._hists[name] = hist
            hist[0][idx] += 1
            hist[1] += value
            hist[2] += 1

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Time a block into histogram *name* (wall perf_counter)."""
        t0 = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - t0)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Frozen copy of the current state (picklable, mergeable)."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: HistogramSnapshot(
                        bounds=self.buckets,
                        counts=tuple(h[0]),
                        total=h[1],
                        count=h[2],
                    )
                    for name, h in self._hists.items()
                },
            )

    def clear(self) -> None:
        """Drop every counter, gauge, and histogram."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


_default_registry = MetricsRegistry()
_enabled = True


def default_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation targets."""
    return _default_registry


def metrics_enabled() -> bool:
    """Whether the module-level helpers currently record anything."""
    return _enabled


def set_metrics_enabled(flag: bool) -> bool:
    """Turn the module-level fast path on/off; returns the old value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily silence the module-level helpers (the un-instrumented
    baseline the overhead gate measures against)."""
    previous = set_metrics_enabled(False)
    try:
        yield
    finally:
        set_metrics_enabled(previous)


# ----------------------------------------------------------------------
# Module-level fast path: one flag check before any work. This is what
# the instrumented hot layers call.
# ----------------------------------------------------------------------
def inc(name: str, value: int = 1) -> None:
    """Increment a default-registry counter (no-op when disabled)."""
    if _enabled:
        _default_registry.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a default-registry gauge (no-op when disabled)."""
    if _enabled:
        _default_registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Observe into a default-registry histogram (no-op when disabled)."""
    if _enabled:
        _default_registry.observe(name, value)


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Time a block into the default registry (no-op when disabled)."""
    if not _enabled:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        _default_registry.observe(name, perf_counter() - t0)


def snapshot() -> MetricsSnapshot:
    """Snapshot of the default registry."""
    return _default_registry.snapshot()
