"""Run manifests: one JSON per experiment run recording what ran.

A manifest captures everything needed to attribute and reproduce a
result after the process is gone: the git revision, the default model's
value fingerprint, which engines the simulators default to, every
shared evaluation cache's hit/miss/spill counters, wall times, and the
full metrics-registry snapshot. ``python -m repro ... --metrics-out
manifest.json`` and ``benchmarks/check_perf.py --metrics-out`` both
write one; CI uploads them as workflow artifacts so perf trajectories
stay inspectable per commit.

Imports of the model/cache layers happen inside the builder functions:
the instrumented hot modules import :mod:`repro.obs.metrics` at import
time, so this module staying lazy keeps the package cycle-free.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable, Mapping

from repro.obs import metrics as _metrics

__all__ = [
    "MANIFEST_VERSION",
    "git_describe",
    "engine_choices",
    "cache_stats",
    "register_section",
    "unregister_section",
    "build_manifest",
    "write_manifest",
]

MANIFEST_VERSION = 1
"""Schema version stamped into every manifest."""

_sections: dict[str, Callable[[], Mapping]] = {}


def register_section(name: str, provider: Callable[[], Mapping]) -> None:
    """Register a live *provider* whose dict is embedded (under
    ``sections[name]``) in every manifest built while it is registered.

    Long-lived subsystems use this to report their state at manifest
    time — the serving layer registers a ``serve`` section while an
    :class:`~repro.serve.service.EvalService` is open. Re-registering a
    name replaces the previous provider.
    """
    _sections[name] = provider


def unregister_section(name: str) -> None:
    """Remove a registered section provider (missing names are fine)."""
    _sections.pop(name, None)


def _collect_sections() -> dict:
    out = {}
    for name, provider in list(_sections.items()):
        try:
            out[name] = dict(provider())
        except Exception as exc:  # a broken provider must not kill a run
            out[name] = {"error": f"{type(exc).__name__}: {exc}"}
    return out


def git_describe(cwd: str | None = None) -> str | None:
    """``git describe --always --dirty``, or ``None`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def engine_choices() -> dict:
    """Default and available engines of every dual-engine subsystem."""
    from repro.core import dse, exascale
    from repro.fleet import link, sweep
    from repro.memsys import dramcache, manager, rowbuffer
    from repro.sim import apu_sim

    subsystems = {
        "sim.apu_sim": apu_sim.ENGINES,
        "memsys.rowbuffer": rowbuffer.ENGINES,
        "memsys.dramcache": dramcache.ENGINES,
        "memsys.manager": manager.ENGINES,
        "core.exascale.cu_sweep": exascale.CU_SWEEP_ENGINES,
        "fleet.link": link.LINK_ENGINES,
        "fleet.sweep": sweep.ENGINES,
    }
    choices = {
        name: {"default": engines[0], "available": list(engines)}
        for name, engines in subsystems.items()
    }
    # The DSE's default is process-wide state (python -m repro --engine
    # routes through set_default_engine), so report the live value.
    choices["core.dse"] = {
        "default": dse.default_engine(),
        "available": list(dse.ENGINES),
    }
    return choices


def cache_stats() -> dict:
    """Counters of the three shared default caches, as plain dicts."""
    from repro.perf.evalcache import (
        default_cache,
        default_memsys_cache,
        default_sim_cache,
    )

    return {
        "eval": default_cache().stats().as_dict(),
        "sim": default_sim_cache().stats().as_dict(),
        "memsys": default_memsys_cache().stats().as_dict(),
    }


def build_manifest(
    *,
    command: str | None = None,
    experiments: list[str] | None = None,
    wall_times: Mapping[str, float] | None = None,
    registry: "_metrics.MetricsRegistry | None" = None,
    extra: Mapping | None = None,
    clock: Callable[[], float] = time.time,
) -> dict:
    """Assemble the manifest dict (see module docstring for contents).

    ``registry=None`` snapshots the process-wide default registry;
    *clock* is injected so tests get deterministic timestamps.
    """
    import numpy as np

    from repro.core.node import NodeModel
    from repro.obs.proc import publish_memory_gauges
    from repro.perf.evalcache import fingerprint_model

    registry = registry if registry is not None else _metrics.default_registry()
    # Stamp the parent's memory footprint right before the snapshot so
    # every manifest carries proc.rss_bytes / proc.peak_rss_bytes
    # alongside any pool.worker<N>.* gauges the workers reported.
    publish_memory_gauges(registry)
    return {
        "manifest_version": MANIFEST_VERSION,
        "created_unix": float(clock()),
        "git": git_describe(),
        "command": command,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "default_model_fingerprint": fingerprint_model(NodeModel()),
        "engines": engine_choices(),
        "experiments": list(experiments) if experiments is not None else None,
        "wall_times_s": dict(wall_times) if wall_times is not None else {},
        "caches": cache_stats(),
        "metrics": registry.snapshot().as_dict(),
        "sections": _collect_sections(),
        "extra": dict(extra) if extra is not None else {},
    }


def write_manifest(path: str, **kwargs) -> dict:
    """Build a manifest and write it to *path*; returns the dict.

    Accepts :func:`build_manifest`'s keyword arguments. Parent
    directories are created as needed.
    """
    manifest = build_manifest(**kwargs)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=False, default=str)
        fh.write("\n")
    return manifest
