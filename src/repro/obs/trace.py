"""Span tracing with Chrome trace-event output.

A :class:`Tracer` records complete (``"ph": "X"``) events — name,
category, microsecond timestamp and duration, pid/tid, optional args —
in the Chrome trace-event JSON format, so a run's timeline opens
directly in ``chrome://tracing`` or https://ui.perfetto.dev.

Tracing is opt-in where metrics are always-on: the instrumented layers
call the module-level :func:`span`, which is a shared no-op context
manager until someone installs a tracer with :func:`trace` (the CLI's
``--trace-out`` does exactly that). The clock is injected — pass any
zero-argument callable returning seconds — so tests drive spans with a
fake clock and assert exact timestamps.

Typical use::

    from repro.obs import trace as otrace

    with otrace.trace() as tracer:          # activates a Tracer
        with otrace.span("dse.explore"):    # recorded
            ...
    tracer.write("trace.json")              # open in Perfetto

Instrumented library code only ever calls :func:`span`; it never pays
more than one module-attribute read when no tracer is active.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator

__all__ = ["Tracer", "span", "trace", "active_tracer"]


class Tracer:
    """Collects Chrome trace-event dicts.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds. Defaults to
        ``time.perf_counter``; tests inject a fake for deterministic
        timestamps. Event timestamps are microseconds relative to the
        tracer's construction instant.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else perf_counter
        self._t0 = self._clock()
        self._lock = threading.Lock()
        self.events: list[dict] = []

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    @contextmanager
    def span(self, name: str, cat: str = "repro", **args) -> Iterator[None]:
        """Record the enclosed block as one complete ("X") event."""
        start = self._now_us()
        try:
            yield
        finally:
            end = self._now_us()
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start,
                "dur": end - start,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
            if args:
                event["args"] = args
            with self._lock:
                self.events.append(event)

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        """Record a zero-duration instant ("i") event."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)

    def extend(self, events: list[dict]) -> None:
        """Append foreign trace events (e.g. shipped back from a worker
        process by the sharded pool).

        Events are taken as-is: each already carries its own ``pid``, so
        Perfetto renders them as separate process tracks. Timestamps are
        relative to the *originating* tracer's construction instant —
        per-track timelines are exact, cross-process alignment is not.
        """
        with self._lock:
            self.events.extend(events)

    def to_chrome(self) -> dict:
        """The JSON-object form of the Chrome trace-event format."""
        with self._lock:
            return {
                "traceEvents": list(self.events),
                "displayTimeUnit": "ms",
            }

    def write(self, path: str) -> None:
        """Serialize to *path* (compact JSON; loads in Perfetto)."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                self.to_chrome(),
                fh,
                separators=(",", ":"),
                default=str,
            )
            fh.write("\n")


_active: Tracer | None = None


class _NullSpan:
    """Stateless reusable no-op context manager (the inactive path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def active_tracer() -> Tracer | None:
    """The currently installed tracer, if any."""
    return _active


def span(name: str, cat: str = "repro", **args):
    """Span against the active tracer; a shared no-op when none is.

    This is the only call instrumented library code makes, so its
    inactive cost is one module-attribute read plus returning a
    singleton.
    """
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, **args)


@contextmanager
def trace(
    clock: Callable[[], float] | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Tracer]:
    """Install a tracer for the enclosed block and yield it.

    Nestable: the previous tracer (if any) is restored on exit, so a
    library-level ``trace()`` inside a CLI-level one shadows rather
    than clobbers.
    """
    global _active
    installed = tracer if tracer is not None else Tracer(clock=clock)
    previous = _active
    _active = installed
    try:
        yield installed
    finally:
        _active = previous
