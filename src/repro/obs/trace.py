"""Span tracing with Chrome trace-event output and trace contexts.

A :class:`Tracer` records complete (``"ph": "X"``) events — name,
category, microsecond timestamp and duration, pid/tid, optional args —
in the Chrome trace-event JSON format, so a run's timeline opens
directly in ``chrome://tracing`` or https://ui.perfetto.dev.

Every recorded span additionally carries a :class:`SpanContext` — a
``trace_id`` plus hierarchical ``span_id``/``parent_id`` — stamped into
the event's ``args``.  Contexts are what make a request's journey one
connected tree across process boundaries: the serving layer stamps a
context onto each admitted request, the sharded pool stamps a child
context onto each task envelope, and workers open their spans *under*
the shipped context, so after :meth:`Tracer.extend` merges the worker
events back, parent/child edges line up exactly.

Span ids are hierarchical (``"0"``, ``"0.1"``, ``"0.1.2"``…): a child's
id extends its parent's, which keeps allocation deterministic (ids
depend only on creation order under each parent, never on pids or
wall-clock) and collision-free across workers — each worker mints
children under a distinct shipped id.  Tests pin exact ids by seeding a
tracer with a fixed root context.

Tracing is opt-in where metrics are always-on: the instrumented layers
call the module-level :func:`span`, which is a shared no-op context
manager until someone installs a tracer with :func:`trace` (the CLI's
``--trace-out`` does exactly that). The clock is injected — pass any
zero-argument callable returning seconds — so tests drive spans with a
fake clock and assert exact timestamps.

Typical use::

    from repro.obs import trace as otrace

    with otrace.trace() as tracer:          # activates a Tracer
        with otrace.span("dse.explore") as ctx:   # recorded; ctx is
            ...                                   # the SpanContext
    tracer.write("trace.json")              # open in Perfetto

Instrumented library code only ever calls :func:`span`; it never pays
more than one module-attribute read when no tracer is active.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterator

__all__ = [
    "SpanContext",
    "Tracer",
    "span",
    "trace",
    "active_tracer",
    "current_context",
]

_TRACE_IDS = itertools.count(1)


def _new_trace_id() -> str:
    """Process-unique trace id (pid-qualified so ids survive merges)."""
    return f"{os.getpid():x}-{next(_TRACE_IDS):x}"


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span: which trace it belongs to, its own id, and
    its parent's id (``None`` for a root).

    Picklable and tiny — it rides pool task envelopes across the
    process boundary so workers can open child spans under it.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def root(cls, trace_id: str | None = None) -> "SpanContext":
        """A fresh root context (span id ``"0"``)."""
        return cls(trace_id if trace_id else _new_trace_id(), "0", None)

    def as_args(self) -> dict:
        """The id fields as Chrome-event ``args`` entries."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out


class Tracer:
    """Collects Chrome trace-event dicts.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds. Defaults to
        ``time.perf_counter``; tests inject a fake for deterministic
        timestamps. Event timestamps are microseconds relative to the
        tracer's construction instant.
    context:
        Root :class:`SpanContext` for the tracer. Defaults to a fresh
        root with a process-unique trace id; tests pass a fixed one to
        pin exact span ids.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        context: SpanContext | None = None,
    ):
        self._clock = clock if clock is not None else perf_counter
        self._t0 = self._clock()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._child_counts: dict[tuple[str, str], int] = {}
        self.root = context if context is not None else SpanContext.root()
        self.events: list[dict] = []

    def now(self) -> float:
        """A raw reading of the tracer's clock (seconds).

        Callers that measure an interval out-of-band (e.g. queue wait
        between admit and dispatch) sample this and later hand both
        readings to :meth:`record_span`, so their timestamps share the
        tracer's timeline exactly.
        """
        return self._clock()

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def _stack(self) -> list[SpanContext]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_context(self) -> SpanContext:
        """The innermost open span's context on this thread, else the
        tracer's root."""
        stack = self._stack()
        return stack[-1] if stack else self.root

    def child_context(
        self, parent: SpanContext | None = None
    ) -> SpanContext:
        """Allocate the next child context under *parent* (default: the
        current context on this thread).

        Allocation is deterministic: the n-th child of span ``P`` is
        ``P.n``, counted per parent in creation order.
        """
        if parent is None:
            parent = self.current_context()
        key = (parent.trace_id, parent.span_id)
        with self._lock:
            n = self._child_counts.get(key, 0) + 1
            self._child_counts[key] = n
        return SpanContext(
            parent.trace_id, f"{parent.span_id}.{n}", parent.span_id
        )

    def _record(self, event: dict, ctx: SpanContext, args: dict) -> None:
        merged = ctx.as_args()
        merged.update(args)
        event["args"] = merged
        with self._lock:
            self.events.append(event)

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "repro",
        context: SpanContext | None = None,
        parent: SpanContext | None = None,
        **args,
    ) -> Iterator[SpanContext]:
        """Record the enclosed block as one complete ("X") event.

        Yields the span's :class:`SpanContext`. By default the span is
        a child of the innermost open span on this thread; *parent*
        overrides the parent explicitly (for work that logically
        belongs to a span opened on another thread), and *context*
        adopts a pre-allocated identity wholesale (how workers open
        spans under an id shipped in a task envelope).
        """
        ctx = context if context is not None else self.child_context(parent)
        stack = self._stack()
        stack.append(ctx)
        start = self._now_us()
        try:
            yield ctx
        finally:
            end = self._now_us()
            # Pop *this* span's context: interleaved async spans on one
            # thread can exit out of LIFO order.
            if stack and stack[-1] is ctx:
                stack.pop()
            else:  # pragma: no cover - interleaved exit
                try:
                    stack.remove(ctx)
                except ValueError:
                    pass
            self._record(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": start,
                    "dur": end - start,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                },
                ctx,
                args,
            )

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "repro",
        context: SpanContext | None = None,
        parent: SpanContext | None = None,
        **args,
    ) -> SpanContext:
        """Record a complete event from two raw :meth:`now` readings.

        For intervals whose endpoints don't nest as a ``with`` block —
        a request's queue wait is measured at admit and recorded at
        dispatch. Returns the context the span was recorded under.
        """
        ctx = context if context is not None else self.child_context(parent)
        self._record(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": (start - self._t0) * 1e6,
                "dur": (end - start) * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            },
            ctx,
            args,
        )
        return ctx

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        """Record a zero-duration instant ("i") event."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)

    def extend(self, events: list[dict]) -> None:
        """Append foreign trace events (e.g. shipped back from a worker
        process by the sharded pool).

        Events are taken as-is: each already carries its own ``pid``, so
        Perfetto renders them as separate process tracks, and each
        carries its originating span context in ``args``, so parent/
        child edges stay connected across the merge. Timestamps are
        relative to the *originating* tracer's construction instant —
        per-track timelines are exact, cross-process alignment is not.
        """
        with self._lock:
            self.events.extend(events)

    def to_chrome(self) -> dict:
        """The JSON-object form of the Chrome trace-event format."""
        with self._lock:
            return {
                "traceEvents": list(self.events),
                "displayTimeUnit": "ms",
            }

    def write(self, path: str) -> None:
        """Serialize to *path* (compact JSON; loads in Perfetto)."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                self.to_chrome(),
                fh,
                separators=(",", ":"),
                default=str,
            )
            fh.write("\n")


_active: Tracer | None = None


class _NullSpan:
    """Stateless reusable no-op context manager (the inactive path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def active_tracer() -> Tracer | None:
    """The currently installed tracer, if any."""
    return _active


def current_context() -> SpanContext | None:
    """The active tracer's current context, or ``None`` when inactive."""
    tracer = _active
    return tracer.current_context() if tracer is not None else None


def span(
    name: str,
    cat: str = "repro",
    context: SpanContext | None = None,
    parent: SpanContext | None = None,
    **args,
):
    """Span against the active tracer; a shared no-op when none is.

    This is the only call instrumented library code makes, so its
    inactive cost is one module-attribute read plus returning a
    singleton.
    """
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, context=context, parent=parent, **args)


@contextmanager
def trace(
    clock: Callable[[], float] | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Tracer]:
    """Install a tracer for the enclosed block and yield it.

    Nestable: the previous tracer (if any) is restored on exit, so a
    library-level ``trace()`` inside a CLI-level one shadows rather
    than clobbers.
    """
    global _active
    installed = tracer if tracer is not None else Tracer(clock=clock)
    previous = _active
    _active = installed
    try:
        yield installed
    finally:
        _active = previous
