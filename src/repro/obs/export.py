"""Live telemetry export: Prometheus text format and interval sampling.

Two export shapes for the same :class:`~repro.obs.metrics.MetricsSnapshot`:

* :func:`prometheus_text` renders a snapshot in the Prometheus
  text-exposition format (``# TYPE`` lines, ``_total`` counters,
  cumulative ``_bucket{le=...}`` histograms) with stable metric names:
  dots become underscores under a fixed ``repro_`` prefix, so
  ``serve.batch_seconds`` is always ``repro_serve_batch_seconds``.
  :func:`parse_prometheus_text` is its exact inverse (numbers are
  emitted as ``repr`` so floats round-trip bit-exactly) — the
  hypothesis tests format → parse → compare snapshots.
* :class:`PeriodicSampler` appends *interval diffs* of the registry as
  JSONL — one line per interval holding only what changed since the
  previous line (counter deltas, histogram deltas, current gauges) —
  which is what ``--metrics-export`` wires up on ``python -m repro``,
  ``serve`` and ``fleet``. Each sample refreshes the process memory
  gauges first (:func:`repro.obs.proc.publish_memory_gauges`), so RSS
  is a time series rather than a single manifest reading. On
  :meth:`~PeriodicSampler.stop` the final *cumulative* snapshot is
  written next to the JSONL as a ``.prom`` file.

The sampler's clock is injected for deterministic tests; in production
it runs either on a daemon thread (:meth:`~PeriodicSampler.start`, sync
runs) or as an asyncio task (:meth:`~PeriodicSampler.run_async`, inside
:class:`~repro.serve.service.EvalService`). ``python -m repro obs
report`` renders either export shape (:mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from typing import Callable

from repro.obs import metrics as _metrics
from repro.obs.metrics import HistogramSnapshot, MetricsSnapshot
from repro.obs.proc import publish_memory_gauges

__all__ = [
    "PROM_PREFIX",
    "prometheus_text",
    "parse_prometheus_text",
    "write_prometheus",
    "PeriodicSampler",
]

PROM_PREFIX = "repro"
"""Namespace every exported metric name lives under."""

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LE_RE = re.compile(r'le="([^"]*)"')


def _prom_name(name: str, prefix: str) -> str:
    """Stable Prometheus-safe name: ``<prefix>_<dots-to-underscores>``."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def _fmt(value: float) -> str:
    """repr-exact float rendering (parses back bit-identically)."""
    return repr(float(value))


def prometheus_text(
    snapshot: MetricsSnapshot, prefix: str = PROM_PREFIX
) -> str:
    """Render *snapshot* in the Prometheus text-exposition format.

    Counters get a ``_total`` suffix, histograms expand to cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``, gauges export
    as-is. Families are sorted by name, so output is deterministic.
    """
    lines: list[str] = []
    for name in sorted(snapshot.counters):
        pname = f"{_prom_name(name, prefix)}_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {int(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                f'{pname}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        cumulative += hist.counts[-1]
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{pname}_sum {_fmt(hist.total)}")
        lines.append(f"{pname}_count {int(hist.count)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str, prefix: str = PROM_PREFIX
) -> MetricsSnapshot:
    """Parse :func:`prometheus_text` output back into a snapshot.

    The inverse transform up to name mangling: dots were flattened to
    underscores on the way out, so round-trips are exact only for names
    already free of characters outside ``[a-zA-Z0-9_:]`` (the property
    tests generate such names; operational consumers never parse back).
    """
    types: dict[str, str] = {}
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    hist_parts: dict[str, dict] = {}
    strip = f"{prefix}_"

    def base_name(pname: str) -> str:
        return pname[len(strip):] if pname.startswith(strip) else pname

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        pname = match.group("name")
        value = match.group("value")
        labels = match.group("labels") or ""
        for family, suffix in (
            (pname[: -len("_bucket")], "_bucket"),
            (pname[: -len("_sum")], "_sum"),
            (pname[: -len("_count")], "_count"),
        ):
            if (
                pname.endswith(suffix)
                and types.get(family) == "histogram"
            ):
                part = hist_parts.setdefault(
                    base_name(family), {"buckets": [], "sum": 0.0, "count": 0}
                )
                if suffix == "_bucket":
                    le_match = _LE_RE.search(labels)
                    if le_match is None:
                        raise ValueError(f"bucket without le: {line!r}")
                    part["buckets"].append((le_match.group(1), int(value)))
                elif suffix == "_sum":
                    part["sum"] = float(value)
                else:
                    part["count"] = int(value)
                break
        else:
            if types.get(pname) == "counter" and pname.endswith("_total"):
                counters[base_name(pname[: -len("_total")])] = int(value)
            elif types.get(pname) == "gauge":
                gauges[base_name(pname)] = float(value)
            else:
                raise ValueError(f"sample without TYPE: {line!r}")

    histograms: dict[str, HistogramSnapshot] = {}
    for name, part in hist_parts.items():
        finite = [
            (float(le), cum) for le, cum in part["buckets"] if le != "+Inf"
        ]
        finite.sort(key=lambda pair: pair[0])
        inf_cum = next(
            (cum for le, cum in part["buckets"] if le == "+Inf"),
            part["count"],
        )
        bounds = tuple(le for le, _ in finite)
        counts = []
        previous = 0
        for _, cum in finite:
            counts.append(cum - previous)
            previous = cum
        counts.append(inf_cum - previous)
        histograms[name] = HistogramSnapshot(
            bounds=bounds,
            counts=tuple(counts),
            total=part["sum"],
            count=part["count"],
        )
    return MetricsSnapshot(
        counters=counters, gauges=gauges, histograms=histograms
    )


def write_prometheus(
    path: str,
    snapshot: MetricsSnapshot | None = None,
    prefix: str = PROM_PREFIX,
) -> None:
    """Write *snapshot* (default: the process registry) to *path*."""
    if snapshot is None:
        snapshot = _metrics.snapshot()
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(snapshot, prefix=prefix))


class PeriodicSampler:
    """Appends registry interval-diffs to a JSONL time-series file.

    Each :meth:`sample` refreshes the process memory gauges, snapshots
    the registry, and writes one JSON line holding the *diff* against
    the previous sample (counter/histogram deltas; gauges are current
    readings) plus timing fields::

        {"t": <wall unix>, "elapsed_s": ..., "interval_s": ...,
         "sample": <n>, "counters": {...}, "gauges": {...},
         "histograms": {...}}

    The baseline is the snapshot taken at construction, so the series
    covers exactly the sampler's lifetime. :meth:`stop` takes a final
    sample and writes the last cumulative snapshot next to the JSONL as
    ``<path stem>.prom`` (Prometheus text format).

    Drive it one of three ways: call :meth:`sample` directly (tests,
    with an injected clock), :meth:`start`/:meth:`stop` a daemon thread
    (synchronous runs), or schedule :meth:`run_async` as a task on an
    event loop (inside :class:`~repro.serve.service.EvalService`).
    """

    def __init__(
        self,
        path: str,
        *,
        interval_s: float = 1.0,
        registry: "_metrics.MetricsRegistry | None" = None,
        clock: Callable[[], float] | None = None,
        wall_clock: Callable[[], float] | None = None,
        sample_proc: bool = True,
        prefix: str = PROM_PREFIX,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.path = str(path)
        self.interval_s = float(interval_s)
        self.prefix = prefix
        self._registry = registry
        self._clock = clock if clock is not None else time.monotonic
        self._wall = wall_clock if wall_clock is not None else time.time
        self._sample_proc = sample_proc
        self._lock = threading.Lock()
        self._t0 = self._clock()
        self._last = self._snapshot()
        self._last_t = self._t0
        self._n = 0
        self._fh = None
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._closed = False

    @property
    def prometheus_path(self) -> str:
        """Where :meth:`stop` writes the final cumulative snapshot."""
        return os.path.splitext(self.path)[0] + ".prom"

    def _snapshot(self) -> MetricsSnapshot:
        if self._registry is None:
            return _metrics.snapshot()
        return self._registry.snapshot()

    def _publish_proc(self) -> None:
        publish_memory_gauges(self._registry)

    # ------------------------------------------------------------------
    def sample(self) -> dict | None:
        """Take one interval sample; returns the record written (or
        ``None`` after :meth:`stop`)."""
        with self._lock:
            if self._closed:
                return None
            if self._sample_proc:
                self._publish_proc()
            snap = self._snapshot()
            now = self._clock()
            delta = snap.diff(self._last)
            self._n += 1
            record = {
                "t": self._wall(),
                "elapsed_s": now - self._t0,
                "interval_s": now - self._last_t,
                "sample": self._n,
            }
            record.update(delta.as_dict())
            self._last = snap
            self._last_t = now
            if self._fh is None:
                parent = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(parent, exist_ok=True)
                self._fh = open(self.path, "w", encoding="utf-8")
            self._fh.write(
                json.dumps(record, separators=(",", ":"), default=str)
            )
            self._fh.write("\n")
            self._fh.flush()
            return record

    # ------------------------------------------------------------------
    def start(self) -> "PeriodicSampler":
        """Sample every ``interval_s`` on a daemon thread until
        :meth:`stop` (synchronous runs)."""
        if self._thread is not None or self._closed:
            return self

        def loop() -> None:
            while not self._stop_event.wait(self.interval_s):
                self.sample()

        self._thread = threading.Thread(
            target=loop, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    async def run_async(self) -> None:
        """Sample every ``interval_s`` on the running event loop until
        cancelled (the serving layer schedules this as a task)."""
        import asyncio

        while not self._closed:
            await asyncio.sleep(self.interval_s)
            self.sample()

    def stop(self, final: bool = True) -> None:
        """Stop the thread (if any), take one last sample, write the
        cumulative ``.prom`` snapshot, and close. Idempotent."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._closed:
            return
        if final:
            self.sample()
        with self._lock:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            write_prometheus(
                self.prometheus_path, self._last, prefix=self.prefix
            )

    def __enter__(self) -> "PeriodicSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
