"""Process memory readings published as metrics gauges.

The observability layer's counters and histograms accumulate; memory is
a point-in-time reading, so it rides the registry's *gauge* channel
(last-writer-wins on merge). Two readings are exposed:

``proc.rss_bytes``
    The process's current resident set, read from ``/proc/self/statm``
    where available.
``proc.peak_rss_bytes``
    The high-water mark, from ``resource.getrusage`` (``ru_maxrss``).

:func:`publish_memory_gauges` is called in two places: run-manifest
construction (so every manifest records the parent process's footprint)
and the :class:`~repro.perf.pool.ShardedPool` worker loop, whose
readings the parent republishes as ``pool.worker<N>.rss_bytes`` /
``pool.worker<N>.peak_rss_bytes`` — per-worker memory crosses the
process boundary through the same snapshot merge the cache counters
use.

Every reader degrades to ``None`` on platforms without the underlying
source; gauges are simply not published rather than guessed.
"""

from __future__ import annotations

import os
import sys

from repro.obs import metrics as _metrics

__all__ = ["rss_bytes", "peak_rss_bytes", "publish_memory_gauges"]


def rss_bytes() -> int | None:
    """Current resident set size in bytes, or ``None`` if unreadable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def peak_rss_bytes() -> int | None:
    """Peak resident set size in bytes, or ``None`` if unreadable."""
    try:
        import resource
    except ImportError:
        return None
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (OSError, ValueError):
        return None
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def publish_memory_gauges(
    registry: "_metrics.MetricsRegistry | None" = None,
    prefix: str = "proc",
) -> dict[str, float]:
    """Set ``<prefix>.rss_bytes`` / ``<prefix>.peak_rss_bytes`` gauges.

    ``registry=None`` goes through the module-level helpers (and so
    respects the global enable flag); an explicit registry is written
    directly. Returns the readings that were published.
    """
    readings: dict[str, float] = {}
    rss = rss_bytes()
    if rss is not None:
        readings[f"{prefix}.rss_bytes"] = float(rss)
    peak = peak_rss_bytes()
    if peak is not None:
        readings[f"{prefix}.peak_rss_bytes"] = float(peak)
    for name, value in readings.items():
        if registry is None:
            _metrics.set_gauge(name, value)
        else:
            registry.set_gauge(name, value)
    return readings
