"""Run reports and benchmark regression diffs (``python -m repro obs``).

Two subcommands turn the observability artifacts the other layers
produce into answers:

``python -m repro obs report <manifest.json | metrics.jsonl>``
    A human-readable "where did the time go" report. A run manifest
    (:mod:`repro.obs.manifest`) renders its wall times, timing
    histograms, cache hit rates and memory gauges; a
    :class:`~repro.obs.export.PeriodicSampler` JSONL stream is folded
    back into cumulative totals first (counter/histogram deltas sum,
    gauges keep their last reading, RSS reports its series peak).

``python -m repro obs diff <a> <b>`` / ``obs diff --dir <dir>``
    Regression comparison of pytest-benchmark artifacts
    (``BENCH_pr*.json``, compact or legacy — anything
    :func:`repro.util.benchjson.load_summary` reads). Two files compare
    their common benchmarks' mean times against a configurable
    ``--threshold`` ratio; a directory compares the whole trajectory
    pairwise in PR order, *warning* (never crashing) on missing PR
    numbers or disjoint benchmark sets. Exit status is the number of
    regressions found (0 = healthy), which is what lets CI gate on the
    freshly produced quick-smoke bench output.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from typing import Iterable, Mapping, Sequence

from repro.util.benchjson import load_summary

__all__ = [
    "render_report",
    "diff_benchmarks",
    "diff_trajectory",
    "main",
]

_BENCH_RE = re.compile(r"BENCH_pr(\d+)\.json$")


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} us"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"


def _table(rows: Sequence[Sequence[str]], indent: str = "  ") -> list[str]:
    """Align *rows* into fixed-width columns (first column left, rest
    right)."""
    if not rows:
        return []
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    for row in rows:
        cells = [row[0].ljust(widths[0])]
        cells += [c.rjust(w) for c, w in zip(row[1:], widths[1:])]
        lines.append(indent + "  ".join(cells).rstrip())
    return lines


def _hist_rows(histograms: Mapping[str, Mapping]) -> list[list[str]]:
    """Timing-histogram table rows, largest total first."""
    entries = []
    for name, hist in histograms.items():
        count = int(hist.get("count", 0))
        total = float(hist.get("total", 0.0))
        entries.append((name, count, total))
    entries.sort(key=lambda e: -e[2])
    grand_total = sum(e[2] for e in entries) or 1.0
    rows = [["histogram", "count", "total", "mean", "share"]]
    for name, count, total in entries:
        mean = total / count if count else 0.0
        rows.append(
            [
                name,
                str(count),
                _fmt_seconds(total),
                _fmt_seconds(mean),
                f"{100.0 * total / grand_total:.1f}%",
            ]
        )
    return rows


def _memory_lines(gauges: Mapping[str, float]) -> list[str]:
    lines = []
    for name in sorted(gauges):
        if name.endswith("rss_bytes"):
            lines.append(f"  {name}  {_fmt_bytes(gauges[name])}")
    return lines


# ----------------------------------------------------------------------
# `obs report`
# ----------------------------------------------------------------------
def _report_manifest(manifest: Mapping, path: str) -> str:
    lines = [f"run report: {path}"]
    command = manifest.get("command")
    if command:
        lines.append(f"  command  {command}")
    created = manifest.get("created_unix")
    if created:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S UTC", time.gmtime(float(created))
        )
        lines.append(f"  created  {stamp}")
    git = manifest.get("git")
    if git:
        lines.append(f"  git      {git}")

    wall_times = manifest.get("wall_times_s") or {}
    if wall_times:
        lines.append("wall times:")
        total = sum(wall_times.values()) or 1.0
        rows = [
            [name, _fmt_seconds(float(sec)), f"{100.0 * sec / total:.1f}%"]
            for name, sec in sorted(
                wall_times.items(), key=lambda kv: -kv[1]
            )
        ]
        lines.extend(_table(rows))

    metrics = manifest.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("where the time went:")
        lines.extend(_table(_hist_rows(histograms)))

    caches = manifest.get("caches") or {}
    if caches:
        lines.append("caches:")
        rows = []
        for name, stats in sorted(caches.items()):
            if not isinstance(stats, Mapping):
                continue
            hits = int(stats.get("hits", 0))
            misses = int(stats.get("misses", 0))
            lookups = hits + misses
            rate = 100.0 * hits / lookups if lookups else 0.0
            rows.append(
                [name, f"{hits} hits", f"{misses} misses", f"{rate:.1f}%"]
            )
        lines.extend(_table(rows))

    gauges = metrics.get("gauges") or {}
    memory = _memory_lines(gauges)
    if memory:
        lines.append("memory:")
        lines.extend(memory)

    slo = (manifest.get("sections") or {}).get("serve", {}).get("slo")
    if slo:
        lines.append("serve SLO window:")
        lines.append(
            f"  requests {slo.get('requests', 0)}  "
            f"p50 {_fmt_seconds(float(slo.get('p50_latency_s', 0.0)))}  "
            f"p99 {_fmt_seconds(float(slo.get('p99_latency_s', 0.0)))}"
        )
        lines.append(
            f"  shed {100.0 * float(slo.get('shed_rate', 0.0)):.2f}%  "
            f"errors {100.0 * float(slo.get('error_rate', 0.0)):.2f}%  "
            f"budget remaining "
            f"{100.0 * float(slo.get('budget_remaining', 1.0)):.1f}%"
        )
    return "\n".join(lines)


def _fold_jsonl(records: Iterable[Mapping]) -> dict:
    """Accumulate sampler interval-diffs back into cumulative totals."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    peak_gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    n = 0
    elapsed = 0.0
    for record in records:
        n += 1
        elapsed = max(elapsed, float(record.get("elapsed_s", 0.0)))
        for name, value in (record.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (record.get("gauges") or {}).items():
            gauges[name] = value
            if name.endswith("rss_bytes"):
                peak_gauges[name] = max(
                    peak_gauges.get(name, float("-inf")), value
                )
        for name, hist in (record.get("histograms") or {}).items():
            slot = histograms.get(name)
            if slot is None:
                histograms[name] = {
                    "count": int(hist.get("count", 0)),
                    "total": float(hist.get("total", 0.0)),
                }
            else:
                slot["count"] += int(hist.get("count", 0))
                slot["total"] += float(hist.get("total", 0.0))
    gauges.update({f"peak {k}": v for k, v in peak_gauges.items()})
    return {
        "samples": n,
        "elapsed_s": elapsed,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _report_jsonl(records: list[Mapping], path: str) -> str:
    folded = _fold_jsonl(records)
    lines = [
        f"metrics export report: {path}",
        f"  samples  {folded['samples']} covering "
        f"{_fmt_seconds(folded['elapsed_s'])}",
    ]
    if folded["histograms"]:
        lines.append("where the time went:")
        lines.extend(_table(_hist_rows(folded["histograms"])))
    counters = folded["counters"]
    if counters:
        lines.append("counters:")
        rows = [
            [name, str(int(value))]
            for name, value in sorted(
                counters.items(), key=lambda kv: -kv[1]
            )[:20]
        ]
        lines.extend(_table(rows))
    memory = _memory_lines(folded["gauges"])
    if memory:
        lines.append("memory:")
        lines.extend(memory)
    return "\n".join(lines)


def render_report(path: str) -> str:
    """The report text for a manifest JSON or a sampler JSONL file."""
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.read(1)
        fh.seek(0)
        if not first:
            return f"run report: {path}\n  (empty file)"
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        document = json.loads(text)
        if "manifest_version" in document:
            return _report_manifest(document, path)
        # A single-line JSONL export degenerates to one record.
        return _report_jsonl([document], path)
    records = [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]
    return _report_jsonl(records, path)


# ----------------------------------------------------------------------
# `obs diff`
# ----------------------------------------------------------------------
def diff_benchmarks(
    path_a: str,
    path_b: str,
    threshold: float = 1.5,
    min_seconds: float = 1e-5,
) -> tuple[list[str], int]:
    """Compare two benchmark files; returns (report lines, regressions).

    A common benchmark regresses when ``mean_b / mean_a > threshold``
    and the absolute slowdown exceeds *min_seconds* (micro-benchmarks
    under the floor are noise, not signal). Benchmarks present in only
    one file are warned about, never fatal.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1.0")
    summary_a = load_summary(path_a)
    summary_b = load_summary(path_b)
    lines = [
        f"bench diff: {os.path.basename(path_a)} -> "
        f"{os.path.basename(path_b)}  (threshold {threshold:.2f}x)"
    ]
    regressions = 0
    common = sorted(set(summary_a) & set(summary_b))
    rows = []
    for name in common:
        mean_a = summary_a[name].get("mean_s")
        mean_b = summary_b[name].get("mean_s")
        if not mean_a or not mean_b:
            rows.append([name, "-", "-", "-", "no data"])
            continue
        ratio = mean_b / mean_a
        verdict = "ok"
        if (
            ratio > threshold
            and (mean_b - mean_a) > min_seconds
        ):
            verdict = "REGRESSION"
            regressions += 1
        elif ratio < 1.0 / threshold:
            verdict = "improved"
        rows.append(
            [
                name,
                _fmt_seconds(mean_a),
                _fmt_seconds(mean_b),
                f"{ratio:.2f}x",
                verdict,
            ]
        )
    if rows:
        lines.extend(
            _table([["benchmark", "before", "after", "ratio", ""]] + rows)
        )
    else:
        lines.append("  (no common benchmarks)")
    only_a = sorted(set(summary_a) - set(summary_b))
    only_b = sorted(set(summary_b) - set(summary_a))
    if only_a:
        lines.append(
            f"  warning: {len(only_a)} benchmark(s) only in "
            f"{os.path.basename(path_a)}: {', '.join(only_a[:3])}"
            + ("..." if len(only_a) > 3 else "")
        )
    if only_b:
        lines.append(
            f"  warning: {len(only_b)} benchmark(s) only in "
            f"{os.path.basename(path_b)}: {', '.join(only_b[:3])}"
            + ("..." if len(only_b) > 3 else "")
        )
    return lines, regressions


def trajectory_files(directory: str) -> tuple[list[tuple[int, str]], list[str]]:
    """``BENCH_pr<N>.json`` files in *directory*, PR-ordered, plus gap
    warnings for missing PR numbers inside the observed range."""
    found = []
    for entry in sorted(os.listdir(directory)):
        match = _BENCH_RE.fullmatch(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, entry)))
    found.sort()
    warnings = []
    if found:
        numbers = [n for n, _ in found]
        missing = sorted(set(range(numbers[0], numbers[-1] + 1)) - set(numbers))
        if missing:
            warnings.append(
                "warning: trajectory gap — no BENCH_pr{}.json".format(
                    "/".join(str(n) for n in missing)
                )
            )
    return found, warnings


def diff_trajectory(
    directory: str, threshold: float = 1.5, min_seconds: float = 1e-5
) -> tuple[list[str], int]:
    """Pairwise-consecutive diff of a whole ``BENCH_pr*`` directory."""
    found, warnings = trajectory_files(directory)
    lines = [f"bench trajectory: {directory} ({len(found)} file(s))"]
    lines.extend(f"  {w}" for w in warnings)
    if len(found) < 2:
        lines.append("  (need at least two BENCH_pr*.json files to diff)")
        return lines, 0
    regressions = 0
    for (_, path_a), (_, path_b) in zip(found, found[1:]):
        try:
            pair_lines, pair_regressions = diff_benchmarks(
                path_a, path_b, threshold, min_seconds
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            lines.append(
                f"  warning: cannot diff {os.path.basename(path_a)} -> "
                f"{os.path.basename(path_b)}: {exc}"
            )
            continue
        lines.extend(pair_lines)
        regressions += pair_regressions
    return lines, regressions


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro obs ...`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description=(
            "Observability reports: where-did-time-go from manifests/"
            "metric exports, regression diffs over BENCH_*.json files."
        ),
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    report = sub.add_parser(
        "report", help="render a run manifest or metrics JSONL export"
    )
    report.add_argument(
        "path", help="manifest JSON or PeriodicSampler JSONL file"
    )

    diff = sub.add_parser(
        "diff",
        help=(
            "compare benchmark files; exit status = regressions found"
        ),
    )
    diff.add_argument(
        "paths",
        nargs="*",
        help=(
            "two BENCH_*.json files, or one directory holding a "
            "BENCH_pr*.json trajectory"
        ),
    )
    diff.add_argument(
        "--dir",
        dest="directory",
        default=None,
        help="diff the whole BENCH_pr*.json trajectory in a directory",
    )
    diff.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        metavar="RATIO",
        help=(
            "mean-time ratio above which a benchmark counts as a "
            "regression (default 1.5)"
        ),
    )
    diff.add_argument(
        "--min-seconds",
        type=float,
        default=1e-5,
        metavar="S",
        help=(
            "ignore slowdowns smaller than this many absolute seconds "
            "(default 1e-5)"
        ),
    )
    args = parser.parse_args(argv)

    if args.subcommand == "report":
        try:
            print(render_report(args.path))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"obs report: cannot read {args.path}: {exc}",
                  file=sys.stderr)
            return 2
        return 0

    # diff
    directory = args.directory
    paths = list(args.paths)
    if directory is None and len(paths) == 1 and os.path.isdir(paths[0]):
        directory, paths = paths[0], []
    if directory is not None:
        if paths:
            parser.error("--dir and explicit file paths are exclusive")
        lines, regressions = diff_trajectory(
            directory, args.threshold, args.min_seconds
        )
    elif len(paths) == 2:
        try:
            lines, regressions = diff_benchmarks(
                paths[0], paths[1], args.threshold, args.min_seconds
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"obs diff: {exc}", file=sys.stderr)
            return 2
    else:
        parser.error(
            "diff takes two benchmark files, or one directory / --dir"
        )
        return 2  # unreachable; parser.error raises
    print("\n".join(lines))
    if regressions:
        print(f"obs diff: {regressions} regression(s) found",
              file=sys.stderr)
    return regressions


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
