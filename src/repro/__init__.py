"""repro — reproduction of "Design and Analysis of an APU for Exascale
Computing" (HPCA 2017).

The library models the paper's Exascale Node Architecture (ENA): a
chiplet-based Exascale Heterogeneous Processor (EHP) with in-package 3D
DRAM and an external memory network, evaluated through analytic
performance/power models, a compact thermal solver, a chiplet NoC model,
and a trace-driven simulator. See ``DESIGN.md`` for the system inventory
and ``EXPERIMENTS.md`` for paper-vs-measured results.

Quickstart::

    from repro import NodeModel, EHPConfig, get_application

    model = NodeModel()
    lulesh = get_application("LULESH")
    result = model.evaluate(lulesh, EHPConfig(n_cus=320))
    print(result.performance, result.node_power)
"""

from repro.core import (
    ALL_OPTIMIZATIONS,
    PAPER_BEST_MEAN,
    PAPER_BEST_MEAN_OPTIMIZED,
    DesignSpace,
    DseResult,
    EHPConfig,
    ExascaleSystem,
    NodeEvaluation,
    NodeModel,
    PowerOptimization,
    apply_optimizations,
    best_config_for,
    best_mean_config,
    explore,
)
from repro.perfmodel import MachineParams
from repro.power import ExternalMemoryConfig, PowerParams, VFCurve
from repro.workloads import (
    APPLICATIONS,
    KernelCategory,
    KernelProfile,
    application_names,
    get_application,
)

__version__ = "1.0.0"

__all__ = [
    "EHPConfig",
    "DesignSpace",
    "PAPER_BEST_MEAN",
    "PAPER_BEST_MEAN_OPTIMIZED",
    "NodeModel",
    "NodeEvaluation",
    "DseResult",
    "explore",
    "best_mean_config",
    "best_config_for",
    "PowerOptimization",
    "ALL_OPTIMIZATIONS",
    "apply_optimizations",
    "ExascaleSystem",
    "MachineParams",
    "PowerParams",
    "VFCurve",
    "ExternalMemoryConfig",
    "KernelProfile",
    "KernelCategory",
    "APPLICATIONS",
    "application_names",
    "get_application",
    "__version__",
]
