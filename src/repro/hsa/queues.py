"""User-mode queues, packets and completion signals (HSA/AQL semantics).

HSA lets applications dispatch work by writing an AQL packet into a
user-mode queue and ringing a doorbell — no kernel-driver round trip.
Completion is observed through signal objects that any agent can wait
on or decrement. This module models those objects functionally (packet
ordering, barrier bits, signal arithmetic) for the offload executor.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["PacketState", "AqlPacket", "CompletionSignal", "UserModeQueue"]


class PacketState(enum.Enum):
    """Lifecycle of a queued packet."""

    QUEUED = "queued"
    LAUNCHED = "launched"
    COMPLETE = "complete"


@dataclass
class CompletionSignal:
    """An HSA signal: an integer any agent may decrement or wait on."""

    value: int = 1
    _waiters: list[Callable[[], None]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("signal value must be non-negative")

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* once the signal reaches zero."""
        if self.value == 0:
            callback()
        else:
            self._waiters.append(callback)

    def decrement(self) -> int:
        """Signal one completion; fires waiters at zero."""
        if self.value == 0:
            raise RuntimeError("signal already at zero")
        self.value -= 1
        if self.value == 0:
            waiters, self._waiters = self._waiters, []
            for callback in waiters:
                callback()
        return self.value

    @property
    def is_set(self) -> bool:
        """Has the signal reached zero?"""
        return self.value == 0


@dataclass
class AqlPacket:
    """One dispatch packet.

    ``barrier`` packets block the queue until every earlier packet in
    the same queue completes — HSA's in-queue dependency primitive.
    """

    name: str
    work: object = None
    barrier: bool = False
    completion: CompletionSignal = field(default_factory=CompletionSignal)
    state: PacketState = PacketState.QUEUED


class UserModeQueue:
    """A single-producer dispatch queue with barrier-bit semantics.

    ``pop_ready`` returns the next packets eligible to launch: everything
    up to (but not including) an incomplete barrier; a barrier packet
    itself launches only once all earlier packets have completed.
    """

    def __init__(self, name: str, depth: int = 256):
        if depth <= 0:
            raise ValueError("queue depth must be positive")
        self.name = name
        self.depth = depth
        self._packets: deque[AqlPacket] = deque()
        self._in_flight: set[str] = set()
        self.doorbell_rings = 0

    def __len__(self) -> int:
        return len(self._packets)

    def submit(self, packet: AqlPacket) -> None:
        """Write a packet and ring the doorbell."""
        if len(self._packets) >= self.depth:
            raise RuntimeError(f"queue {self.name} full")
        self._packets.append(packet)
        self.doorbell_rings += 1

    def pop_ready(self) -> list[AqlPacket]:
        """Dequeue every packet eligible to launch right now."""
        ready: list[AqlPacket] = []
        while self._packets:
            head = self._packets[0]
            if head.barrier and self._in_flight:
                break
            self._packets.popleft()
            head.state = PacketState.LAUNCHED
            self._in_flight.add(head.name)
            ready.append(head)
            if head.barrier:
                break
        return ready

    def complete(self, packet: AqlPacket) -> None:
        """Mark a launched packet complete and fire its signal."""
        if packet.name not in self._in_flight:
            raise RuntimeError(f"packet {packet.name} not in flight")
        self._in_flight.discard(packet.name)
        packet.state = PacketState.COMPLETE
        if not packet.completion.is_set:
            packet.completion.decrement()

    @property
    def idle(self) -> bool:
        """No queued or in-flight packets."""
        return not self._packets and not self._in_flight
