"""Offload cost models and DAG execution across CPU and GPU agents.

Two things the paper credits HSA with (Section II-A1):

* **Free pointer exchange / no copies** — :class:`OffloadCostModel`
  compares a legacy copy-based dispatch (stage data over the interface,
  launch through the driver) against an HSA dispatch (user-mode queue
  write + doorbell, data stays in the unified address space).
* **Task offload in both directions** — :class:`DagExecutor` runs a
  :class:`TaskGraph` whose tasks are labelled CPU or GPU over the
  discrete-event engine, honouring dependencies through completion
  signals, with per-dispatch overheads from the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sim.engine import Simulator
from repro.util.units import US

__all__ = ["OffloadCostModel", "Task", "TaskGraph", "DagExecutor"]


@dataclass(frozen=True)
class OffloadCostModel:
    """Per-dispatch overheads for the two offload regimes.

    Legacy: driver-mediated launch plus explicit staging copies over an
    interface of ``copy_bandwidth``. HSA: a queue write and doorbell
    (microseconds), no copies — consumers dereference the same pointers.
    """

    legacy_launch_overhead: float = 20.0 * US
    hsa_dispatch_overhead: float = 1.5 * US
    copy_bandwidth: float = 64.0e9
    coherence_overhead_per_dispatch: float = 0.5 * US

    def __post_init__(self) -> None:
        if min(
            self.legacy_launch_overhead,
            self.hsa_dispatch_overhead,
            self.coherence_overhead_per_dispatch,
        ) < 0:
            raise ValueError("overheads must be non-negative")
        if self.copy_bandwidth <= 0:
            raise ValueError("copy bandwidth must be positive")

    def legacy_dispatch_cost(self, bytes_touched: float) -> float:
        """Launch + copy-in + copy-out for a copy-based offload."""
        if bytes_touched < 0:
            raise ValueError("bytes_touched must be non-negative")
        return (
            self.legacy_launch_overhead
            + 2.0 * bytes_touched / self.copy_bandwidth
        )

    def hsa_dispatch_cost(self) -> float:
        """Queue write + doorbell + coherence actions; no copies."""
        return self.hsa_dispatch_overhead + self.coherence_overhead_per_dispatch

    def speedup_per_dispatch(
        self, bytes_touched: float, kernel_time: float
    ) -> float:
        """End-to-end dispatch+execute speedup of HSA over legacy."""
        if kernel_time <= 0:
            raise ValueError("kernel_time must be positive")
        legacy = self.legacy_dispatch_cost(bytes_touched) + kernel_time
        hsa = self.hsa_dispatch_cost() + kernel_time
        return legacy / hsa


@dataclass
class Task:
    """One node of a task graph."""

    name: str
    agent: str  # "cpu" or "gpu"
    duration: float
    bytes_touched: float = 0.0
    depends_on: tuple = ()

    def __post_init__(self) -> None:
        if self.agent not in ("cpu", "gpu"):
            raise ValueError(f"unknown agent {self.agent!r}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.bytes_touched < 0:
            raise ValueError("bytes_touched must be non-negative")


class TaskGraph:
    """A DAG of named tasks with dependency validation."""

    def __init__(self) -> None:
        self.tasks: dict[str, Task] = {}

    def add(self, task: Task) -> None:
        """Insert a task; dependencies must already exist (topological
        insertion keeps the graph acyclic by construction)."""
        if task.name in self.tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        for dep in task.depends_on:
            if dep not in self.tasks:
                raise ValueError(
                    f"task {task.name!r} depends on unknown {dep!r}"
                )
        self.tasks[task.name] = task

    def __len__(self) -> int:
        return len(self.tasks)

    def roots(self) -> list[Task]:
        """Tasks with no dependencies."""
        return [t for t in self.tasks.values() if not t.depends_on]

    def dependants_of(self, name: str) -> list[Task]:
        """Tasks that list *name* as a dependency."""
        return [t for t in self.tasks.values() if name in t.depends_on]

    def critical_path(self) -> float:
        """Longest dependency chain by raw duration (no overheads)."""
        memo: dict[str, float] = {}

        def finish(name: str) -> float:
            if name not in memo:
                task = self.tasks[name]
                start = max(
                    (finish(d) for d in task.depends_on), default=0.0
                )
                memo[name] = start + task.duration
            return memo[name]

        return max((finish(n) for n in self.tasks), default=0.0)


@dataclass
class DagResult:
    """Executed schedule summary."""

    makespan: float
    finish_times: Mapping[str, float]
    agent_busy: Mapping[str, float]

    def utilization(self, agent: str) -> float:
        """Agent busy fraction over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.agent_busy.get(agent, 0.0) / self.makespan


class DagExecutor:
    """Event-driven DAG execution on one CPU agent and one GPU agent.

    Each agent executes one task at a time (the CU-level parallelism is
    inside a task's ``duration``); dispatch overheads follow the chosen
    offload ``regime`` ("hsa" or "legacy"). Cross-agent dependencies are
    where the regimes differ most: legacy pays staging copies on every
    offload, HSA passes pointers.
    """

    def __init__(
        self,
        cost_model: OffloadCostModel | None = None,
        regime: str = "hsa",
    ):
        if regime not in ("hsa", "legacy"):
            raise ValueError("regime must be 'hsa' or 'legacy'")
        self.cost_model = cost_model or OffloadCostModel()
        self.regime = regime

    def _dispatch_cost(self, task: Task) -> float:
        if self.regime == "hsa":
            return self.cost_model.hsa_dispatch_cost()
        return self.cost_model.legacy_dispatch_cost(task.bytes_touched)

    def run(self, graph: TaskGraph) -> DagResult:
        """Execute *graph*; returns the schedule summary."""
        if len(graph) == 0:
            raise ValueError("empty task graph")
        sim = Simulator()
        remaining_deps = {
            name: set(task.depends_on) for name, task in graph.tasks.items()
        }
        agent_free_at = {"cpu": 0.0, "gpu": 0.0}
        agent_busy = {"cpu": 0.0, "gpu": 0.0}
        finish_times: dict[str, float] = {}

        def try_start(task: Task) -> None:
            if remaining_deps[task.name]:
                return
            cost = self._dispatch_cost(task)
            start = max(sim.now, agent_free_at[task.agent]) + cost
            duration = task.duration
            agent_free_at[task.agent] = start + duration
            agent_busy[task.agent] += duration

            def finish() -> None:
                finish_times[task.name] = sim.now
                for dependant in graph.dependants_of(task.name):
                    remaining_deps[dependant.name].discard(task.name)
                    try_start(dependant)

            sim.schedule_at(start + duration, finish)

        for task in graph.roots():
            try_start(task)
        makespan = sim.run()
        if len(finish_times) != len(graph):
            missing = set(graph.tasks) - set(finish_times)
            raise RuntimeError(f"deadlocked tasks: {sorted(missing)}")
        return DagResult(
            makespan=makespan,
            finish_times=finish_times,
            agent_busy=agent_busy,
        )
