"""HSA-style heterogeneous execution substrate (Section II-A1).

The EHP's programmability story rests on the Heterogeneous System
Architecture: a unified coherent virtual address space, user-mode task
queues with doorbell signals, and cheap CPU<->GPU offload in both
directions. This package models that machinery:

* :mod:`repro.hsa.queues` — user-mode queues, packets, completion
  signals (the AQL abstractions).
* :mod:`repro.hsa.offload` — offload cost models (legacy copy-based vs
  HSA shared virtual memory) and a DAG executor that schedules task
  graphs across the CPU and GPU agents on the discrete-event engine
  (the paper's reference [13] pattern).
"""

from repro.hsa.queues import AqlPacket, CompletionSignal, UserModeQueue
from repro.hsa.offload import (
    DagExecutor,
    OffloadCostModel,
    Task,
    TaskGraph,
)

__all__ = [
    "AqlPacket",
    "CompletionSignal",
    "UserModeQueue",
    "OffloadCostModel",
    "Task",
    "TaskGraph",
    "DagExecutor",
]
