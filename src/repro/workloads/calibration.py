"""Profile calibration against the paper's published optima.

The paper's kernel profiles come from hardware measurement; ours must be
reconstructed from the published results. This module implements that
reconstruction as an optimization problem: for each application, search
the profile parameters so that

1. the application's best feasible configuration on the paper's
   exploration grid equals its Table II configuration,
2. its performance benefit over the best-mean configuration matches the
   Table II percentage,
3. the best-mean configuration itself stays feasible (so the joint
   exploration can select it), and
4. category-level shape constraints hold (e.g., MaxFlops must be
   bandwidth-insensitive, per Fig. 4).

The search uses :func:`scipy.optimize.differential_evolution` over seven
profile parameters; one objective evaluation sweeps the full 1617-point
grid through the vectorized node model, so a fit takes seconds.

The fitted values are baked into :mod:`repro.workloads.catalog`; this
module stays in the library so the calibration is reproducible
(``python -m repro.workloads.calibration`` re-runs it and prints the
resulting catalog parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import differential_evolution, minimize

from repro.core.config import PAPER_BEST_MEAN, DesignSpace, EHPConfig
from repro.core.node import NodeModel
from repro.perf.evalcache import evaluate_arrays_cached, simulate_trace_cached
from repro.sim.apu_sim import ApuSimConfig
from repro.util.units import MHZ, TB
from repro.workloads.kernels import KernelCategory, KernelProfile
from repro.workloads.traces import MemoryTrace, TraceGenerator

__all__ = [
    "PAPER_TABLE2",
    "CalibrationTarget",
    "FitReport",
    "TraceCrosscheckRow",
    "ChipletPenaltyRow",
    "DEFAULT_CHIPLET_PENALTIES_NS",
    "default_calibration_trace",
    "fit_profile",
    "fit_all",
    "joint_calibrate",
    "trace_crosscheck",
    "chiplet_penalty_table",
]

DEFAULT_TRACE_SEED = 42
DEFAULT_TRACE_ACCESSES = 50_000

# Free parameters, their profile field names, and search bounds.
_PARAM_BOUNDS: tuple[tuple[str, float, float], ...] = (
    ("bytes_per_flop", 0.001, 2.5),
    ("parallel_fraction", 0.30, 1.0),
    ("cache_hit_rate", 0.05, 0.90),
    ("thrash_pressure", 0.0, 1.5),
    ("latency_sensitivity", 0.005, 0.90),
    ("mlp_per_cu", 4.0, 96.0),
    ("cu_utilization", 0.20, 0.98),
)


@dataclass(frozen=True)
class CalibrationTarget:
    """One application's published optimum (Table II row)."""

    n_cus: int
    freq_mhz: int
    bw_tbps: int
    benefit_pct: float
    benefit_opt_pct: float

    @property
    def config(self) -> EHPConfig:
        """The target as an :class:`EHPConfig`."""
        return EHPConfig(
            n_cus=self.n_cus,
            gpu_freq=self.freq_mhz * MHZ,
            bandwidth=self.bw_tbps * TB,
        )


PAPER_TABLE2: Mapping[str, CalibrationTarget] = {
    "LULESH": CalibrationTarget(256, 1100, 4, 31.2, 38.0),
    "MiniAMR": CalibrationTarget(256, 1200, 4, 47.3, 54.3),
    "XSBench": CalibrationTarget(224, 1400, 5, 44.9, 47.5),
    "SNAP": CalibrationTarget(384, 700, 5, 18.2, 30.2),
    "CoMD": CalibrationTarget(192, 1500, 6, 40.3, 49.8),
    "CoMD-LJ": CalibrationTarget(224, 1300, 6, 29.6, 39.3),
    "HPGMG": CalibrationTarget(352, 900, 7, 34.9, 37.9),
    "MaxFlops": CalibrationTarget(384, 925, 1, 10.7, 19.9),
}
"""The paper's Table II, keyed by application name."""


@dataclass(frozen=True)
class FitReport:
    """Outcome of one profile fit."""

    profile: KernelProfile
    loss: float
    achieved_config: EHPConfig
    achieved_benefit_pct: float
    target: CalibrationTarget
    x: tuple = ()

    @property
    def config_matches(self) -> bool:
        """Did the fit land the argmax exactly on the Table II config?"""
        t = self.target.config
        a = self.achieved_config
        return (
            a.n_cus == t.n_cus
            and a.gpu_freq == t.gpu_freq
            and a.bandwidth == t.bandwidth
        )


class _Objective:
    """Callable loss over the seven free parameters for one application."""

    def __init__(
        self,
        base: KernelProfile,
        target: CalibrationTarget,
        space: DesignSpace,
        model: NodeModel,
        caps: Mapping[int, float] | None = None,
    ):
        self.base = base
        self.target = target
        self.space = space
        self.model = model
        self.cus, self.freqs, self.bws = space.grid_arrays()
        self.target_index = self._flat_index(target.config)
        self.mean_index = self._flat_index(PAPER_BEST_MEAN)
        # Optional joint-calibration caps: flat grid index -> maximum
        # allowed relative edge over the best-mean configuration. Set by
        # the joint pass so that 320/1000/3 wins the cross-application
        # average (see joint_calibrate).
        self.caps = dict(caps or {})
        self.caps.pop(self.target_index, None)

    def _flat_index(self, config: EHPConfig) -> int:
        i_cu = list(self.space.cu_counts).index(config.n_cus)
        i_f = list(self.space.frequencies).index(config.gpu_freq)
        i_b = list(self.space.bandwidths).index(config.bandwidth)
        n_f, n_b = len(self.space.frequencies), len(self.space.bandwidths)
        return (i_cu * n_f + i_f) * n_b + i_b

    def profile_from(self, x: Sequence[float]) -> KernelProfile:
        """Materialize a candidate profile from a parameter vector.

        Values are clipped to the search bounds so that unconstrained
        local polish steps remain valid profiles.
        """
        changes = {
            name: float(min(hi, max(lo, v)))
            for (name, lo, hi), v in zip(_PARAM_BOUNDS, x)
        }
        return self.base.with_overrides(**changes)

    def _argmax_distance(self, best_index: int) -> float:
        """Normalized grid distance between the argmax and the target."""
        n_f, n_b = len(self.space.frequencies), len(self.space.bandwidths)

        def split(i: int) -> tuple[int, int, int]:
            i_cu, rem = divmod(i, n_f * n_b)
            i_f, i_b = divmod(rem, n_b)
            return i_cu, i_f, i_b

        a = split(best_index)
        t = split(self.target_index)
        sizes = (len(self.space.cu_counts), n_f, n_b)
        return sum(abs(x - y) / s for x, y, s in zip(a, t, sizes))

    def __call__(self, x: Sequence[float]) -> float:
        profile = self.profile_from(x)
        ev = self.model.evaluate_arrays(profile, self.cus, self.freqs, self.bws)
        perf = np.asarray(ev.performance, dtype=float)
        power = np.asarray(ev.node_power, dtype=float)
        feasible = power <= self.space.power_budget

        loss = 0.0
        budget = self.space.power_budget
        # (3) the best-mean point must be feasible for this application.
        if not feasible[self.mean_index]:
            loss += 5.0 + (power[self.mean_index] - budget) / budget
        # (1) the target must be feasible and be the feasible argmax.
        if not feasible[self.target_index]:
            loss += 10.0 + (power[self.target_index] - budget) / budget
            return loss
        masked = np.where(feasible, perf, -np.inf)
        best_index = int(np.argmax(masked))
        perf_target = perf[self.target_index]
        loss += 30.0 * float((perf[best_index] - perf_target) / perf[best_index])
        if best_index != self.target_index:
            loss += 1.0 + 1.0 * self._argmax_distance(best_index)
        # (2) match the Table II benefit over the best-mean config.
        benefit = (perf_target / perf[self.mean_index] - 1.0) * 100.0
        loss += 3.0 * abs(benefit - self.target.benefit_pct) / 100.0
        # (2b) joint-calibration caps: keep this application's edge over
        # the best-mean configuration below the negotiated cap at each
        # contested grid point, so the joint average lands on 320/1000/3.
        if self.caps:
            perf_mean = perf[self.mean_index]
            for ci, cap in self.caps.items():
                edge = float(perf[ci] / perf_mean - 1.0)
                loss += 8.0 * max(0.0, edge - cap)
        # (4) category shape constraints.
        loss += self._shape_penalty(profile)
        # Mild regularization toward the category-informed base profile
        # keeps fitted parameters physically sensible when the data does
        # not constrain them.
        loss += 0.01 * self._regularizer(x)
        return float(loss)

    def _regularizer(self, x: Sequence[float]) -> float:
        dev = 0.0
        for (name, lo, hi), value in zip(_PARAM_BOUNDS, x):
            base_value = getattr(self.base, name)
            dev += ((value - base_value) / (hi - lo)) ** 2
        return dev / len(_PARAM_BOUNDS)

    def _shape_penalty(self, profile: KernelProfile) -> float:
        base = PAPER_BEST_MEAN
        if profile.category is KernelCategory.COMPUTE_INTENSIVE:
            # Fig. 4: bandwidth curves coincide for compute-bound kernels.
            lo = self.model.evaluate(profile, base.with_axes(bandwidth=1 * TB))
            hi = self.model.evaluate(profile, base.with_axes(bandwidth=7 * TB))
            ratio = float(hi.performance / lo.performance)
            return 5.0 * max(0.0, ratio - 1.02)
        if profile.category is KernelCategory.MEMORY_INTENSIVE:
            # Fig. 6: at fixed bandwidth, pushing compute far past the knee
            # must *lose* performance (cache thrashing / contention).
            knee = self.model.evaluate(profile, self.target.config)
            over = self.model.evaluate(
                profile,
                self.target.config.with_axes(n_cus=384, gpu_freq=1500 * MHZ),
            )
            ratio = float(over.performance / knee.performance)
            return 2.0 * max(0.0, ratio - 1.0)
        return 0.0


def fit_profile(
    base: KernelProfile,
    target: CalibrationTarget,
    space: DesignSpace | None = None,
    model: NodeModel | None = None,
    seed: int = 7,
    maxiter: int = 150,
    n_restarts: int = 3,
    caps: Mapping[int, float] | None = None,
) -> FitReport:
    """Fit one application's profile to its Table II row.

    Runs up to *n_restarts* differential-evolution searches from
    different seeds, each followed by a Nelder-Mead polish, and keeps the
    best. Stops early once the loss is effectively zero (exact argmax
    match and benefit within rounding).
    """
    space = space or DesignSpace()
    model = model or NodeModel()
    objective = _Objective(base, target, space, model, caps=caps)
    bounds = [(lo, hi) for (_, lo, hi) in _PARAM_BOUNDS]
    best_x, best_fun = None, np.inf
    for attempt in range(n_restarts):
        result = differential_evolution(
            objective,
            bounds=bounds,
            seed=seed + 1000 * attempt,
            maxiter=maxiter,
            tol=1e-12,
            polish=False,
            init="sobol",
            updating="deferred",
        )
        x, fun = result.x, float(result.fun)
        # Local polish: Nelder-Mead handles the piecewise-smooth regions
        # between argmax switches.
        polished = minimize(
            objective,
            x,
            method="Nelder-Mead",
            options={"maxiter": 400, "xatol": 1e-6, "fatol": 1e-10},
        )
        px = np.clip(polished.x, [b[0] for b in bounds], [b[1] for b in bounds])
        pfun = float(objective(px))
        if pfun < fun:
            x, fun = px, pfun
        if fun < best_fun:
            best_x, best_fun = x, fun
        if best_fun < 1e-4:
            break
    fitted = objective.profile_from(best_x)
    # Report the achieved argmax and benefit for the fitted profile.
    ev = model.evaluate_arrays(
        fitted, objective.cus, objective.freqs, objective.bws
    )
    perf = np.asarray(ev.performance, dtype=float)
    power = np.asarray(ev.node_power, dtype=float)
    masked = np.where(power <= space.power_budget, perf, -np.inf)
    best_index = int(np.argmax(masked))
    benefit = (
        perf[objective.target_index] / perf[objective.mean_index] - 1.0
    ) * 100.0
    return FitReport(
        profile=fitted.with_overrides(
            provenance=(
                "calibrated to Table II optimum "
                f"{target.config.label()} via repro.workloads.calibration"
            )
        ),
        loss=float(result.fun),
        achieved_config=space.config_at(best_index),
        achieved_benefit_pct=float(benefit),
        target=target,
        x=tuple(float(v) for v in best_x),
    )


def fit_all(
    bases: Mapping[str, KernelProfile],
    space: DesignSpace | None = None,
    model: NodeModel | None = None,
    seed: int = 7,
    maxiter: int = 150,
    n_restarts: int = 3,
) -> dict[str, FitReport]:
    """Fit every application in *bases* against :data:`PAPER_TABLE2`."""
    reports = {}
    for name, base in bases.items():
        if name not in PAPER_TABLE2:
            raise KeyError(f"no Table II target for {name!r}")
        reports[name] = fit_profile(
            base,
            PAPER_TABLE2[name],
            space,
            model,
            seed=seed,
            maxiter=maxiter,
            n_restarts=n_restarts,
        )
    return reports


def _polish_report(
    objective: _Objective,
    x0,
    target: CalibrationTarget,
    space: DesignSpace,
    model: NodeModel,
    maxiter: int = 600,
) -> FitReport:
    """Local Nelder-Mead refinement of one application from *x0*."""
    polished = minimize(
        objective,
        np.asarray(x0, dtype=float),
        method="Nelder-Mead",
        options={"maxiter": maxiter, "xatol": 1e-7, "fatol": 1e-11},
    )
    x = polished.x
    fitted = objective.profile_from(x)
    ev = model.evaluate_arrays(
        fitted, objective.cus, objective.freqs, objective.bws
    )
    perf = np.asarray(ev.performance, dtype=float)
    power = np.asarray(ev.node_power, dtype=float)
    masked = np.where(power <= space.power_budget, perf, -np.inf)
    best_index = int(np.argmax(masked))
    benefit = (
        perf[objective.target_index] / perf[objective.mean_index] - 1.0
    ) * 100.0
    return FitReport(
        profile=fitted,
        loss=float(objective(x)),
        achieved_config=space.config_at(best_index),
        achieved_benefit_pct=float(benefit),
        target=target,
        x=tuple(float(v) for v in x),
    )


def joint_calibrate(
    bases: Mapping[str, KernelProfile],
    space: DesignSpace | None = None,
    model: NodeModel | None = None,
    seed: int = 7,
    maxiter: int = 150,
    rounds: int = 10,
    verbose: bool = True,
) -> dict[str, FitReport]:
    """Two-stage calibration: per-application fits, then a joint pass.

    Stage 1 fits each application independently (argmax + benefit).
    Stage 2 checks the *joint* geometric-mean surface: wherever some
    configuration would out-average the paper's best-mean point
    (320/1000/3), the required reduction is split across the
    applications with positive edges there (proportionally), becoming
    per-application caps; each application is then locally re-polished
    under its caps. Iterate until 320/1000/3 is the joint argmax.
    """
    space = space or DesignSpace()
    model = model or NodeModel()
    reports = fit_all(bases, space, model, seed=seed, maxiter=maxiter)
    names = list(reports)
    caps: dict[str, dict[int, float]] = {n: {} for n in names}

    objective_of = {
        n: _Objective(bases[n], PAPER_TABLE2[n], space, model)
        for n in names
    }
    mean_index = objective_of[names[0]].mean_index
    cus, freqs, bws = space.grid_arrays()

    for round_no in range(rounds):
        perf = {}
        feas = {}
        for n in names:
            ev = model.evaluate_arrays(reports[n].profile, cus, freqs, bws)
            p = np.asarray(ev.performance, dtype=float)
            perf[n] = p
            feas[n] = np.asarray(ev.node_power, dtype=float) <= space.power_budget
        all_feasible = np.logical_and.reduce([feas[n] for n in names])
        log_ratio = np.zeros_like(perf[names[0]])
        for n in names:
            log_ratio += np.log(perf[n] / perf[n][mean_index])
        log_ratio /= len(names)
        contested = np.where(all_feasible & (log_ratio > 0))[0]
        contested = contested[contested != mean_index]
        if contested.size == 0:
            if verbose:
                print(f"[joint] converged after round {round_no}")
            break
        if verbose:
            worst = int(contested[np.argmax(log_ratio[contested])])
            print(
                f"[joint] round {round_no}: {contested.size} contested "
                f"configs, worst {space.config_at(worst).label()} "
                f"(+{100 * (np.exp(log_ratio[worst]) - 1.0):.1f}%)"
            )
        # Negotiate caps on the worst offenders this round.
        order = contested[np.argsort(log_ratio[contested])[::-1][:60]]
        margin = 0.015
        for ci in order:
            edges = {
                n: float(perf[n][ci] / perf[n][mean_index] - 1.0)
                for n in names
            }
            need = float(log_ratio[ci]) * len(names) + margin * len(names)
            positive = {n: e for n, e in edges.items() if e > 0.0}
            total_pos = sum(positive.values())
            if total_pos <= 0:
                continue
            for n, e in positive.items():
                reduction = need * (e / total_pos)
                new_edge = float(np.expm1(np.log1p(e) - reduction))
                existing = caps[n].get(int(ci))
                cap = new_edge if existing is None else min(existing, new_edge)
                caps[n][int(ci)] = cap
        # Re-polish every capped application locally. A polish is only
        # accepted when it preserves the hard per-application results
        # (argmax on the Table II config) — the joint pass trades edge
        # at contested configs, never Table II fidelity.
        for n in names:
            if not caps[n]:
                continue
            obj = _Objective(
                bases[n], PAPER_TABLE2[n], space, model, caps=caps[n]
            )
            candidate = _polish_report(
                obj, reports[n].x, PAPER_TABLE2[n], space, model
            )
            if candidate.config_matches or not reports[n].config_matches:
                reports[n] = candidate
    return reports


def default_calibration_trace(
    name: str = "CoMD",
    n_accesses: int = DEFAULT_TRACE_ACCESSES,
    seed: int = DEFAULT_TRACE_SEED,
) -> MemoryTrace:
    """The reference trace shared by the perf gates and cross-checks.

    One deterministic CoMD trace (the paper's headline memory-intensive
    kernel) at a fixed seed, so the benchmark suite, the performance
    gate and :func:`trace_crosscheck` all measure the same workload.
    """
    from repro.workloads.catalog import get_application

    profile = get_application(name)
    return TraceGenerator(profile, seed=seed).generate(n_accesses)


@dataclass(frozen=True)
class TraceCrosscheckRow:
    """One application's simulator-vs-analytic comparison."""

    name: str
    sim_flops_per_cu: float
    analytic_flops_per_cu: float
    sim_dram_fraction: float

    @property
    def ratio(self) -> float:
        """Simulated over analytic per-CU FLOP rate."""
        if self.analytic_flops_per_cu <= 0:
            return float("inf")
        return self.sim_flops_per_cu / self.analytic_flops_per_cu


def trace_crosscheck(
    names: Sequence[str] | None = None,
    sim_config: ApuSimConfig | None = None,
    model: NodeModel | None = None,
    n_accesses: int = 20_000,
    seed: int = DEFAULT_TRACE_SEED,
    engine: str | None = None,
) -> list[TraceCrosscheckRow]:
    """Cross-check the trace simulator against the analytic model.

    For each application this replays a synthetic trace with the
    profile's locality statistics through the scaled APU simulator and
    compares its achieved per-CU FLOP rate with the analytic model's
    prediction at the paper's best-mean configuration — the Section VI
    role the paper gives gem5. Both sides are normalized per CU because
    the simulator runs a scaled-down EHP.

    Both hot calls route through the shared fingerprint caches
    (:func:`repro.perf.evalcache.simulate_trace_cached` and
    :func:`repro.perf.evalcache.evaluate_arrays_cached`), so repeated
    sweeps — e.g. over engines, or from several drivers — never
    recompute a (config, trace) pair.
    """
    from repro.workloads.catalog import APPLICATIONS, get_application

    model = model or NodeModel()
    sim_config = sim_config or ApuSimConfig()
    best = PAPER_BEST_MEAN
    rows = []
    for name in list(names) if names is not None else list(APPLICATIONS):
        profile = get_application(name)
        trace = TraceGenerator(profile, seed=seed).generate(n_accesses)
        sim = simulate_trace_cached(trace, sim_config, engine=engine)
        ev = evaluate_arrays_cached(
            model, profile, best.n_cus, best.gpu_freq, best.bandwidth
        )
        rows.append(
            TraceCrosscheckRow(
                name=name,
                sim_flops_per_cu=sim.flops_rate / sim_config.n_cus,
                analytic_flops_per_cu=(
                    float(np.asarray(ev.performance)) / best.n_cus
                ),
                sim_dram_fraction=sim.dram_fraction,
            )
        )
    return rows


@dataclass(frozen=True)
class ChipletPenaltyRow:
    """One (application, penalty) point of the Fig. 7-style table."""

    name: str
    penalty_ns: float
    sim_relative: float
    analytic_relative: float

    @property
    def agreement(self) -> float:
        """Simulated over analytic relative performance (1.0 = the two
        substrates predict the same degradation)."""
        if self.analytic_relative <= 0:
            return float("inf")
        return self.sim_relative / self.analytic_relative


DEFAULT_CHIPLET_PENALTIES_NS = (0.0, 10.0, 25.0, 50.0, 100.0)
"""Cross-chiplet latency penalties swept by the Fig. 7-style table."""


def chiplet_penalty_table(
    penalties_ns: Sequence[float] = DEFAULT_CHIPLET_PENALTIES_NS,
    names: Sequence[str] | None = None,
    sim_config: ApuSimConfig | None = None,
    model: NodeModel | None = None,
    n_accesses: int = 20_000,
    seed: int = DEFAULT_TRACE_SEED,
    engine: str | None = None,
) -> list[ChipletPenaltyRow]:
    """Fig. 7-style chiplet-penalty table, simulated vs analytic.

    Sweeps ``chiplet_extra_latency`` through *both* substrates — the
    trace-driven APU simulator (``ApuSimConfig.chiplet_extra_latency``)
    and the analytic node model (``extra_latency``) — and reports each
    application's performance at every penalty relative to its own
    zero-penalty point. The paper's Fig. 7 makes the same comparison to
    argue the chiplet organization costs little; the ``agreement``
    column is the cross-substrate sanity check.

    Everything routes through the shared fingerprint caches, so the
    sweep costs one simulation per distinct (config, trace) pair.
    """
    import dataclasses

    from repro.workloads.catalog import APPLICATIONS, get_application

    if any(p < 0 for p in penalties_ns):
        raise ValueError("penalties must be non-negative")
    model = model or NodeModel()
    sim_config = sim_config or ApuSimConfig()
    best = PAPER_BEST_MEAN
    rows: list[ChipletPenaltyRow] = []
    for name in list(names) if names is not None else list(APPLICATIONS):
        profile = get_application(name)
        trace = TraceGenerator(profile, seed=seed).generate(n_accesses)

        def _point(penalty_ns: float) -> tuple[float, float]:
            cfg = dataclasses.replace(
                sim_config, chiplet_extra_latency=penalty_ns * 1e-9
            )
            sim = simulate_trace_cached(trace, cfg, engine=engine)
            ev = evaluate_arrays_cached(
                model,
                profile,
                best.n_cus,
                best.gpu_freq,
                best.bandwidth,
                extra_latency=penalty_ns * 1e-9,
            )
            return sim.flops_rate, float(np.asarray(ev.performance))

        sim_base, analytic_base = _point(0.0)
        for penalty in penalties_ns:
            sim_perf, analytic_perf = _point(float(penalty))
            rows.append(
                ChipletPenaltyRow(
                    name=name,
                    penalty_ns=float(penalty),
                    sim_relative=(
                        sim_perf / sim_base if sim_base > 0 else 0.0
                    ),
                    analytic_relative=(
                        analytic_perf / analytic_base
                        if analytic_base > 0
                        else 0.0
                    ),
                )
            )
    return rows


def _print_report(name: str, report: FitReport) -> None:
    profile = report.profile
    status = "OK " if report.config_matches else "MISS"
    print(
        f"[{status}] {name}: loss={report.loss:.4f} "
        f"argmax={report.achieved_config.label()} "
        f"target={report.target.config.label()} "
        f"benefit={report.achieved_benefit_pct:.1f}% "
        f"(paper {report.target.benefit_pct}%)",
        flush=True,
    )
    # Full-precision repr: the optima sit on sub-watt feasibility
    # boundaries, so rounded values would not reproduce the fit.
    for field_name, _, _ in _PARAM_BOUNDS:
        print(f"        {field_name}={getattr(profile, field_name)!r},")


def _main() -> None:  # pragma: no cover - developer entry point
    import sys

    from repro.workloads.catalog import APPLICATIONS

    if "--joint" in sys.argv:
        reports = joint_calibrate(APPLICATIONS)
        for name, report in reports.items():
            _print_report(name, report)
        return
    for name, base in APPLICATIONS.items():
        report = fit_profile(
            base, PAPER_TABLE2[name], seed=7, maxiter=120, n_restarts=2
        )
        _print_report(name, report)


if __name__ == "__main__":  # pragma: no cover
    _main()
