"""Synthetic memory-trace generation.

The trace-driven simulator substrate (:mod:`repro.sim`) cross-checks the
analytic model the way the paper uses the AMD gem5 APU simulator: by
running address streams whose locality statistics match each kernel
profile. A :class:`TraceGenerator` turns a profile into a
:class:`MemoryTrace` — a sequence of (address, is_write, flops-between)
records — with the profile's reuse, stride and write-ratio behaviour.

The generator mixes three canonical access patterns:

* **streaming** — sequential cache lines over a large extent (stencils),
* **reuse** — a hot working set revisited with geometric popularity
  (caches hit on these),
* **random** — uniform accesses over the footprint (XSBench-style table
  lookups; these defeat both caches and prefetchers).

The mix is derived from the profile: ``cache_hit_rate`` sets the hot-set
share, ``latency_sensitivity`` sets the random share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.kernels import KernelProfile

__all__ = ["MemoryTrace", "TraceGenerator"]

_LINE = 64


@dataclass(frozen=True)
class MemoryTrace:
    """A flat synthetic trace.

    Attributes
    ----------
    addresses:
        Byte addresses, aligned to cache lines.
    is_write:
        Boolean per access.
    flops_between:
        Floating-point work attributed between consecutive accesses
        (drives compute/memory interleaving in the simulator).
    footprint_bytes:
        Extent of the address space the trace touches.
    """

    addresses: np.ndarray
    is_write: np.ndarray
    flops_between: np.ndarray
    footprint_bytes: float

    def __post_init__(self) -> None:
        n = len(self.addresses)
        if len(self.is_write) != n or len(self.flops_between) != n:
            raise ValueError("trace arrays must have equal length")
        if n and int(self.addresses.max()) >= self.footprint_bytes:
            raise ValueError("address outside declared footprint")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def write_fraction(self) -> float:
        """Measured write share of the trace."""
        if len(self.is_write) == 0:
            return 0.0
        return float(np.mean(self.is_write))

    @property
    def unique_lines(self) -> int:
        """Number of distinct cache lines touched."""
        return int(np.unique(self.addresses // _LINE).size)


class TraceGenerator:
    """Deterministic (seeded) trace synthesis from a kernel profile."""

    def __init__(self, profile: KernelProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    def generate(self, n_accesses: int = 100_000) -> MemoryTrace:
        """Generate a trace of *n_accesses* line-aligned accesses."""
        if n_accesses <= 0:
            raise ValueError("n_accesses must be positive")
        p = self.profile
        rng = np.random.default_rng(self.seed)

        # Keep the modeled footprint but cap the synthetic extent so the
        # trace remains simulable; locality ratios are what matter.
        extent = int(min(p.footprint_bytes, 1 << 30))
        extent -= extent % _LINE
        extent = max(extent, _LINE * 1024)
        n_lines = extent // _LINE

        random_share = p.latency_sensitivity
        reuse_share = (1.0 - random_share) * p.cache_hit_rate
        stream_share = max(0.0, 1.0 - random_share - reuse_share)
        mix = rng.choice(
            3, size=n_accesses, p=[stream_share, reuse_share, random_share]
        )

        addresses = np.empty(n_accesses, dtype=np.int64)
        # Streaming: several concurrent sequential cursors (wavefronts).
        n_streams = 16
        cursors = rng.integers(0, n_lines, size=n_streams)
        stream_idx = np.flatnonzero(mix == 0)
        which = rng.integers(0, n_streams, size=stream_idx.size)
        for s in range(n_streams):
            sel = stream_idx[which == s]
            steps = np.arange(1, sel.size + 1)
            addresses[sel] = ((cursors[s] + steps) % n_lines) * _LINE
        # Reuse: hot set with geometric popularity.
        hot_lines = max(64, int(n_lines * 0.01))
        reuse_idx = np.flatnonzero(mix == 1)
        ranks = rng.geometric(p=0.02, size=reuse_idx.size) % hot_lines
        addresses[reuse_idx] = ranks * _LINE
        # Random: uniform over the footprint.
        rand_idx = np.flatnonzero(mix == 2)
        addresses[rand_idx] = rng.integers(0, n_lines, size=rand_idx.size) * _LINE

        is_write = rng.random(n_accesses) < p.write_fraction
        # Average flops between accesses follows operational intensity.
        mean_flops = max(p.operational_intensity * _LINE, 1.0)
        if not np.isfinite(mean_flops):
            mean_flops = 1.0e6
        flops_between = rng.exponential(mean_flops, size=n_accesses)

        return MemoryTrace(
            addresses=addresses,
            is_write=is_write,
            flops_between=flops_between,
            footprint_bytes=float(extent),
        )
