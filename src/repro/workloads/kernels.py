"""Kernel profile abstraction.

A :class:`KernelProfile` is the library's unit of workload description. It
captures, in a dozen scalars, what the paper's authors measured on real
hardware with performance counters: operational intensity, scaling
efficiency, cache behaviour, latency tolerance, and activity factors. Every
model in the library (performance, power, thermal, NoC, RAS) consumes only
the profile, never an application binary — exactly mirroring the paper's
high-level-simulation methodology, where measured counters feed analytic and
machine-learning scaling models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping


class KernelCategory(enum.Enum):
    """The paper's Section IV taxonomy of kernel behaviour."""

    COMPUTE_INTENSIVE = "compute-intensive"
    BALANCED = "balanced"
    MEMORY_INTENSIVE = "memory-intensive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class KernelProfile:
    """Measured characteristics of one application kernel.

    Parameters
    ----------
    name:
        Application name as it appears in Table I (e.g., ``"LULESH"``).
    category:
        Behavioural category from Section IV.
    description:
        Table I description string.
    flops:
        Total double-precision floating-point operations in one kernel
        invocation. The absolute value only sets the time scale; all the
        paper's figures are normalized.
    bytes_per_flop:
        Bytes *requested* from the memory system per flop, before cache
        filtering. The inverse of the kernel's intrinsic operational
        intensity.
    parallel_fraction:
        Exponent ``alpha`` in the CU-count scaling law ``throughput ~
        n_cus**alpha``: 1.0 scales perfectly with more CUs; lower values
        model serialization, divergence, and load imbalance.
    cache_hit_rate:
        LLC hit rate at the reference concurrency (one fully occupied
        GPU chiplet). Requests that hit never reach DRAM.
    thrash_pressure:
        How quickly the hit rate collapses as concurrency grows beyond the
        reference point. Zero means the working set is concurrency-
        insensitive; large values produce the rise-then-fall curves of the
        paper's memory-intensive kernels (Fig. 6).
    latency_sensitivity:
        Fraction of memory stall time that wavefront parallelism cannot
        hide; irregular-access kernels (LULESH) have high values.
    mlp_per_cu:
        Sustained outstanding cache-line misses per CU (memory-level
        parallelism). With ``latency_sensitivity`` this sets the
        latency-bound throughput via Little's law.
    ext_memory_fraction:
        Fraction of DRAM traffic served by the external (off-package)
        memory network under the paper's HMA-style management (reported
        46-89% across applications). Used by the power and Fig. 8 models.
    cu_utilization:
        Dynamic activity factor of a busy CU (switching capacitance
        utilization), used by the power model.
    issue_efficiency:
        Fraction of peak issue slots the kernel achieves when it is
        compute-bound (instruction mix, bank conflicts, pipeline bubbles).
        MaxFlops reaches ~0.9 of the 64 DP-flops/cycle/CU peak, matching
        the paper's 18.6 TF at 320 CUs and 1 GHz.
    write_fraction:
        Fraction of memory traffic that is writes; drives NVM dynamic
        energy asymmetry in the external-memory study (Fig. 9).
    compression_ratio:
        Achievable compression factor on LLC<->DRAM traffic (>= 1.0);
        drives the DRAM-traffic-compression optimization (Section V-E,
        Fig. 12). FP-heavy irregular data compresses modestly.
    footprint_bytes:
        Problem working-set size, used by the memory manager and trace
        generator.
    provenance:
        Free-form note recording how the numbers were obtained (e.g.,
        "calibrated to Table II optimum").
    """

    name: str
    category: KernelCategory
    description: str
    flops: float = 1.0e12
    bytes_per_flop: float = 0.5
    parallel_fraction: float = 0.95
    cache_hit_rate: float = 0.5
    thrash_pressure: float = 0.0
    latency_sensitivity: float = 0.1
    mlp_per_cu: float = 64.0
    ext_memory_fraction: float = 0.6
    cu_utilization: float = 0.7
    issue_efficiency: float = 0.9
    write_fraction: float = 0.3
    compression_ratio: float = 1.4
    footprint_bytes: float = 64.0e9
    provenance: str = "unspecified"
    extra: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._check_unit_interval("parallel_fraction", self.parallel_fraction)
        self._check_unit_interval("cache_hit_rate", self.cache_hit_rate)
        self._check_unit_interval(
            "latency_sensitivity", self.latency_sensitivity
        )
        self._check_unit_interval(
            "ext_memory_fraction", self.ext_memory_fraction
        )
        self._check_unit_interval("cu_utilization", self.cu_utilization)
        self._check_unit_interval("issue_efficiency", self.issue_efficiency)
        self._check_unit_interval("write_fraction", self.write_fraction)
        for positive_field in ("flops", "mlp_per_cu", "footprint_bytes"):
            value = getattr(self, positive_field)
            if value <= 0:
                raise ValueError(f"{positive_field} must be positive, got {value}")
        if self.compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1.0")
        for nonneg_field in ("bytes_per_flop", "thrash_pressure"):
            value = getattr(self, nonneg_field)
            if value < 0:
                raise ValueError(
                    f"{nonneg_field} must be non-negative, got {value}"
                )

    @staticmethod
    def _check_unit_interval(name: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def operational_intensity(self) -> float:
        """Intrinsic flops per requested byte (before cache filtering)."""
        if self.bytes_per_flop == 0:
            return float("inf")
        return 1.0 / self.bytes_per_flop

    def with_overrides(self, **changes: object) -> "KernelProfile":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    def scaled_problem(self, factor: float) -> "KernelProfile":
        """Return a copy with flops and footprint scaled by *factor*.

        Weak-scaling helper for the examples: the per-byte and per-flop
        characteristics are size-invariant in this model.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            flops=self.flops * factor,
            footprint_bytes=self.footprint_bytes * factor,
        )
