"""Kernel profile abstraction.

A :class:`KernelProfile` is the library's unit of workload description. It
captures, in a dozen scalars, what the paper's authors measured on real
hardware with performance counters: operational intensity, scaling
efficiency, cache behaviour, latency tolerance, and activity factors. Every
model in the library (performance, power, thermal, NoC, RAS) consumes only
the profile, never an application binary — exactly mirroring the paper's
high-level-simulation methodology, where measured counters feed analytic and
machine-learning scaling models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from types import SimpleNamespace
from typing import Mapping, Sequence

import numpy as np


class KernelCategory(enum.Enum):
    """The paper's Section IV taxonomy of kernel behaviour."""

    COMPUTE_INTENSIVE = "compute-intensive"
    BALANCED = "balanced"
    MEMORY_INTENSIVE = "memory-intensive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class KernelProfile:
    """Measured characteristics of one application kernel.

    Parameters
    ----------
    name:
        Application name as it appears in Table I (e.g., ``"LULESH"``).
    category:
        Behavioural category from Section IV.
    description:
        Table I description string.
    flops:
        Total double-precision floating-point operations in one kernel
        invocation. The absolute value only sets the time scale; all the
        paper's figures are normalized.
    bytes_per_flop:
        Bytes *requested* from the memory system per flop, before cache
        filtering. The inverse of the kernel's intrinsic operational
        intensity.
    parallel_fraction:
        Exponent ``alpha`` in the CU-count scaling law ``throughput ~
        n_cus**alpha``: 1.0 scales perfectly with more CUs; lower values
        model serialization, divergence, and load imbalance.
    cache_hit_rate:
        LLC hit rate at the reference concurrency (one fully occupied
        GPU chiplet). Requests that hit never reach DRAM.
    thrash_pressure:
        How quickly the hit rate collapses as concurrency grows beyond the
        reference point. Zero means the working set is concurrency-
        insensitive; large values produce the rise-then-fall curves of the
        paper's memory-intensive kernels (Fig. 6).
    latency_sensitivity:
        Fraction of memory stall time that wavefront parallelism cannot
        hide; irregular-access kernels (LULESH) have high values.
    mlp_per_cu:
        Sustained outstanding cache-line misses per CU (memory-level
        parallelism). With ``latency_sensitivity`` this sets the
        latency-bound throughput via Little's law.
    ext_memory_fraction:
        Fraction of DRAM traffic served by the external (off-package)
        memory network under the paper's HMA-style management (reported
        46-89% across applications). Used by the power and Fig. 8 models.
    cu_utilization:
        Dynamic activity factor of a busy CU (switching capacitance
        utilization), used by the power model.
    issue_efficiency:
        Fraction of peak issue slots the kernel achieves when it is
        compute-bound (instruction mix, bank conflicts, pipeline bubbles).
        MaxFlops reaches ~0.9 of the 64 DP-flops/cycle/CU peak, matching
        the paper's 18.6 TF at 320 CUs and 1 GHz.
    write_fraction:
        Fraction of memory traffic that is writes; drives NVM dynamic
        energy asymmetry in the external-memory study (Fig. 9).
    compression_ratio:
        Achievable compression factor on LLC<->DRAM traffic (>= 1.0);
        drives the DRAM-traffic-compression optimization (Section V-E,
        Fig. 12). FP-heavy irregular data compresses modestly.
    footprint_bytes:
        Problem working-set size, used by the memory manager and trace
        generator.
    provenance:
        Free-form note recording how the numbers were obtained (e.g.,
        "calibrated to Table II optimum").
    """

    name: str
    category: KernelCategory
    description: str
    flops: float = 1.0e12
    bytes_per_flop: float = 0.5
    parallel_fraction: float = 0.95
    cache_hit_rate: float = 0.5
    thrash_pressure: float = 0.0
    latency_sensitivity: float = 0.1
    mlp_per_cu: float = 64.0
    ext_memory_fraction: float = 0.6
    cu_utilization: float = 0.7
    issue_efficiency: float = 0.9
    write_fraction: float = 0.3
    compression_ratio: float = 1.4
    footprint_bytes: float = 64.0e9
    provenance: str = "unspecified"
    extra: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._check_unit_interval("parallel_fraction", self.parallel_fraction)
        self._check_unit_interval("cache_hit_rate", self.cache_hit_rate)
        self._check_unit_interval(
            "latency_sensitivity", self.latency_sensitivity
        )
        self._check_unit_interval(
            "ext_memory_fraction", self.ext_memory_fraction
        )
        self._check_unit_interval("cu_utilization", self.cu_utilization)
        self._check_unit_interval("issue_efficiency", self.issue_efficiency)
        self._check_unit_interval("write_fraction", self.write_fraction)
        for positive_field in ("flops", "mlp_per_cu", "footprint_bytes"):
            value = getattr(self, positive_field)
            if value <= 0:
                raise ValueError(f"{positive_field} must be positive, got {value}")
        if self.compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1.0")
        for nonneg_field in ("bytes_per_flop", "thrash_pressure"):
            value = getattr(self, nonneg_field)
            if value < 0:
                raise ValueError(
                    f"{nonneg_field} must be non-negative, got {value}"
                )

    @staticmethod
    def _check_unit_interval(name: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def operational_intensity(self) -> float:
        """Intrinsic flops per requested byte (before cache filtering)."""
        if self.bytes_per_flop == 0:
            return float("inf")
        return 1.0 / self.bytes_per_flop

    def with_overrides(self, **changes: object) -> "KernelProfile":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    def scaled_problem(self, factor: float) -> "KernelProfile":
        """Return a copy with flops and footprint scaled by *factor*.

        Weak-scaling helper for the examples: the per-byte and per-flop
        characteristics are size-invariant in this model.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            flops=self.flops * factor,
            footprint_bytes=self.footprint_bytes * factor,
        )


_BATCH_FIELDS: tuple[str, ...] = (
    "flops",
    "bytes_per_flop",
    "parallel_fraction",
    "cache_hit_rate",
    "thrash_pressure",
    "latency_sensitivity",
    "mlp_per_cu",
    "ext_memory_fraction",
    "cu_utilization",
    "issue_efficiency",
    "write_fraction",
    "compression_ratio",
    "footprint_bytes",
)
"""Numeric :class:`KernelProfile` fields a :class:`ProfileBatch` stacks."""


@dataclass(frozen=True, eq=False)
class ProfileBatch:
    """Struct-of-arrays stack of ``P`` kernel profiles.

    Each numeric :class:`KernelProfile` field (the names in
    :data:`_BATCH_FIELDS`) becomes a float64 column of shape ``(P, 1)``.
    The trailing singleton axis makes a column broadcast against one
    flattened grid axis out of the box; :meth:`expand` reshapes the
    columns for multi-axis layouts like the fused
    ``(profile, CU, freq, BW)`` tensor pass.

    The batch re-validates the profile invariants (unit intervals,
    positive flops/MLP, compression >= 1) even when constructed from
    raw columns: the fused evaluation path relies on them — e.g. it
    drops division guards that are dead only because ``flops > 0``.
    """

    names: tuple[str, ...]
    flops: np.ndarray
    bytes_per_flop: np.ndarray
    parallel_fraction: np.ndarray
    cache_hit_rate: np.ndarray
    thrash_pressure: np.ndarray
    latency_sensitivity: np.ndarray
    mlp_per_cu: np.ndarray
    ext_memory_fraction: np.ndarray
    cu_utilization: np.ndarray
    issue_efficiency: np.ndarray
    write_fraction: np.ndarray
    compression_ratio: np.ndarray
    footprint_bytes: np.ndarray

    def __post_init__(self) -> None:
        names = tuple(str(n) for n in self.names)
        object.__setattr__(self, "names", names)
        if not names:
            raise ValueError("a ProfileBatch needs at least one profile")
        if len(set(names)) != len(names):
            raise ValueError("profile names must be unique")
        expected = (len(names), 1)
        for fname in _BATCH_FIELDS:
            col = np.asarray(getattr(self, fname), dtype=float)
            if col.shape != expected:
                raise ValueError(
                    f"{fname} column must have shape {expected}, "
                    f"got {col.shape}"
                )
            object.__setattr__(self, fname, col)
        for fname in (
            "parallel_fraction",
            "cache_hit_rate",
            "latency_sensitivity",
            "ext_memory_fraction",
            "cu_utilization",
            "issue_efficiency",
            "write_fraction",
        ):
            col = getattr(self, fname)
            if np.any(col < 0.0) or np.any(col > 1.0):
                raise ValueError(f"{fname} must be in [0, 1]")
        for fname in ("flops", "mlp_per_cu", "footprint_bytes"):
            if np.any(getattr(self, fname) <= 0):
                raise ValueError(f"{fname} must be positive")
        if np.any(self.compression_ratio < 1.0):
            raise ValueError("compression_ratio must be >= 1.0")
        for fname in ("bytes_per_flop", "thrash_pressure"):
            if np.any(getattr(self, fname) < 0):
                raise ValueError(f"{fname} must be non-negative")

    @classmethod
    def from_profiles(
        cls, profiles: Sequence[KernelProfile]
    ) -> "ProfileBatch":
        """Stack validated profiles into columns, preserving order."""
        profiles = list(profiles)
        if not profiles:
            raise ValueError("a ProfileBatch needs at least one profile")
        columns = {
            fname: np.array(
                [[float(getattr(p, fname))] for p in profiles], dtype=float
            )
            for fname in _BATCH_FIELDS
        }
        return cls(names=tuple(p.name for p in profiles), **columns)

    @staticmethod
    def field_names() -> tuple[str, ...]:
        """The stacked column names, in declaration order."""
        return _BATCH_FIELDS

    def __len__(self) -> int:
        return len(self.names)

    def __getitem__(self, index) -> "ProfileBatch":
        """Row-slice the batch (``batch[2:5]``) into a smaller batch."""
        if isinstance(index, (int, np.integer)):
            index = slice(index, index + 1 or None)
        if not isinstance(index, slice):
            raise TypeError("ProfileBatch supports int/slice indexing only")
        names = self.names[index]
        if not names:
            raise IndexError("empty ProfileBatch slice")
        return ProfileBatch(
            names=names,
            **{f: getattr(self, f)[index] for f in _BATCH_FIELDS},
        )

    def expand(self, hw_axes: int) -> SimpleNamespace:
        """A duck-typed profile whose columns lead *hw_axes* hardware axes.

        Each ``(P, 1)`` column is reshaped to ``(P, 1, ..., 1)`` with
        *hw_axes* trailing singletons, so it broadcasts against any
        hardware-axis layout of that many dimensions. The result quacks
        like a :class:`KernelProfile` wherever only the numeric fields
        are read (:func:`repro.perfmodel.roofline.evaluate_kernel`,
        :func:`repro.power.breakdown.node_power`).
        """
        if hw_axes < 1:
            raise ValueError("hw_axes must be >= 1")
        shape = (len(self),) + (1,) * int(hw_axes)
        return SimpleNamespace(
            names=self.names,
            **{
                f: getattr(self, f).reshape(shape) for f in _BATCH_FIELDS
            },
        )
