"""Multi-kernel applications as phase sequences.

Real HPC applications are not one kernel: CoMD alternates force
computation with neighbour-list rebuilds; LULESH interleaves hydro
kernels with reductions. The paper models only each application's
dominant kernel (Table I's convention) but motivates dynamic
reconfiguration with phase behaviour (Section VI). This module gives
phase sequences a first-class representation used by the governor and
reconfiguration examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.workloads.catalog import get_application
from repro.workloads.kernels import KernelProfile

__all__ = ["Phase", "PhaseSequence", "synthetic_md_application"]


@dataclass(frozen=True)
class Phase:
    """One phase: a kernel profile with a weight (relative duration)."""

    profile: KernelProfile
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("phase weight must be positive")


@dataclass(frozen=True)
class PhaseSequence:
    """An ordered multi-phase application."""

    name: str
    phases: tuple = ()

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a phase sequence needs at least one phase")

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    @classmethod
    def from_profiles(
        cls,
        name: str,
        profiles: Sequence[KernelProfile],
        weights: Sequence[float] | None = None,
    ) -> "PhaseSequence":
        """Build from profiles with optional weights."""
        if weights is None:
            weights = [1.0] * len(profiles)
        if len(weights) != len(profiles):
            raise ValueError("weights must match profiles")
        return cls(
            name=name,
            phases=tuple(
                Phase(p, w) for p, w in zip(profiles, weights)
            ),
        )

    @property
    def total_weight(self) -> float:
        """Sum of phase weights."""
        return sum(p.weight for p in self.phases)

    def dominant_phase(self) -> Phase:
        """The heaviest phase (Table I's 'dominant kernel')."""
        return max(self.phases, key=lambda p: p.weight)

    def category_mix(self) -> dict[str, float]:
        """Weight share per kernel category."""
        mix: dict[str, float] = {}
        for phase in self.phases:
            key = str(phase.profile.category)
            mix[key] = mix.get(key, 0.0) + phase.weight
        total = self.total_weight
        return {k: v / total for k, v in mix.items()}

    def blended_profile(self) -> KernelProfile:
        """A weight-averaged single-kernel approximation.

        Useful to quantify what phase-blind modeling loses: evaluate the
        blend vs. the per-phase sum (see the governor example). Scalar
        fields average arithmetically, weighted by phase weight.
        """
        weights = np.array([p.weight for p in self.phases])
        weights = weights / weights.sum()

        def avg(attr: str) -> float:
            return float(
                sum(
                    w * getattr(p.profile, attr)
                    for w, p in zip(weights, self.phases)
                )
            )

        base = self.dominant_phase().profile
        return base.with_overrides(
            name=f"{self.name}-blend",
            bytes_per_flop=avg("bytes_per_flop"),
            parallel_fraction=avg("parallel_fraction"),
            cache_hit_rate=avg("cache_hit_rate"),
            thrash_pressure=avg("thrash_pressure"),
            latency_sensitivity=avg("latency_sensitivity"),
            mlp_per_cu=avg("mlp_per_cu"),
            cu_utilization=avg("cu_utilization"),
            provenance=f"weighted blend of {len(self.phases)} phases",
        )


def synthetic_md_application(iterations: int = 4) -> PhaseSequence:
    """A molecular-dynamics-shaped phase sequence.

    Each timestep: a compute-heavy force phase (MaxFlops-like), a
    balanced integration phase (CoMD), and a memory-heavy neighbour
    rebuild (LULESH-like); rebuilds happen every other iteration.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    phases: list[Phase] = []
    for i in range(iterations):
        phases.append(Phase(get_application("MaxFlops"), weight=2.0))
        phases.append(Phase(get_application("CoMD"), weight=1.0))
        if i % 2 == 1:
            phases.append(Phase(get_application("LULESH"), weight=1.5))
    return PhaseSequence(name="synthetic-md", phases=tuple(phases))
