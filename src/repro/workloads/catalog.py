"""The Table I application catalog.

Eight proxy applications, as the paper studies: one compute-intensive
throughput probe (MaxFlops), three balanced kernels (CoMD, CoMD-LJ,
HPGMG), and four memory-intensive kernels (LULESH, MiniAMR, XSBench,
SNAP). Only the dominant kernel of each application is modeled, matching
the paper's reporting convention.

The numeric profile parameters are **calibrated**: starting from
category-level estimates, :mod:`repro.workloads.calibration` searches each
profile's parameters so that the design-space exploration reproduces the
paper's Table II per-application optima and the Section V best-mean
configuration (320 CUs / 1000 MHz / 3 TB/s). The paper's own profiles come
from hardware measurement; these are the equivalent observable surface.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.kernels import KernelCategory, KernelProfile

__all__ = [
    "APPLICATIONS",
    "application_names",
    "get_application",
    "iter_applications",
    "table1_rows",
]

_CALIBRATION_NOTE = (
    "calibrated to Table II optimum via repro.workloads.calibration"
)

APPLICATIONS: dict[str, KernelProfile] = {
    "MaxFlops": KernelProfile(
        name="MaxFlops",
        category=KernelCategory.COMPUTE_INTENSIVE,
        description="Measures maximum FP throughput",
        flops=2.0e13,
        bytes_per_flop=0.009316208967302177,
        parallel_fraction=0.9866938260920906,
        cache_hit_rate=0.5023032015748461,
        thrash_pressure=0.05501541912456795,
        latency_sensitivity=0.016612950824557216,
        mlp_per_cu=64.0240594122369,
        ext_memory_fraction=0.05,
        cu_utilization=0.9167010208449466,
        issue_efficiency=0.907,
        write_fraction=0.10,
        compression_ratio=1.10,
        footprint_bytes=2.0e9,
        provenance=_CALIBRATION_NOTE,
    ),
    "CoMD": KernelProfile(
        name="CoMD",
        category=KernelCategory.BALANCED,
        description="Molecular-dynamics algorithms (Embedded Atom)",
        flops=2.0e13,
        bytes_per_flop=0.2741589467649608,
        parallel_fraction=0.35127303279336664,
        cache_hit_rate=0.6940709027534337,
        thrash_pressure=0.45542930886083155,
        latency_sensitivity=0.5069419748123623,
        mlp_per_cu=34.83834337666097,
        ext_memory_fraction=0.46,
        cu_utilization=0.21612850242018522,
        issue_efficiency=0.85,
        write_fraction=0.25,
        compression_ratio=1.35,
        footprint_bytes=3.2e10,
        provenance=_CALIBRATION_NOTE,
    ),
    "CoMD-LJ": KernelProfile(
        name="CoMD-LJ",
        category=KernelCategory.BALANCED,
        description="Molecular-dynamics algorithms (Lennard-Jones)",
        flops=2.0e13,
        bytes_per_flop=0.41175106574336406,
        parallel_fraction=0.42515029433069634,
        cache_hit_rate=0.8852581739965804,
        thrash_pressure=0.18309640564339408,
        latency_sensitivity=0.49460909659626046,
        mlp_per_cu=15.935750011279858,
        ext_memory_fraction=0.50,
        cu_utilization=0.5412644047422236,
        issue_efficiency=0.85,
        write_fraction=0.25,
        compression_ratio=1.35,
        footprint_bytes=3.2e10,
        provenance=_CALIBRATION_NOTE,
    ),
    "HPGMG": KernelProfile(
        name="HPGMG",
        category=KernelCategory.BALANCED,
        description="Ranks HPC systems",
        flops=2.0e13,
        bytes_per_flop=0.375899421908302,
        parallel_fraction=0.8112907728116516,
        cache_hit_rate=0.8487490013383718,
        thrash_pressure=0.15349370247458582,
        latency_sensitivity=0.48339304285729606,
        mlp_per_cu=11.756608946258691,
        ext_memory_fraction=0.60,
        cu_utilization=0.49023850385878964,
        issue_efficiency=0.85,
        write_fraction=0.35,
        compression_ratio=1.50,
        footprint_bytes=1.0e11,
        provenance=_CALIBRATION_NOTE,
    ),
    "LULESH": KernelProfile(
        name="LULESH",
        category=KernelCategory.MEMORY_INTENSIVE,
        description="Hydrodynamic simulation",
        flops=2.0e13,
        bytes_per_flop=0.18902079214536305,
        parallel_fraction=0.6940919959068627,
        cache_hit_rate=0.1874716718368572,
        thrash_pressure=0.8586725217190507,
        latency_sensitivity=0.44329365383256236,
        mlp_per_cu=38.641689905242714,
        ext_memory_fraction=0.70,
        cu_utilization=0.23158454545028864,
        issue_efficiency=0.85,
        write_fraction=0.40,
        compression_ratio=1.60,
        footprint_bytes=1.5e11,
        provenance=_CALIBRATION_NOTE,
    ),
    "MiniAMR": KernelProfile(
        name="MiniAMR",
        category=KernelCategory.MEMORY_INTENSIVE,
        description="3D stencil computation with adaptive mesh refinement",
        flops=2.0e13,
        bytes_per_flop=0.22029908473360518,
        parallel_fraction=0.9549907014651343,
        cache_hit_rate=0.5112073613400852,
        thrash_pressure=0.6379688932632352,
        latency_sensitivity=0.5884834041627189,
        mlp_per_cu=45.29889583394138,
        ext_memory_fraction=0.75,
        cu_utilization=0.2244065498608605,
        issue_efficiency=0.85,
        write_fraction=0.35,
        compression_ratio=1.50,
        footprint_bytes=2.0e11,
        provenance=_CALIBRATION_NOTE,
    ),
    "XSBench": KernelProfile(
        name="XSBench",
        category=KernelCategory.MEMORY_INTENSIVE,
        description="Monte Carlo particle transport simulation",
        flops=2.0e13,
        bytes_per_flop=0.2410642815750328,
        parallel_fraction=0.7483519687789064,
        cache_hit_rate=0.7235610484844084,
        thrash_pressure=0.6469511389075779,
        latency_sensitivity=0.6470919007825218,
        mlp_per_cu=40.48066937388347,
        ext_memory_fraction=0.85,
        cu_utilization=0.24405690883139114,
        issue_efficiency=0.85,
        write_fraction=0.10,
        compression_ratio=1.20,
        footprint_bytes=2.5e11,
        provenance=_CALIBRATION_NOTE,
    ),
    "SNAP": KernelProfile(
        name="SNAP",
        category=KernelCategory.MEMORY_INTENSIVE,
        description="Discrete ordinates neutral particle transport application",
        flops=2.0e13,
        bytes_per_flop=2.5,
        parallel_fraction=0.3109823592209462,
        cache_hit_rate=0.3023358826515906,
        thrash_pressure=0.6738350656538254,
        latency_sensitivity=0.6552089545343973,
        mlp_per_cu=69.97528754373985,
        ext_memory_fraction=0.89,
        cu_utilization=0.98,
        issue_efficiency=0.85,
        write_fraction=0.35,
        compression_ratio=1.45,
        footprint_bytes=1.8e11,
        provenance=_CALIBRATION_NOTE,
    ),
}
"""Name -> calibrated profile for the paper's eight applications."""


def application_names() -> list[str]:
    """Catalog names in the paper's Table I order."""
    return list(APPLICATIONS)


def get_application(name: str) -> KernelProfile:
    """Look up a profile by name; raises ``KeyError`` with suggestions."""
    try:
        return APPLICATIONS[name]
    except KeyError:
        known = ", ".join(APPLICATIONS)
        raise KeyError(f"unknown application {name!r}; known: {known}") from None


def iter_applications() -> Iterator[KernelProfile]:
    """Iterate all eight profiles in catalog order."""
    return iter(APPLICATIONS.values())


def table1_rows() -> list[tuple[str, str, str]]:
    """Table I's (category, application, description) rows."""
    return [
        (str(p.category), p.name, p.description)
        for p in APPLICATIONS.values()
    ]
