"""Workload characterization: kernel profiles, the Table I catalog, traces.

The paper characterizes eight proxy applications (Table I) into three
categories (compute-intensive, balanced, memory-intensive) by measuring them
on real hardware. We capture the observable surface of those measurements in
:class:`~repro.workloads.kernels.KernelProfile` objects, calibrate them
against the paper's published optima, and generate synthetic memory traces
with matching locality statistics for the trace-driven simulator.
"""

from repro.workloads.kernels import KernelCategory, KernelProfile
from repro.workloads.catalog import (
    APPLICATIONS,
    application_names,
    get_application,
    table1_rows,
)
from repro.workloads.traces import MemoryTrace, TraceGenerator
from repro.workloads.phases import Phase, PhaseSequence, synthetic_md_application

__all__ = [
    "KernelCategory",
    "KernelProfile",
    "APPLICATIONS",
    "application_names",
    "get_application",
    "table1_rows",
    "MemoryTrace",
    "TraceGenerator",
    "Phase",
    "PhaseSequence",
    "synthetic_md_application",
]
