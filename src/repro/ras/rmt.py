"""GPU redundant multithreading (RMT) cost model.

Section II-A5: rather than burden the GPU chiplets with HPC-only ECC
area (hurting their reuse in graphics markets), the paper explores
software RMT — duplicate computation on otherwise-idle CUs and compare.
The cost depends on how utilized the GPU already is: idle resources
make redundancy nearly free; a saturated GPU pays up to 2x.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RmtCostModel"]


@dataclass(frozen=True)
class RmtCostModel:
    """Overhead/coverage model for compiler-managed GPU RMT.

    Attributes
    ----------
    detection_coverage:
        Fraction of transient compute faults the duplicate-and-compare
        scheme detects.
    compare_overhead:
        Fixed instruction overhead of the comparison/checking code,
        as a fraction of baseline work.
    """

    detection_coverage: float = 0.95
    compare_overhead: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_coverage <= 1.0:
            raise ValueError("detection_coverage must be in [0, 1]")
        if self.compare_overhead < 0:
            raise ValueError("compare_overhead must be non-negative")

    def slowdown(self, gpu_utilization: float) -> float:
        """Execution-time factor (>= 1) of enabling RMT.

        With utilization ``u``, the redundant copy first absorbs the
        idle ``1 - u`` of the machine; demand beyond capacity extends
        execution time: total work is ``2u`` plus checking, over a
        machine of capacity 1.
        """
        if not 0.0 <= gpu_utilization <= 1.0:
            raise ValueError("gpu_utilization must be in [0, 1]")
        demand = 2.0 * gpu_utilization * (1.0 + self.compare_overhead)
        return max(1.0, demand) if gpu_utilization > 0 else 1.0

    def energy_overhead(self, gpu_utilization: float) -> float:
        """Extra dynamic energy fraction: the duplicate work always
        switches transistors even when it hides in idle slots."""
        if not 0.0 <= gpu_utilization <= 1.0:
            raise ValueError("gpu_utilization must be in [0, 1]")
        return gpu_utilization * (1.0 + self.compare_overhead)

    def covered_fit_reduction(self, gpu_transient_fit: float) -> float:
        """Transient FIT removed from the silent-error budget."""
        if gpu_transient_fit < 0:
            raise ValueError("FIT must be non-negative")
        return gpu_transient_fit * self.detection_coverage
