"""Component fault-rate modeling.

Rates are expressed in FIT (failures per 10^9 device-hours), the
standard reliability unit. The node model aggregates per-component FITs
— scaled by capacity/area — into a node rate; the system model
multiplies across 100,000 nodes. Transient (soft) and hard rates are
tracked separately because ECC/RMT address the former and redundancy/
sparing the latter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComponentFaultRates", "FaultModel", "fit_to_mttf_hours"]

HOURS_PER_FIT = 1.0e9


def fit_to_mttf_hours(fit: float) -> float:
    """Mean time to failure (hours) for an aggregate FIT rate."""
    if fit < 0:
        raise ValueError("FIT must be non-negative")
    if fit == 0:
        return float("inf")
    return HOURS_PER_FIT / fit


@dataclass(frozen=True)
class ComponentFaultRates:
    """Per-unit FIT rates for one component class.

    ``transient_fit`` and ``hard_fit`` are per *unit* (per GB for
    memories, per CU/core for logic).
    """

    name: str
    transient_fit: float
    hard_fit: float

    def __post_init__(self) -> None:
        if self.transient_fit < 0 or self.hard_fit < 0:
            raise ValueError("FIT rates must be non-negative")

    def total_fit(self, units: float) -> float:
        """Aggregate FIT for *units* instances."""
        if units < 0:
            raise ValueError("units must be non-negative")
        return (self.transient_fit + self.hard_fit) * units


# Representative exascale-timeframe rates (per GB / per compute unit).
DRAM_3D = ComponentFaultRates("3D DRAM", transient_fit=25.0, hard_fit=5.0)
DRAM_EXT = ComponentFaultRates("external DRAM", transient_fit=30.0, hard_fit=6.0)
NVM_EXT = ComponentFaultRates("external NVM", transient_fit=8.0, hard_fit=12.0)
GPU_CU = ComponentFaultRates("GPU CU", transient_fit=10.0, hard_fit=0.05)
CPU_CORE = ComponentFaultRates("CPU core", transient_fit=20.0, hard_fit=0.5)
LOGIC_OTHER = ComponentFaultRates("other logic", transient_fit=20.0, hard_fit=5.0)


class FaultModel:
    """Aggregates component FITs into node-level rates.

    Protection coverage (from ECC/RMT) removes the covered share of
    *transient* faults from the silent/uncorrected rate.
    """

    def __init__(
        self,
        n_cus: int = 320,
        n_cpu_cores: int = 32,
        dram3d_gb: float = 256.0,
        ext_dram_gb: float = 1024.0,
        ext_nvm_gb: float = 0.0,
    ):
        if min(n_cus, n_cpu_cores) <= 0:
            raise ValueError("compute counts must be positive")
        if min(dram3d_gb, ext_dram_gb, ext_nvm_gb) < 0:
            raise ValueError("capacities must be non-negative")
        self.n_cus = n_cus
        self.n_cpu_cores = n_cpu_cores
        self.dram3d_gb = dram3d_gb
        self.ext_dram_gb = ext_dram_gb
        self.ext_nvm_gb = ext_nvm_gb

    def raw_node_fit(self) -> float:
        """Unprotected node FIT: every component, transient + hard."""
        return (
            DRAM_3D.total_fit(self.dram3d_gb)
            + DRAM_EXT.total_fit(self.ext_dram_gb)
            + NVM_EXT.total_fit(self.ext_nvm_gb)
            + GPU_CU.total_fit(self.n_cus)
            + CPU_CORE.total_fit(self.n_cpu_cores)
            + LOGIC_OTHER.total_fit(1.0)
        )

    def uncorrected_node_fit(
        self,
        memory_coverage: float = 0.0,
        gpu_coverage: float = 0.0,
        cpu_coverage: float = 0.0,
        memory_hard_coverage: float = 0.0,
    ) -> float:
        """Node FIT after protection removes covered faults.

        Coverages are detection+correction probabilities in [0, 1]
        (e.g., SEC-DED memory ECC ~ 0.97 of transients; GPU RMT
        detection ~ 0.95; chipkill ~ 0.99 of hard device faults).
        """
        for name, c in (
            ("memory_coverage", memory_coverage),
            ("gpu_coverage", gpu_coverage),
            ("cpu_coverage", cpu_coverage),
            ("memory_hard_coverage", memory_hard_coverage),
        ):
            if not 0.0 <= c <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        mem_transient = (
            DRAM_3D.transient_fit * self.dram3d_gb
            + DRAM_EXT.transient_fit * self.ext_dram_gb
            + NVM_EXT.transient_fit * self.ext_nvm_gb
        )
        mem_hard = (
            DRAM_3D.hard_fit * self.dram3d_gb
            + DRAM_EXT.hard_fit * self.ext_dram_gb
            + NVM_EXT.hard_fit * self.ext_nvm_gb
        )
        gpu_t = GPU_CU.transient_fit * self.n_cus
        gpu_h = GPU_CU.hard_fit * self.n_cus
        cpu_t = CPU_CORE.transient_fit * self.n_cpu_cores
        cpu_h = CPU_CORE.hard_fit * self.n_cpu_cores
        other = LOGIC_OTHER.total_fit(1.0)
        return (
            mem_transient * (1.0 - memory_coverage)
            + mem_hard * (1.0 - memory_hard_coverage)
            + gpu_t * (1.0 - gpu_coverage)
            + gpu_h
            + cpu_t * (1.0 - cpu_coverage)
            + cpu_h
            + other
        )
