"""Error-correcting-code math for memory protection.

Section II-A5: ECC handles regular arrays (DRAM, SRAM) but costs area —
a real constraint in the space-limited EHP. This module provides the
standard schemes' storage overheads and coverage, plus the Hamming-bound
arithmetic behind SEC-DED sizing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ecc_overhead_bits", "EccScheme", "SECDED", "Chipkill", "NoEcc"]


def ecc_overhead_bits(data_bits: int) -> int:
    """Check bits for SEC-DED over *data_bits* (Hamming + parity).

    Smallest ``r`` with ``2**r >= data_bits + r + 1``, plus one
    double-error-detect parity bit.
    """
    if data_bits <= 0:
        raise ValueError("data_bits must be positive")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


@dataclass(frozen=True)
class EccScheme:
    """A memory protection scheme's cost/coverage summary.

    ``coverage_transient`` is the fraction of transient memory faults
    corrected or safely detected; ``coverage_hard`` the fraction of
    permanent device faults survived without intervention (chipkill's
    raison d'etre); ``storage_overhead`` the extra capacity fraction;
    ``latency_penalty`` the relative access-time cost of encode/decode.
    """

    name: str
    storage_overhead: float
    coverage_transient: float
    latency_penalty: float
    coverage_hard: float = 0.0

    def __post_init__(self) -> None:
        if self.storage_overhead < 0:
            raise ValueError("storage overhead must be non-negative")
        if not 0.0 <= self.coverage_transient <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        if not 0.0 <= self.coverage_hard <= 1.0:
            raise ValueError("coverage_hard must be in [0, 1]")
        if self.latency_penalty < 0:
            raise ValueError("latency penalty must be non-negative")

    def effective_capacity(self, raw_bytes: float) -> float:
        """Usable capacity once check bits are carved out."""
        if raw_bytes < 0:
            raise ValueError("raw_bytes must be non-negative")
        return raw_bytes / (1.0 + self.storage_overhead)


def _secded_overhead(word_bits: int = 64) -> float:
    return ecc_overhead_bits(word_bits) / word_bits


NoEcc = EccScheme(
    name="none", storage_overhead=0.0, coverage_transient=0.0,
    latency_penalty=0.0,
)

SECDED = EccScheme(
    name="SEC-DED(72,64)",
    storage_overhead=_secded_overhead(64),
    coverage_transient=0.999,
    latency_penalty=0.01,
    coverage_hard=0.30,  # single-bit hard faults look like stuck cells
)

Chipkill = EccScheme(
    name="chipkill",
    storage_overhead=0.1875,  # e.g., 32 data + 6 check symbols per rank
    coverage_transient=0.9995,
    latency_penalty=0.03,
    coverage_hard=0.995,  # tolerates a whole failed device per rank
)


def silent_error_rate(
    transient_fit: float, scheme: EccScheme
) -> float:
    """Residual uncorrected/undetected FIT under *scheme*."""
    if transient_fit < 0:
        raise ValueError("transient_fit must be non-negative")
    return transient_fit * (1.0 - scheme.coverage_transient)


def detectable_burst_length(symbol_bits: int) -> int:
    """Longest error burst a symbol-based (chipkill-style) code confines
    to one symbol — the device-failure coverage argument."""
    if symbol_bits <= 0:
        raise ValueError("symbol_bits must be positive")
    return symbol_bits


def interleaving_factor_for_rate(
    raw_ber: float, target_word_error: float, word_bits: int = 64
) -> int:
    """How many ways to interleave so multi-bit upsets in one physical
    neighbourhood land in distinct ECC words.

    With raw bit-error probability *raw_ber* per word, SEC-DED fails on
    >= 2 errors; interleaving by ``k`` divides the pairwise probability
    by ``k``. Returns the smallest power-of-two factor achieving the
    target.
    """
    if not 0.0 < raw_ber < 1.0:
        raise ValueError("raw_ber must be in (0, 1)")
    if not 0.0 < target_word_error < 1.0:
        raise ValueError("target_word_error must be in (0, 1)")
    p_multi = 1.0 - (1.0 - raw_ber) ** word_bits - word_bits * raw_ber * (
        1.0 - raw_ber
    ) ** (word_bits - 1)
    if p_multi <= target_word_error:
        return 1
    k = math.ceil(p_multi / target_word_error)
    return 1 << max(0, (k - 1).bit_length())
