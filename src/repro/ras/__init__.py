"""Reliability, availability, serviceability (RAS) substrate.

Section II-A5: at 100,000 nodes, a small per-node fault rate multiplies
into an unacceptable system MTTF, so RAS is a first-class constraint.
This package provides FIT-rate fault modeling (:mod:`repro.ras.faults`),
ECC coding math for SEC-DED and chipkill (:mod:`repro.ras.ecc`), a GPU
redundant-multithreading cost model (:mod:`repro.ras.rmt`), and the
node-to-system MTTF roll-up against the paper's "user intervention on
the order of a week or more" target (:mod:`repro.ras.mttf`).
"""

from repro.ras.faults import ComponentFaultRates, FaultModel
from repro.ras.ecc import EccScheme, SECDED, Chipkill, ecc_overhead_bits
from repro.ras.rmt import RmtCostModel
from repro.ras.mttf import SystemReliability

__all__ = [
    "ComponentFaultRates",
    "FaultModel",
    "EccScheme",
    "SECDED",
    "Chipkill",
    "ecc_overhead_bits",
    "RmtCostModel",
    "SystemReliability",
]
