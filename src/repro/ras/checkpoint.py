"""Checkpoint/restart efficiency model.

At exascale MTTFs, applications survive faults by checkpointing; the
machine's *useful* throughput is what remains after checkpoint writes,
rework after failures, and restarts. This module implements the standard
first-order optimization (Young/Daly): the optimal checkpoint interval
``sqrt(2 * delta * M)`` for checkpoint cost ``delta`` and MTTF ``M``,
and the resulting machine efficiency — connecting the RAS substrate's
FIT arithmetic to the exascale roll-up's delivered exaflops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CheckpointModel", "CheckpointPlan"]


@dataclass(frozen=True)
class CheckpointPlan:
    """A chosen checkpoint regime and its predicted efficiency."""

    interval_s: float
    checkpoint_cost_s: float
    mttf_s: float
    efficiency: float

    @property
    def overhead(self) -> float:
        """Fraction of machine time lost to checkpoints and rework."""
        return 1.0 - self.efficiency


@dataclass(frozen=True)
class CheckpointModel:
    """Checkpoint cost and efficiency estimation for one node/system.

    Attributes
    ----------
    checkpoint_bytes:
        State written per checkpoint (typically the application's
        in-package + hot external footprint).
    io_bandwidth:
        Sustainable checkpoint bandwidth per node (burst buffer or
        external-memory network headroom), B/s.
    restart_cost_s:
        Fixed restart time after a failure, seconds.
    """

    checkpoint_bytes: float = 64.0e9
    io_bandwidth: float = 50.0e9
    restart_cost_s: float = 30.0

    def __post_init__(self) -> None:
        if self.checkpoint_bytes <= 0 or self.io_bandwidth <= 0:
            raise ValueError("checkpoint size and bandwidth must be positive")
        if self.restart_cost_s < 0:
            raise ValueError("restart cost must be non-negative")

    @property
    def checkpoint_cost_s(self) -> float:
        """Seconds to write one checkpoint."""
        return self.checkpoint_bytes / self.io_bandwidth

    def optimal_interval(self, mttf_s: float) -> float:
        """Young's optimal interval ``sqrt(2 * delta * M)``."""
        if mttf_s <= 0:
            raise ValueError("mttf must be positive")
        return math.sqrt(2.0 * self.checkpoint_cost_s * mttf_s)

    def efficiency(self, mttf_s: float, interval_s: float | None = None) -> float:
        """Useful-work fraction under the given (or optimal) interval.

        First-order model: each interval of length ``tau`` pays the
        checkpoint cost ``delta``; failures (rate ``1/M``) waste on
        average half an interval plus the restart cost.
        """
        if mttf_s <= 0:
            raise ValueError("mttf must be positive")
        tau = self.optimal_interval(mttf_s) if interval_s is None else interval_s
        if tau <= 0:
            raise ValueError("interval must be positive")
        delta = self.checkpoint_cost_s
        useful_per_interval = tau / (tau + delta)
        failure_waste = (tau / 2.0 + self.restart_cost_s) / mttf_s
        return max(0.0, useful_per_interval * (1.0 - failure_waste))

    def plan(self, mttf_s: float) -> CheckpointPlan:
        """Optimal plan for a given MTTF."""
        tau = self.optimal_interval(mttf_s)
        return CheckpointPlan(
            interval_s=tau,
            checkpoint_cost_s=self.checkpoint_cost_s,
            mttf_s=mttf_s,
            efficiency=self.efficiency(mttf_s, tau),
        )

    def required_mttf_for_efficiency(
        self, target_efficiency: float, tolerance: float = 1e-4
    ) -> float:
        """Smallest system MTTF achieving *target_efficiency* (bisection).

        Inverts the efficiency curve; raises ``ValueError`` for targets
        outside (0, 1).
        """
        if not 0.0 < target_efficiency < 1.0:
            raise ValueError("target efficiency must be in (0, 1)")
        lo, hi = 1.0, 1.0e10
        if self.efficiency(hi) < target_efficiency:
            raise ValueError("target efficiency unreachable for this cost")
        while hi / lo > 1.0 + tolerance:
            mid = math.sqrt(lo * hi)
            if self.efficiency(mid) >= target_efficiency:
                hi = mid
            else:
                lo = mid
        return hi
