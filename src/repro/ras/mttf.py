"""System-level reliability roll-up.

The exascale requirement (Section I): user intervention due to faults
on the order of a week or more, across ~100,000 nodes. With node
failure rate ``lambda``, the system MTTF is ``1 / (N * lambda)`` for
interventions that any single node failure triggers; checkpoint/restart
absorbs the rest. This module converts protected node FITs into system
MTTF and checks the paper's target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ras.ecc import EccScheme, SECDED
from repro.ras.faults import FaultModel, fit_to_mttf_hours
from repro.ras.rmt import RmtCostModel

__all__ = ["SystemReliability"]

WEEK_HOURS = 7.0 * 24.0


@dataclass(frozen=True)
class SystemReliability:
    """Reliability analysis for an N-node machine."""

    n_nodes: int = 100_000
    fault_model: FaultModel = None  # type: ignore[assignment]
    memory_ecc: EccScheme = SECDED
    rmt: RmtCostModel | None = None

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.fault_model is None:
            object.__setattr__(self, "fault_model", FaultModel())

    def node_fit(self) -> float:
        """Protected per-node FIT (uncorrected/undetected faults)."""
        gpu_cov = self.rmt.detection_coverage if self.rmt else 0.0
        return self.fault_model.uncorrected_node_fit(
            memory_coverage=self.memory_ecc.coverage_transient,
            gpu_coverage=gpu_cov,
            cpu_coverage=0.99,  # CPU cores ship with ECC-protected arrays
            memory_hard_coverage=self.memory_ecc.coverage_hard,
        )

    def node_mttf_hours(self) -> float:
        """Mean time between uncorrected faults on one node."""
        return fit_to_mttf_hours(self.node_fit())

    def system_mttf_hours(self) -> float:
        """Mean time between node-level interventions machine-wide."""
        return self.node_mttf_hours() / self.n_nodes

    def meets_week_target(self) -> bool:
        """Does the machine meet the >= 1 week intervention target?"""
        return self.system_mttf_hours() >= WEEK_HOURS

    def required_node_fit_for_week(self) -> float:
        """The node FIT budget implied by the week target."""
        return 1.0e9 / (WEEK_HOURS * self.n_nodes)

    def intervention_interval_days(self) -> float:
        """System MTTF in days (the paper's reporting unit)."""
        return self.system_mttf_hours() / 24.0
