"""Hardware DRAM-cache mode for the in-package 3D DRAM (Section II-B3).

The ENA's alternative memory mode treats the 256 GB of in-package DRAM
as a hardware-managed cache over external memory. The paper notes the
trade-off: the cached capacity disappears from the addressable space
(20% of the node's 1.25 TB), so HPC deployments usually prefer the
software-managed flat mode — but problems that fit in external memory
alone get a transparent performance uplift.

The model is a set-associative cache with cache-line-grain sectors and
page-grain allocation, tracked with simple LRU, sized for functional
behaviour studies rather than cycle accuracy.

Two interchangeable engines stream a trace through the cache:

``engine="event"``
    The original one-address-at-a-time loop over
    :meth:`DramCache.access`, kept verbatim as the readable
    specification and test oracle.

``engine="array"`` (default, via :meth:`DramCache.access_many`)
    Set and tag indices are resolved for the whole stream as flat numpy
    columns, each access's home set is pre-bound into a list (one list
    index in the hot loop instead of two dict lookups), and the LRU
    state is replayed per set over the same insertion-ordered dicts the
    scalar path mutates — so the two engines share state and are
    bit-identical, while the per-access cost drops from a method call
    plus scalar address arithmetic to a single sentinel ``dict.pop``
    plus reinsert on local variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["DramCacheStats", "DramCache", "ENGINES"]

ENGINES = ("array", "event")
"""Valid values for the ``engine`` selector (the first is the default)."""

_MISS = object()
"""Sentinel distinguishing a miss from a cached ``False`` dirty bit."""


@dataclass
class DramCacheStats:
    """Access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when empty)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class DramCache:
    """Set-associative page-grain DRAM cache with LRU replacement.

    Parameters
    ----------
    capacity_bytes:
        Cache capacity (the in-package DRAM size in cache mode).
    page_bytes:
        Allocation grain; the paper's design space spans cache-line to
        page granularity — page-grain keeps tag overheads negligible.
    associativity:
        Ways per set.
    engine:
        Default execution engine for :meth:`run_trace`, ``"array"``
        (batched fast path) or ``"event"`` (the scalar oracle). Either
        can be overridden per call.
    """

    def __init__(
        self,
        capacity_bytes: float = 256.0e9,
        page_bytes: int = 4096,
        associativity: int = 8,
        engine: str = "array",
    ):
        if capacity_bytes <= 0 or page_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        n_frames = int(capacity_bytes // page_bytes)
        if n_frames < associativity:
            raise ValueError("capacity too small for one set")
        self.page_bytes = page_bytes
        self.associativity = associativity
        self.n_sets = n_frames // associativity
        self.engine = self._check_engine(engine)
        # set index -> insertion-ordered dict of tag -> dirty flag; the
        # first key is always the LRU way (pop + reinsert on every hit).
        self._sets: dict[int, dict[int, bool]] = {}
        self.stats = DramCacheStats()

    @staticmethod
    def _check_engine(engine: str) -> str:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        return engine

    def _locate(self, address: int) -> tuple[int, int]:
        page = address // self.page_bytes
        return page % self.n_sets, page // self.n_sets

    def access(self, address: int, is_write: bool = False) -> bool:
        """Look up one address; returns True on hit.

        Misses allocate (fetching from external memory); LRU victims
        that are dirty count as writebacks.
        """
        if address < 0:
            raise ValueError("address must be non-negative")
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, {})
        if tag in ways:
            # Pop + reinsert moves the way to the MRU (last) position
            # while accumulating the dirty bit.
            ways[tag] = ways.pop(tag) or is_write
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            dirty = ways.pop(next(iter(ways)))
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        ways[tag] = is_write
        return False

    def _check_writes(self, addresses: np.ndarray, writes) -> np.ndarray:
        if writes is None:
            return np.zeros(len(addresses), dtype=bool)
        writes = np.asarray(writes, dtype=bool)
        if len(writes) != len(addresses):
            raise ValueError("writes length must match addresses")
        return writes

    def access_many(self, addresses, writes=None) -> np.ndarray:
        """Batched lookup of a whole address stream (the array engine).

        Returns the per-access hit flags; statistics and LRU state
        advance exactly as the equivalent sequence of :meth:`access`
        calls would (the two paths share the same per-set structures, so
        scalar and batched calls can be freely interleaved).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        writes = self._check_writes(addresses, writes)
        n = len(addresses)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if int(addresses.min()) < 0:
            raise ValueError("address must be non-negative")

        # Whole-stream set/tag columns (same arithmetic as _locate),
        # then pre-bind each access's home set to one list entry so the
        # hot loop never re-hashes the set index.
        pages = addresses // self.page_bytes
        set_col = pages % self.n_sets
        tag_col = pages // self.n_sets
        sets_map = self._sets
        for s in np.unique(set_col).tolist():
            if s not in sets_map:
                sets_map[s] = {}
        ways_of = list(map(sets_map.__getitem__, set_col.tolist()))

        flags: list[bool] = []
        append = flags.append
        hits = misses = evictions = writebacks = 0
        assoc = self.associativity
        for ways, tag, is_write in zip(
            ways_of, tag_col.tolist(), writes.tolist()
        ):
            # Single hashed operation per hit: pop with a sentinel
            # default both tests membership and removes the way, and
            # the reinsert lands it at the MRU position.
            dirty = ways.pop(tag, _MISS)
            if dirty is not _MISS:
                ways[tag] = dirty or is_write
                hits += 1
                append(True)
            else:
                misses += 1
                if len(ways) >= assoc:
                    victim = ways.pop(next(iter(ways)))
                    evictions += 1
                    if victim:
                        writebacks += 1
                ways[tag] = is_write
                append(False)
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.evictions += evictions
        self.stats.writebacks += writebacks
        return np.asarray(flags, dtype=bool)

    def run_trace(self, addresses, writes=None,
                  engine: str | None = None) -> DramCacheStats:
        """Stream a whole trace; returns the cumulative statistics."""
        engine = self.engine if engine is None else self._check_engine(engine)
        addresses = np.asarray(addresses, dtype=np.int64)
        with obs_trace.span(
            "dramcache.run_trace", engine=engine,
            accesses=int(addresses.size),
        ):
            if engine == "array":
                self.access_many(addresses, writes)
            else:
                writes = self._check_writes(addresses, writes)
                for addr, w in zip(addresses.tolist(), writes.tolist()):
                    self.access(addr, w)
        obs_metrics.inc("memsys.dramcache.runs")
        obs_metrics.inc("memsys.dramcache.accesses", int(addresses.size))
        return self.stats

    @property
    def resident_pages(self) -> int:
        """Pages currently cached."""
        return sum(len(ways) for ways in self._sets.values())

    def addressable_capacity_loss(self, external_bytes: float) -> float:
        """Fraction of total node memory hidden by cache mode.

        With 256 GB cached over 1 TB external, 20% of the 1.25 TB
        address space disappears — the paper's argument for flat mode.
        """
        if external_bytes <= 0:
            raise ValueError("external_bytes must be positive")
        cache_bytes = self.n_sets * self.associativity * self.page_bytes
        return cache_bytes / (cache_bytes + external_bytes)
