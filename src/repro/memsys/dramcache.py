"""Hardware DRAM-cache mode for the in-package 3D DRAM (Section II-B3).

The ENA's alternative memory mode treats the 256 GB of in-package DRAM
as a hardware-managed cache over external memory. The paper notes the
trade-off: the cached capacity disappears from the addressable space
(20% of the node's 1.25 TB), so HPC deployments usually prefer the
software-managed flat mode — but problems that fit in external memory
alone get a transparent performance uplift.

The model is a set-associative cache with cache-line-grain sectors and
page-grain allocation, tracked with simple LRU, sized for functional
behaviour studies rather than cycle accuracy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["DramCacheStats", "DramCache"]


@dataclass
class DramCacheStats:
    """Access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when empty)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class DramCache:
    """Set-associative page-grain DRAM cache with LRU replacement.

    Parameters
    ----------
    capacity_bytes:
        Cache capacity (the in-package DRAM size in cache mode).
    page_bytes:
        Allocation grain; the paper's design space spans cache-line to
        page granularity — page-grain keeps tag overheads negligible.
    associativity:
        Ways per set.
    """

    def __init__(
        self,
        capacity_bytes: float = 256.0e9,
        page_bytes: int = 4096,
        associativity: int = 8,
    ):
        if capacity_bytes <= 0 or page_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        n_frames = int(capacity_bytes // page_bytes)
        if n_frames < associativity:
            raise ValueError("capacity too small for one set")
        self.page_bytes = page_bytes
        self.associativity = associativity
        self.n_sets = n_frames // associativity
        # set index -> OrderedDict of tag -> dirty flag (LRU order).
        self._sets: dict[int, OrderedDict[int, bool]] = {}
        self.stats = DramCacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        page = address // self.page_bytes
        return page % self.n_sets, page // self.n_sets

    def access(self, address: int, is_write: bool = False) -> bool:
        """Look up one address; returns True on hit.

        Misses allocate (fetching from external memory); LRU victims
        that are dirty count as writebacks.
        """
        if address < 0:
            raise ValueError("address must be non-negative")
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            ways[tag] = ways[tag] or is_write
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            _, dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        ways[tag] = is_write
        return False

    def run_trace(self, addresses, writes=None) -> DramCacheStats:
        """Stream a whole trace; returns the cumulative statistics."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if writes is None:
            writes = np.zeros(len(addresses), dtype=bool)
        else:
            writes = np.asarray(writes, dtype=bool)
            if len(writes) != len(addresses):
                raise ValueError("writes length must match addresses")
        for addr, w in zip(addresses.tolist(), writes.tolist()):
            self.access(addr, w)
        return self.stats

    @property
    def resident_pages(self) -> int:
        """Pages currently cached."""
        return sum(len(ways) for ways in self._sets.values())

    def addressable_capacity_loss(self, external_bytes: float) -> float:
        """Fraction of total node memory hidden by cache mode.

        With 256 GB cached over 1 TB external, 20% of the 1.25 TB
        address space disappears — the paper's argument for flat mode.
        """
        if external_bytes <= 0:
            raise ValueError("external_bytes must be positive")
        cache_bytes = self.n_sets * self.associativity * self.page_bytes
        return cache_bytes / (cache_bytes + external_bytes)
