"""Two-level memory management policies (Section II-B3).

The ENA's primary mode is software-controlled placement: the OS monitors
page hotness and migrates pages between in-package DRAM and external
memory to maximize the fraction of requests served in-package. This
module implements that machinery over synthetic access histograms:

* :class:`FirstTouchPolicy` — pages stay where first allocated
  (in-package until it fills, then external),
* :class:`HotnessMigrationPolicy` — periodic epoch-based migration of
  the hottest pages into in-package DRAM (the HMA-style approach of the
  paper's reference [27]),
* :class:`MemoryManager` — bookkeeping, placement queries, migration
  cost accounting, and the achieved in-package hit fraction that feeds
  the Fig. 8 performance model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Protocol

import numpy as np

__all__ = [
    "MemoryLevel",
    "PagePlacement",
    "PlacementPolicy",
    "FirstTouchPolicy",
    "HotnessMigrationPolicy",
    "MemoryManager",
]

PAGE = 4096


class MemoryLevel(enum.Enum):
    """Which level a page lives in."""

    IN_PACKAGE = "in-package"
    EXTERNAL = "external"


@dataclass(frozen=True)
class PagePlacement:
    """Result of one placement epoch."""

    level_of_page: Mapping[int, MemoryLevel]
    migrated_pages: int

    def in_package_pages(self) -> int:
        """Pages resident in in-package DRAM."""
        return sum(
            1
            for lvl in self.level_of_page.values()
            if lvl is MemoryLevel.IN_PACKAGE
        )


class PlacementPolicy(Protocol):
    """Strategy interface: choose which pages go in-package."""

    def place(
        self,
        access_counts: Mapping[int, int],
        current: Mapping[int, MemoryLevel],
        capacity_pages: int,
    ) -> PagePlacement:
        """Return the next epoch's placement."""
        ...  # pragma: no cover


class FirstTouchPolicy:
    """Pages keep their initial placement: earliest-allocated pages fill
    in-package DRAM; later pages spill to external memory. No migration
    ever happens — the paper's baseline for why management matters."""

    def place(
        self,
        access_counts: Mapping[int, int],
        current: Mapping[int, MemoryLevel],
        capacity_pages: int,
    ) -> PagePlacement:
        placement = dict(current)
        resident = sum(
            1 for lvl in placement.values() if lvl is MemoryLevel.IN_PACKAGE
        )
        for page in access_counts:
            if page in placement:
                continue
            if resident < capacity_pages:
                placement[page] = MemoryLevel.IN_PACKAGE
                resident += 1
            else:
                placement[page] = MemoryLevel.EXTERNAL
        return PagePlacement(level_of_page=placement, migrated_pages=0)


class HotnessMigrationPolicy:
    """Epoch-based hottest-pages-first placement.

    At each epoch the *capacity_pages* most-accessed pages are placed
    in-package; everything else goes external. ``migration_limit``
    caps per-epoch movement (migration consumes real bandwidth), so
    convergence to the ideal placement can take several epochs — the
    behaviour HMA-style managers exhibit.
    """

    def __init__(self, migration_limit: int | None = None):
        if migration_limit is not None and migration_limit < 0:
            raise ValueError("migration_limit must be non-negative")
        self.migration_limit = migration_limit

    def place(
        self,
        access_counts: Mapping[int, int],
        current: Mapping[int, MemoryLevel],
        capacity_pages: int,
    ) -> PagePlacement:
        ranked = sorted(
            access_counts, key=lambda p: access_counts[p], reverse=True
        )
        want_in = set(ranked[:capacity_pages])
        placement = dict(current)
        for page in access_counts:
            placement.setdefault(page, MemoryLevel.EXTERNAL)

        to_promote = [
            p
            for p in ranked[:capacity_pages]
            if placement.get(p) is not MemoryLevel.IN_PACKAGE
        ]
        if self.migration_limit is not None:
            to_promote = to_promote[: self.migration_limit]

        resident = {
            p for p, lvl in placement.items() if lvl is MemoryLevel.IN_PACKAGE
        }
        migrated = 0
        for page in to_promote:
            if len(resident) >= capacity_pages:
                # Evict the coldest resident page not in the wanted set.
                evictable = sorted(
                    (p for p in resident if p not in want_in),
                    key=lambda p: access_counts.get(p, 0),
                )
                if not evictable:
                    break
                victim = evictable[0]
                placement[victim] = MemoryLevel.EXTERNAL
                resident.discard(victim)
            placement[page] = MemoryLevel.IN_PACKAGE
            resident.add(page)
            migrated += 1
        return PagePlacement(level_of_page=placement, migrated_pages=migrated)


class MemoryManager:
    """Drives a placement policy over access epochs and reports the
    achieved in-package service fraction."""

    def __init__(
        self,
        capacity_bytes: float,
        policy: PlacementPolicy,
        page_size: int = PAGE,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.capacity_pages = int(capacity_bytes // page_size)
        self.page_size = page_size
        self.policy = policy
        self.placement: dict[int, MemoryLevel] = {}
        self.total_migrated = 0

    def epoch(self, addresses: np.ndarray) -> float:
        """Process one epoch of accesses; returns the fraction of them
        served in-package *under the placement in force during the
        epoch* (migration takes effect for the next epoch)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return 1.0
        pages = addresses // self.page_size
        unique, counts = np.unique(pages, return_counts=True)
        access_counts = dict(zip(unique.tolist(), counts.tolist()))

        served_in = sum(
            int(c)
            for p, c in access_counts.items()
            if self.placement.get(p) is MemoryLevel.IN_PACKAGE
        )
        hit_fraction = served_in / int(counts.sum())

        result = self.policy.place(
            access_counts, self.placement, self.capacity_pages
        )
        self.placement = dict(result.level_of_page)
        self.total_migrated += result.migrated_pages
        return hit_fraction

    def run(self, epochs: list[np.ndarray]) -> list[float]:
        """Process several epochs; returns per-epoch in-package fractions."""
        return [self.epoch(e) for e in epochs]

    @property
    def resident_pages(self) -> int:
        """Pages currently in in-package DRAM."""
        return sum(
            1
            for lvl in self.placement.values()
            if lvl is MemoryLevel.IN_PACKAGE
        )

    def migration_traffic_bytes(self) -> float:
        """Total bytes moved by migrations so far."""
        return float(self.total_migrated * self.page_size)
