"""Two-level memory management policies (Section II-B3).

The ENA's primary mode is software-controlled placement: the OS monitors
page hotness and migrates pages between in-package DRAM and external
memory to maximize the fraction of requests served in-package. This
module implements that machinery over synthetic access histograms:

* :class:`FirstTouchPolicy` — pages stay where first allocated
  (in-package until it fills, then external),
* :class:`HotnessMigrationPolicy` — periodic epoch-based migration of
  the hottest pages into in-package DRAM (the HMA-style approach of the
  paper's reference [27]),
* :class:`MemoryManager` — bookkeeping, placement queries, migration
  cost accounting, and the achieved in-package hit fraction that feeds
  the Fig. 8 performance model.

Two interchangeable engines drive the epoch loop:

``engine="event"``
    The original scalar path: :meth:`MemoryManager.epoch` builds a
    per-page count dict and delegates to the policy's ``place`` method,
    kept as the readable specification and test oracle.

``engine="array"`` (default)
    :meth:`MemoryManager.epoch_array` ranks page access counts with
    ``np.lexsort`` (descending count, ascending page — exactly the
    order Python's stable ``sorted`` produces over the ascending
    ``np.unique`` keys), computes promotions and the full eviction
    order as vectorized top-k selections, and replays only the short
    promote/evict tail as a loop. Placement updates are applied as
    deltas to the shared ``placement`` dict, so the two engines can be
    freely interleaved and produce identical placements, hit fractions,
    and migration counts.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Mapping, Protocol

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "MemoryLevel",
    "PagePlacement",
    "PlacementPolicy",
    "FirstTouchPolicy",
    "HotnessMigrationPolicy",
    "MemoryManager",
    "ENGINES",
]

PAGE = 4096

ENGINES = ("array", "event")
"""Valid values for the ``engine`` selector (the first is the default)."""


class MemoryLevel(enum.Enum):
    """Which level a page lives in."""

    IN_PACKAGE = "in-package"
    EXTERNAL = "external"


@dataclass(frozen=True)
class PagePlacement:
    """Result of one placement epoch."""

    level_of_page: Mapping[int, MemoryLevel]
    migrated_pages: int

    def in_package_pages(self) -> int:
        """Pages resident in in-package DRAM."""
        return sum(
            1
            for lvl in self.level_of_page.values()
            if lvl is MemoryLevel.IN_PACKAGE
        )


class PlacementPolicy(Protocol):
    """Strategy interface: choose which pages go in-package."""

    def place(
        self,
        access_counts: Mapping[int, int],
        current: Mapping[int, MemoryLevel],
        capacity_pages: int,
    ) -> PagePlacement:
        """Return the next epoch's placement."""
        ...  # pragma: no cover


class FirstTouchPolicy:
    """Pages keep their initial placement: earliest-allocated pages fill
    in-package DRAM; later pages spill to external memory. No migration
    ever happens — the paper's baseline for why management matters."""

    def place(
        self,
        access_counts: Mapping[int, int],
        current: Mapping[int, MemoryLevel],
        capacity_pages: int,
    ) -> PagePlacement:
        placement = dict(current)
        resident = sum(
            1 for lvl in placement.values() if lvl is MemoryLevel.IN_PACKAGE
        )
        for page in access_counts:
            if page in placement:
                continue
            if resident < capacity_pages:
                placement[page] = MemoryLevel.IN_PACKAGE
                resident += 1
            else:
                placement[page] = MemoryLevel.EXTERNAL
        return PagePlacement(level_of_page=placement, migrated_pages=0)


class HotnessMigrationPolicy:
    """Epoch-based hottest-pages-first placement.

    At each epoch the *capacity_pages* most-accessed pages are placed
    in-package; everything else goes external. ``migration_limit``
    caps per-epoch movement (migration consumes real bandwidth), so
    convergence to the ideal placement can take several epochs — the
    behaviour HMA-style managers exhibit.
    """

    def __init__(self, migration_limit: int | None = None):
        if migration_limit is not None and migration_limit < 0:
            raise ValueError("migration_limit must be non-negative")
        self.migration_limit = migration_limit

    def place(
        self,
        access_counts: Mapping[int, int],
        current: Mapping[int, MemoryLevel],
        capacity_pages: int,
    ) -> PagePlacement:
        ranked = sorted(
            access_counts, key=lambda p: access_counts[p], reverse=True
        )
        want_in = set(ranked[:capacity_pages])
        placement = dict(current)
        for page in access_counts:
            placement.setdefault(page, MemoryLevel.EXTERNAL)

        to_promote = [
            p
            for p in ranked[:capacity_pages]
            if placement.get(p) is not MemoryLevel.IN_PACKAGE
        ]
        if self.migration_limit is not None:
            to_promote = to_promote[: self.migration_limit]

        resident = {
            p for p, lvl in placement.items() if lvl is MemoryLevel.IN_PACKAGE
        }
        migrated = 0
        # Evictions pop the coldest resident page not in the wanted set,
        # ties broken on the page number so the choice does not depend
        # on set iteration order (keeps this oracle bit-identical to the
        # vectorized engine). The candidate set never grows during the
        # promote loop — promotions only add wanted pages, which are
        # excluded — and only shrinks by the popped victims, so one heap
        # built at the first eviction yields exactly the page a fresh
        # sort would have picked each iteration, without re-sorting the
        # whole resident set per eviction.
        evict_heap: list[tuple[int, int]] | None = None
        for page in to_promote:
            if len(resident) >= capacity_pages:
                if evict_heap is None:
                    evict_heap = [
                        (access_counts.get(p, 0), p)
                        for p in resident
                        if p not in want_in
                    ]
                    heapq.heapify(evict_heap)
                if not evict_heap:
                    break
                _, victim = heapq.heappop(evict_heap)
                placement[victim] = MemoryLevel.EXTERNAL
                resident.discard(victim)
            placement[page] = MemoryLevel.IN_PACKAGE
            resident.add(page)
            migrated += 1
        return PagePlacement(level_of_page=placement, migrated_pages=migrated)


class MemoryManager:
    """Drives a placement policy over access epochs and reports the
    achieved in-package service fraction.

    Parameters
    ----------
    capacity_bytes:
        In-package DRAM capacity.
    policy:
        Placement strategy; the array engine has vectorized paths for
        :class:`FirstTouchPolicy` and :class:`HotnessMigrationPolicy`
        and falls back to the scalar policy call for anything else.
    page_size:
        Placement grain.
    engine:
        Default execution engine for :meth:`run` / :meth:`run_batch`,
        ``"array"`` (vectorized epochs) or ``"event"`` (the scalar
        oracle). Either can be overridden per call.
    """

    def __init__(
        self,
        capacity_bytes: float,
        policy: PlacementPolicy,
        page_size: int = PAGE,
        engine: str = "array",
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.capacity_pages = int(capacity_bytes // page_size)
        self.page_size = page_size
        self.policy = policy
        self.engine = self._check_engine(engine)
        self.placement: dict[int, MemoryLevel] = {}
        self.total_migrated = 0
        # Resident-page mirror for the array engine; None means stale
        # (the scalar path replaced `placement` wholesale) and it is
        # rebuilt lazily on the next array epoch.
        self._resident: set[int] | None = set()

    @staticmethod
    def _check_engine(engine: str) -> str:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        return engine

    def epoch(self, addresses: np.ndarray) -> float:
        """Process one epoch of accesses; returns the fraction of them
        served in-package *under the placement in force during the
        epoch* (migration takes effect for the next epoch)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return 1.0
        pages = addresses // self.page_size
        unique, counts = np.unique(pages, return_counts=True)
        access_counts = dict(zip(unique.tolist(), counts.tolist()))

        served_in = sum(
            int(c)
            for p, c in access_counts.items()
            if self.placement.get(p) is MemoryLevel.IN_PACKAGE
        )
        hit_fraction = served_in / int(counts.sum())

        result = self.policy.place(
            access_counts, self.placement, self.capacity_pages
        )
        self.placement = dict(result.level_of_page)
        self.total_migrated += result.migrated_pages
        self._resident = None
        return hit_fraction

    # ------------------------------------------------------------------
    # Array fast path
    # ------------------------------------------------------------------
    def _resident_set(self) -> set[int]:
        if self._resident is None:
            self._resident = {
                p
                for p, lvl in self.placement.items()
                if lvl is MemoryLevel.IN_PACKAGE
            }
        return self._resident

    def epoch_array(self, addresses: np.ndarray) -> float:
        """Vectorized :meth:`epoch`: identical placements, hit
        fractions, and migration counts, computed with array top-k
        ranking instead of per-page dict loops.

        Policies without a vectorized path fall back to the scalar
        :meth:`epoch` (exact policy types only, so subclasses that
        override ``place`` keep their semantics).
        """
        policy_type = type(self.policy)
        if policy_type is HotnessMigrationPolicy:
            return self._epoch_array_hotness(addresses)
        if policy_type is FirstTouchPolicy:
            return self._epoch_array_first_touch(addresses)
        return self.epoch(addresses)

    def _epoch_prolog(self, addresses):
        """Shared epoch setup: unique page counts, residency mask over
        the epoch's pages, and the served-in-package fraction."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return None
        pages = addresses // self.page_size
        unique, counts = np.unique(pages, return_counts=True)
        unique_list = unique.tolist()
        n_unique = len(unique_list)
        get = self.placement.get
        known = np.fromiter(
            (get(p) is not None for p in unique_list), bool, n_unique
        )
        resident = self._resident_set()
        resident_mask = np.fromiter(
            (p in resident for p in unique_list), bool, n_unique
        )
        served_in = int(counts[resident_mask].sum())
        hit_fraction = served_in / int(counts.sum())
        return unique, counts, unique_list, known, resident_mask, hit_fraction

    def _epoch_array_first_touch(self, addresses) -> float:
        prolog = self._epoch_prolog(addresses)
        if prolog is None:
            return 1.0
        unique, counts, unique_list, known, resident_mask, hit_fraction = (
            prolog
        )
        resident = self._resident_set()
        new_pages = unique[~known].tolist()
        room = max(0, self.capacity_pages - len(resident))
        take = min(room, len(new_pages))
        levels = [MemoryLevel.IN_PACKAGE] * take + [
            MemoryLevel.EXTERNAL
        ] * (len(new_pages) - take)
        self.placement.update(zip(new_pages, levels))
        resident.update(new_pages[:take])
        return hit_fraction

    def _epoch_array_hotness(self, addresses) -> float:
        prolog = self._epoch_prolog(addresses)
        if prolog is None:
            return 1.0
        unique, counts, unique_list, known, resident_mask, hit_fraction = (
            prolog
        )
        resident = self._resident_set()
        placement = self.placement
        capacity = self.capacity_pages

        # New pages default to external before migration (the scalar
        # path's setdefault sweep), in the same ascending-page order.
        new_pages = unique[~known].tolist()
        placement.update(
            zip(new_pages, (MemoryLevel.EXTERNAL,) * len(new_pages))
        )

        # Rank by descending count, ascending page: np.lexsort's last
        # key is primary, and negating counts plus the ascending page
        # tiebreak reproduces the stable scalar sort exactly.
        order = np.lexsort((unique, -counts))
        top = order[:capacity]
        to_promote = unique[top[~resident_mask[top]]].tolist()
        limit = self.policy.migration_limit
        if limit is not None:
            to_promote = to_promote[:limit]

        # Eviction candidates: resident pages outside the wanted set,
        # orderable once up front because promotions only ever add
        # wanted pages (never new candidates) and the count ranking is
        # fixed for the epoch.
        migrated = 0
        if to_promote:
            want_in = set(unique[top].tolist())
            cands = np.fromiter(
                (p for p in resident if p not in want_in),
                np.int64,
            )
            if cands.size:
                idx = np.searchsorted(unique, cands)
                idx[idx >= len(unique_list)] = 0
                found = unique[idx] == cands
                cand_counts = np.where(found, counts[idx], 0)
                victims = cands[np.lexsort((cands, cand_counts))].tolist()
            else:
                victims = []
            vi = 0
            n_resident = len(resident)
            in_package = MemoryLevel.IN_PACKAGE
            external = MemoryLevel.EXTERNAL
            for page in to_promote:
                if n_resident >= capacity:
                    if vi >= len(victims):
                        break
                    victim = victims[vi]
                    vi += 1
                    placement[victim] = external
                    resident.discard(victim)
                    n_resident -= 1
                placement[page] = in_package
                resident.add(page)
                n_resident += 1
                migrated += 1
        self.total_migrated += migrated
        return hit_fraction

    def run_batch(
        self, epochs: list[np.ndarray], engine: str | None = None
    ) -> list[float]:
        """Process several epoch arrays through one shared placement
        state; returns per-epoch in-package fractions."""
        engine = self.engine if engine is None else self._check_engine(engine)
        total = sum(int(np.asarray(e).size) for e in epochs)
        with obs_trace.span(
            "manager.run_batch", engine=engine, epochs=len(epochs),
            accesses=total,
        ):
            if engine == "event":
                fractions = [self.epoch(e) for e in epochs]
            else:
                fractions = [self.epoch_array(e) for e in epochs]
        obs_metrics.inc("memsys.manager.epochs", len(epochs))
        obs_metrics.inc("memsys.manager.accesses", total)
        return fractions

    def run(
        self, epochs: list[np.ndarray], engine: str | None = None
    ) -> list[float]:
        """Process several epochs; returns per-epoch in-package fractions."""
        return self.run_batch(epochs, engine=engine)

    @property
    def resident_pages(self) -> int:
        """Pages currently in in-package DRAM."""
        return sum(
            1
            for lvl in self.placement.values()
            if lvl is MemoryLevel.IN_PACKAGE
        )

    def migration_traffic_bytes(self) -> float:
        """Total bytes moved by migrations so far."""
        return float(self.total_migrated * self.page_size)
