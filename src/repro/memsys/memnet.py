"""The external memory network (Section II-B2).

The EHP exposes eight external-memory interfaces; each connects a chain
of memory modules over point-to-point SerDes links (Hybrid Memory Cube
style). Interfaces are address-interleaved so no request crosses chains
in normal operation; optional cross-links connect chain tails for
redundancy, letting the network reach modules past a failed link.

This model captures chain topology, per-hop latency/bandwidth, link
failure and rerouting, and aggregate capacity/bandwidth bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import GB, NS

__all__ = ["MemoryModule", "ExternalMemoryNetwork"]


@dataclass(frozen=True)
class MemoryModule:
    """One module in a chain: DRAM or NVM."""

    name: str
    kind: str  # "dram" or "nvm"
    capacity: float

    def __post_init__(self) -> None:
        if self.kind not in ("dram", "nvm"):
            raise ValueError(f"unknown module kind {self.kind!r}")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")


@dataclass
class _Chain:
    """One interface's chain of modules."""

    modules: list[MemoryModule] = field(default_factory=list)
    failed_links: set = field(default_factory=set)  # indices of dead hops


class ExternalMemoryNetwork:
    """Eight chains of external memory modules with optional redundancy.

    Parameters
    ----------
    n_interfaces:
        EHP external-memory interfaces (8 in the paper).
    link_bandwidth:
        Per-link SerDes bandwidth, B/s.
    link_latency:
        Per-hop latency, seconds.
    cross_linked:
        When true, chain tails are cross-connected pairwise so traffic
        can reroute around a failed link through the neighbouring chain.
    """

    def __init__(
        self,
        n_interfaces: int = 8,
        link_bandwidth: float = 64.0e9,
        link_latency: float = 40.0 * NS,
        cross_linked: bool = False,
    ):
        if n_interfaces <= 0:
            raise ValueError("n_interfaces must be positive")
        if link_bandwidth <= 0 or link_latency <= 0:
            raise ValueError("link parameters must be positive")
        self.n_interfaces = n_interfaces
        self.link_bandwidth = link_bandwidth
        self.link_latency = link_latency
        self.cross_linked = cross_linked
        self.chains = [_Chain() for _ in range(n_interfaces)]

    # ------------------------------------------------------------------
    @classmethod
    def dram_only(cls, capacity_tb: float = 1.0, **kwargs) -> "ExternalMemoryNetwork":
        """The paper's baseline: 64 GB DRAM modules, evenly chained."""
        net = cls(**kwargs)
        n_modules = round(capacity_tb * 1000.0 / 64.0)
        for i in range(n_modules):
            net.add_module(
                i % net.n_interfaces,
                MemoryModule(f"dram{i}", "dram", 64.0 * GB),
            )
        return net

    @classmethod
    def hybrid(cls, capacity_tb: float = 1.0, **kwargs) -> "ExternalMemoryNetwork":
        """Fig. 9's comparison: half the capacity in 4x-denser NVM."""
        net = cls(**kwargs)
        half_gb = capacity_tb * 1000.0 / 2.0
        n_dram = round(half_gb / 64.0)
        n_nvm = round(half_gb / 256.0)
        for i in range(n_dram):
            net.add_module(
                i % net.n_interfaces,
                MemoryModule(f"dram{i}", "dram", 64.0 * GB),
            )
        for i in range(n_nvm):
            net.add_module(
                i % net.n_interfaces,
                MemoryModule(f"nvm{i}", "nvm", 256.0 * GB),
            )
        return net

    def add_module(self, interface: int, module: MemoryModule) -> None:
        """Append *module* to an interface's chain."""
        self._check_interface(interface)
        self.chains[interface].modules.append(module)

    def _check_interface(self, interface: int) -> None:
        if not 0 <= interface < self.n_interfaces:
            raise IndexError(f"interface {interface} out of range")

    # ------------------------------------------------------------------
    @property
    def total_capacity(self) -> float:
        """Bytes across all chains."""
        return sum(m.capacity for c in self.chains for m in c.modules)

    @property
    def n_modules(self) -> int:
        """Modules across all chains."""
        return sum(len(c.modules) for c in self.chains)

    @property
    def n_links(self) -> int:
        """Total SerDes hops (one per module in a chain topology)."""
        return self.n_modules

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak bandwidth: one link's worth per interface with at least
        one reachable module (the chain head link is the bottleneck)."""
        active = sum(
            1
            for i, c in enumerate(self.chains)
            if any(self.is_reachable(i, pos) for pos in range(len(c.modules)))
        )
        return active * self.link_bandwidth

    # ------------------------------------------------------------------
    def fail_link(self, interface: int, hop: int) -> None:
        """Mark the link *hop* (0 = EHP-to-first-module) as failed."""
        self._check_interface(interface)
        if not 0 <= hop < len(self.chains[interface].modules):
            raise IndexError(f"hop {hop} out of range")
        self.chains[interface].failed_links.add(hop)

    def repair_link(self, interface: int, hop: int) -> None:
        """Clear a failure."""
        self._check_interface(interface)
        self.chains[interface].failed_links.discard(hop)

    def _partner(self, interface: int) -> int:
        """The cross-linked partner chain (pairwise: 0-1, 2-3, ...)."""
        return interface ^ 1

    def is_reachable(self, interface: int, position: int) -> bool:
        """Can the module at *position* in *interface*'s chain be reached,
        directly or (if cross-linked) through the partner chain's tail?"""
        self._check_interface(interface)
        chain = self.chains[interface]
        if position >= len(chain.modules):
            raise IndexError(f"position {position} out of range")
        direct = all(h not in chain.failed_links for h in range(position + 1))
        if direct:
            return True
        if not self.cross_linked:
            return False
        partner = self._partner(interface)
        if partner >= self.n_interfaces or partner == interface:
            return False
        # Reverse path: down the partner chain, across the tail
        # cross-link, then backwards up this chain to the module.
        partner_chain = self.chains[partner]
        if not partner_chain.modules:
            return False
        partner_ok = all(
            h not in partner_chain.failed_links
            for h in range(len(partner_chain.modules))
        )
        n = len(chain.modules)
        reverse_ok = all(
            h not in chain.failed_links for h in range(position + 1, n)
        )
        return partner_ok and reverse_ok

    def access_latency(self, interface: int, position: int) -> float:
        """Hop latency to reach a module (direct or rerouted).

        Raises ``RuntimeError`` when the module is unreachable.
        """
        self._check_interface(interface)
        chain = self.chains[interface]
        direct = all(
            h not in chain.failed_links for h in range(position + 1)
        )
        if direct:
            return (position + 1) * self.link_latency
        if not self.is_reachable(interface, position):
            raise RuntimeError(
                f"module {position} on interface {interface} unreachable"
            )
        partner = self._partner(interface)
        hops = (
            len(self.chains[partner].modules)  # down the partner chain
            + 1  # tail cross-link
            + (len(chain.modules) - position)  # back up this chain
        )
        return hops * self.link_latency
