"""Memory-system substrate: HBM stacks, NVM, the external memory network,
address interleaving, and multi-level memory management.

Implements Section II-B: eight in-package 3D DRAM stacks (32 GB /
1 TB/s-class each in the exascale timeframe), an external network of
DRAM/NVM modules on point-to-point SerDes chains with redundancy
cross-links, software-controlled page placement between the levels, and
an optional hardware DRAM-cache mode.
"""

from repro.memsys.dram import HBMStack, HBMTimings, hbm_generation
from repro.memsys.nvm import NVMModule, NVMParams
from repro.memsys.memnet import ExternalMemoryNetwork, MemoryModule
from repro.memsys.interleave import AddressInterleaver
from repro.memsys.manager import (
    FirstTouchPolicy,
    HotnessMigrationPolicy,
    MemoryManager,
    PagePlacement,
)
from repro.memsys.dramcache import DramCache, DramCacheStats
from repro.memsys.rowbuffer import RowBufferSim, RowBufferStats

__all__ = [
    "HBMStack",
    "HBMTimings",
    "hbm_generation",
    "NVMModule",
    "NVMParams",
    "ExternalMemoryNetwork",
    "MemoryModule",
    "AddressInterleaver",
    "MemoryManager",
    "PagePlacement",
    "FirstTouchPolicy",
    "HotnessMigrationPolicy",
    "DramCache",
    "DramCacheStats",
    "RowBufferSim",
    "RowBufferStats",
]
