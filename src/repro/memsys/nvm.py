"""Non-volatile memory module model.

Section II-B2 and V-C: NVM offers ~4x DRAM density with negligible
static power, but higher (and asymmetric) access energy — especially for
writes — plus finite write endurance that can limit the node's MTTF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, NS, PJ

__all__ = ["NVMParams", "NVMModule"]


@dataclass(frozen=True)
class NVMParams:
    """Technology parameters for one NVM device class."""

    read_latency: float = 300.0 * NS
    write_latency: float = 1000.0 * NS
    read_energy_per_bit: float = 25.0 * PJ
    write_energy_per_bit: float = 80.0 * PJ
    endurance_writes: float = 1.0e8
    static_power_watt: float = 0.05

    def __post_init__(self) -> None:
        if min(self.read_latency, self.write_latency) <= 0:
            raise ValueError("latencies must be positive")
        if min(self.read_energy_per_bit, self.write_energy_per_bit) <= 0:
            raise ValueError("energies must be positive")
        if self.endurance_writes <= 0:
            raise ValueError("endurance must be positive")
        if self.static_power_watt < 0:
            raise ValueError("static power must be non-negative")


@dataclass(frozen=True)
class NVMModule:
    """One external NVM module (4x the capacity of a DRAM module)."""

    capacity: float = 256.0 * GB
    params: NVMParams = NVMParams()

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")

    def access_energy(self, bytes_: float, write_fraction: float) -> float:
        """Energy (J) to move *bytes_* with the given write share."""
        if bytes_ < 0:
            raise ValueError("bytes must be non-negative")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        bits = bytes_ * 8.0
        return bits * (
            self.params.read_energy_per_bit * (1.0 - write_fraction)
            + self.params.write_energy_per_bit * write_fraction
        )

    def mean_latency(self, write_fraction: float) -> float:
        """Mean access latency for the given write share."""
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        return (
            self.params.read_latency * (1.0 - write_fraction)
            + self.params.write_latency * write_fraction
        )

    def lifetime_seconds(
        self, write_rate_bps: float, wear_leveling_efficiency: float = 0.9
    ) -> float:
        """Wear-out time under a sustained write load.

        Perfect wear leveling spreads ``endurance_writes`` full-device
        overwrites across the module; *wear_leveling_efficiency* derates
        that ideal.
        """
        if write_rate_bps < 0:
            raise ValueError("write rate must be non-negative")
        if not 0.0 < wear_leveling_efficiency <= 1.0:
            raise ValueError("wear_leveling_efficiency must be in (0, 1]")
        if write_rate_bps == 0:
            return float("inf")
        total_writable = (
            self.capacity
            * self.params.endurance_writes
            * wear_leveling_efficiency
        )
        return total_writable / write_rate_bps
