"""Physical address interleaving across memory resources.

Section II-B: the ENA's physical address space interleaves across the
eight in-package stacks (and, for external addresses, across the eight
interfaces) at a system-software-controlled granularity, so that no
request ever needs to cross from one memory interface's domain into
another's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AddressInterleaver"]


@dataclass(frozen=True)
class AddressInterleaver:
    """Granularity-based round-robin address-to-channel mapping."""

    n_channels: int = 8
    granularity: int = 4096

    def __post_init__(self) -> None:
        if self.n_channels <= 0:
            raise ValueError("n_channels must be positive")
        if self.granularity <= 0 or self.granularity & (self.granularity - 1):
            raise ValueError("granularity must be a positive power of two")

    def channel_of(self, address) -> np.ndarray:
        """Channel index for byte address(es)."""
        address = np.asarray(address, dtype=np.int64)
        if np.any(address < 0):
            raise ValueError("addresses must be non-negative")
        return (address // self.granularity) % self.n_channels

    def offset_within_channel(self, address) -> np.ndarray:
        """Byte offset of address(es) inside their channel's space."""
        address = np.asarray(address, dtype=np.int64)
        if np.any(address < 0):
            raise ValueError("addresses must be non-negative")
        block = address // self.granularity
        within = address % self.granularity
        return (block // self.n_channels) * self.granularity + within

    def channel_histogram(self, addresses) -> np.ndarray:
        """Access counts per channel for an address stream."""
        channels = self.channel_of(addresses)
        return np.bincount(channels, minlength=self.n_channels)

    def balance(self, addresses) -> float:
        """Load balance in (0, 1]: min/max of per-channel counts
        (1.0 is perfectly even; ignores empty streams)."""
        hist = self.channel_histogram(addresses)
        if hist.sum() == 0:
            return 1.0
        peak = hist.max()
        return float(hist.min() / peak) if peak else 1.0

    def remote_fraction(self, addresses, home_channel) -> float:
        """Share of accesses leaving *home_channel* — the NoC model's
        out-of-chiplet traffic source (7/8 for uniform streams)."""
        channels = self.channel_of(addresses)
        if channels.size == 0:
            return 0.0
        return float(np.mean(channels != home_channel))
