"""In-package 3D DRAM (HBM) stack model.

Section II-B1 projects from JEDEC HBM: generation 1 offers 1 GB at
128 GB/s per stack, generation 2 8 GB at 256 GB/s, and by the exascale
timeframe two more generations double capacity each step (to 32 GB) and
double bandwidth once (to 512 GB/s per stack). Eight stacks give the
EHP's 256 GB at 4 TB/s aggregate.

The stack model provides capacity/bandwidth bookkeeping, refresh-rate
derating above the 85 C retention limit, and a simple bank-level service
model used by the trace-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, NS

__all__ = ["HBMTimings", "HBMStack", "hbm_generation"]


@dataclass(frozen=True)
class HBMTimings:
    """First-order DRAM timing/bank parameters for the service model."""

    row_hit_latency: float = 30.0 * NS
    row_miss_latency: float = 60.0 * NS
    n_banks: int = 128
    refresh_interval: float = 64.0e-3
    refresh_penalty: float = 0.05

    def __post_init__(self) -> None:
        if self.row_hit_latency <= 0 or self.row_miss_latency <= 0:
            raise ValueError("latencies must be positive")
        if self.row_miss_latency < self.row_hit_latency:
            raise ValueError("row miss cannot be faster than row hit")
        if self.n_banks <= 0:
            raise ValueError("n_banks must be positive")
        if not 0.0 <= self.refresh_penalty < 1.0:
            raise ValueError("refresh_penalty must be in [0, 1)")


def hbm_generation(generation: int) -> tuple[float, float]:
    """(capacity_bytes, bandwidth_Bps) per stack for an HBM generation.

    Generation 1 = 1 GB / 128 GB/s; capacity doubles each generation;
    bandwidth doubles through generation 2 and once more beyond it
    (interface speed saturates at 2 Gbps, Section II-B1).
    """
    if generation < 1:
        raise ValueError("generation must be >= 1")
    capacity = 1.0 * GB * 2 ** (generation - 1)
    if generation == 1:
        bandwidth = 128.0e9
    elif generation == 2:
        bandwidth = 256.0e9
    else:
        bandwidth = 512.0e9
    return capacity, bandwidth


@dataclass(frozen=True)
class HBMStack:
    """One in-package 3D DRAM stack (exascale-generation by default)."""

    capacity: float = 32.0 * GB
    bandwidth: float = 512.0e9
    timings: HBMTimings = HBMTimings()
    n_dies: int = 4

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.bandwidth <= 0:
            raise ValueError("capacity and bandwidth must be positive")
        if self.n_dies <= 0:
            raise ValueError("n_dies must be positive")

    @classmethod
    def from_generation(cls, generation: int) -> "HBMStack":
        """Build a stack at a given HBM generation's projections."""
        capacity, bandwidth = hbm_generation(generation)
        return cls(capacity=capacity, bandwidth=bandwidth)

    def effective_bandwidth(self, temperature_c: float = 60.0) -> float:
        """Deliverable bandwidth after refresh overhead.

        Above the 85 C retention limit the refresh rate doubles
        (Section V-D's design constraint), doubling the refresh penalty.
        """
        penalty = self.timings.refresh_penalty
        if temperature_c > 85.0:
            penalty = min(0.99, penalty * 2.0)
        return self.bandwidth * (1.0 - penalty)

    def service_latency(self, row_hit_rate: float) -> float:
        """Mean access latency for a given row-buffer hit rate."""
        if not 0.0 <= row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be in [0, 1]")
        t = self.timings
        return (
            row_hit_rate * t.row_hit_latency
            + (1.0 - row_hit_rate) * t.row_miss_latency
        )

    def sustained_request_rate(self, row_hit_rate: float) -> float:
        """Bank-limited request throughput (requests/s) by Little's law:
        ``n_banks`` concurrent requests over the mean service latency."""
        return self.timings.n_banks / self.service_latency(row_hit_rate)
