"""Row-buffer locality simulation for the HBM stacks.

The HBM service model (:class:`repro.memsys.dram.HBMStack`) needs a
row-buffer hit rate; this module measures one from an address stream.
Each bank holds one open row (open-page policy); an access to the open
row is a row hit, anything else closes and opens (row miss). Bank and
row mapping follow the standard address split.

Used by the trace-driven simulator and the memory-management ablation to
ground the analytic model's latency inputs in trace behaviour.

Two interchangeable engines execute the same semantics:

``engine="event"``
    The original one-access-at-a-time loop over :meth:`RowBufferSim.access`,
    kept verbatim as the readable specification and test oracle.

``engine="array"`` (default)
    A fully vectorized replay: bank and row columns are computed for the
    whole stream at once, a stable argsort by bank lays every per-bank
    substream out contiguously (CSR-style group offsets, the same trick
    the APU simulator's array engine uses for wavefront partitions), and
    each access's open-row-before-access is the previous row in its bank
    group — seeded from the carried ``_open_row`` state at group starts.
    Hits, misses and bank conflicts then fall out of whole-array
    comparisons, bit-identical to the scalar loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["RowBufferSim", "RowBufferStats", "ENGINES"]

ENGINES = ("array", "event")
"""Valid values for the ``engine`` selector (the first is the default)."""


@dataclass
class RowBufferStats:
    """Accumulated row-buffer outcomes."""

    hits: int = 0
    misses: int = 0
    bank_conflicts: int = 0

    @property
    def accesses(self) -> int:
        """Total simulated accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Row-buffer hit rate (0.0 when empty)."""
        return self.hits / self.accesses if self.accesses else 0.0


class RowBufferSim:
    """Open-page row-buffer tracker across the stack's banks.

    Parameters
    ----------
    n_banks:
        Banks in the stack (HBM: 16 per channel x 8 channels = 128).
    row_bytes:
        Row (page) size per bank.
    channel_interleave_bytes:
        Consecutive-address stride mapped to the same bank before
        rotating; smaller values spread streams across banks faster.
    engine:
        Default execution engine for :meth:`run`, ``"array"`` (fast
        path) or ``"event"`` (the scalar oracle). Either can be
        overridden per call.
    """

    def __init__(
        self,
        n_banks: int = 128,
        row_bytes: int = 1024,
        channel_interleave_bytes: int = 256,
        engine: str = "array",
    ):
        if n_banks <= 0 or row_bytes <= 0 or channel_interleave_bytes <= 0:
            raise ValueError("geometry must be positive")
        self.n_banks = n_banks
        self.row_bytes = row_bytes
        self.interleave = channel_interleave_bytes
        self.engine = self._check_engine(engine)
        self._open_row = np.full(n_banks, -1, dtype=np.int64)
        self._last_bank = -1
        self.stats = RowBufferStats()

    @staticmethod
    def _check_engine(engine: str) -> str:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        return engine

    def _locate(self, address: int) -> tuple[int, int]:
        block = address // self.interleave
        bank = int(block % self.n_banks)
        row = int(address // (self.row_bytes * self.n_banks))
        return bank, row

    def access(self, address: int) -> bool:
        """Simulate one access; returns True on a row hit."""
        if address < 0:
            raise ValueError("address must be non-negative")
        bank, row = self._locate(address)
        hit = self._open_row[bank] == row
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            if self._open_row[bank] >= 0 and self._last_bank == bank:
                self.stats.bank_conflicts += 1
            self._open_row[bank] = row
        self._last_bank = bank
        return bool(hit)

    def run(self, addresses, engine: str | None = None) -> RowBufferStats:
        """Stream an address array; returns cumulative statistics.

        Continues from the tracker's current open-row state, exactly as
        repeated :meth:`access` calls would.
        """
        engine = self.engine if engine is None else self._check_engine(engine)
        addresses = np.asarray(addresses, dtype=np.int64)
        with obs_trace.span(
            "rowbuffer.run", engine=engine, accesses=int(addresses.size)
        ):
            if engine == "event":
                result = self._run_event(addresses)
            else:
                result = self._run_array(addresses)
        obs_metrics.inc("memsys.rowbuffer.runs")
        obs_metrics.inc("memsys.rowbuffer.accesses", int(addresses.size))
        return result

    # ------------------------------------------------------------------
    # Scalar oracle (the original implementation, kept verbatim)
    # ------------------------------------------------------------------
    def _run_event(self, addresses: np.ndarray) -> RowBufferStats:
        for addr in addresses.tolist():
            self.access(addr)
        return self.stats

    # ------------------------------------------------------------------
    # Array fast path
    # ------------------------------------------------------------------
    def _run_array(self, addresses: np.ndarray) -> RowBufferStats:
        n = addresses.size
        if n == 0:
            return self.stats
        if int(addresses.min()) < 0:
            raise ValueError("address must be non-negative")

        # Whole-stream bank/row columns (same arithmetic as _locate).
        banks = (addresses // self.interleave) % self.n_banks
        rows = addresses // (self.row_bytes * self.n_banks)

        # Per-bank substreams: stable argsort by bank keeps each bank's
        # accesses in program order; group starts are the CSR offsets.
        order = np.argsort(banks, kind="stable")
        sorted_banks = banks[order]
        sorted_rows = rows[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_banks)) + 1)
        )

        # Open row at access time: the previous access's row within the
        # bank group, seeded from the carried open-row state at starts.
        open_before = np.empty(n, dtype=np.int64)
        open_before[1:] = sorted_rows[:-1]
        open_before[starts] = self._open_row[sorted_banks[starts]]

        hit_sorted = open_before == sorted_rows
        valid_sorted = open_before >= 0
        hit = np.empty(n, dtype=bool)
        hit[order] = hit_sorted
        open_valid = np.empty(n, dtype=bool)
        open_valid[order] = valid_sorted

        # Bank conflict: a miss to a bank with an open row immediately
        # after an access to the same bank.
        prev_bank = np.empty(n, dtype=np.int64)
        prev_bank[0] = self._last_bank
        prev_bank[1:] = banks[:-1]
        conflicts = ~hit & open_valid & (prev_bank == banks)

        hits = int(np.count_nonzero(hit))
        self.stats.hits += hits
        self.stats.misses += n - hits
        self.stats.bank_conflicts += int(np.count_nonzero(conflicts))

        # Carry state forward: last row seen per touched bank (group
        # ends), and the final access's bank.
        ends = np.concatenate((starts[1:] - 1, [n - 1]))
        self._open_row[sorted_banks[ends]] = sorted_rows[ends]
        self._last_bank = int(banks[-1])
        return self.stats

    def reset(self) -> None:
        """Close all rows and zero statistics."""
        self._open_row.fill(-1)
        self._last_bank = -1
        self.stats = RowBufferStats()
