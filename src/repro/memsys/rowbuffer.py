"""Row-buffer locality simulation for the HBM stacks.

The HBM service model (:class:`repro.memsys.dram.HBMStack`) needs a
row-buffer hit rate; this module measures one from an address stream.
Each bank holds one open row (open-page policy); an access to the open
row is a row hit, anything else closes and opens (row miss). Bank and
row mapping follow the standard address split.

Used by the trace-driven simulator and the memory-management ablation to
ground the analytic model's latency inputs in trace behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RowBufferSim", "RowBufferStats"]


@dataclass
class RowBufferStats:
    """Accumulated row-buffer outcomes."""

    hits: int = 0
    misses: int = 0
    bank_conflicts: int = 0

    @property
    def accesses(self) -> int:
        """Total simulated accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Row-buffer hit rate (0.0 when empty)."""
        return self.hits / self.accesses if self.accesses else 0.0


class RowBufferSim:
    """Open-page row-buffer tracker across the stack's banks.

    Parameters
    ----------
    n_banks:
        Banks in the stack (HBM: 16 per channel x 8 channels = 128).
    row_bytes:
        Row (page) size per bank.
    channel_interleave_bytes:
        Consecutive-address stride mapped to the same bank before
        rotating; smaller values spread streams across banks faster.
    """

    def __init__(
        self,
        n_banks: int = 128,
        row_bytes: int = 1024,
        channel_interleave_bytes: int = 256,
    ):
        if n_banks <= 0 or row_bytes <= 0 or channel_interleave_bytes <= 0:
            raise ValueError("geometry must be positive")
        self.n_banks = n_banks
        self.row_bytes = row_bytes
        self.interleave = channel_interleave_bytes
        self._open_row = np.full(n_banks, -1, dtype=np.int64)
        self._last_bank = -1
        self.stats = RowBufferStats()

    def _locate(self, address: int) -> tuple[int, int]:
        block = address // self.interleave
        bank = int(block % self.n_banks)
        row = int(address // (self.row_bytes * self.n_banks))
        return bank, row

    def access(self, address: int) -> bool:
        """Simulate one access; returns True on a row hit."""
        if address < 0:
            raise ValueError("address must be non-negative")
        bank, row = self._locate(address)
        hit = self._open_row[bank] == row
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            if self._open_row[bank] >= 0 and self._last_bank == bank:
                self.stats.bank_conflicts += 1
            self._open_row[bank] = row
        self._last_bank = bank
        return bool(hit)

    def run(self, addresses) -> RowBufferStats:
        """Stream an address array; returns cumulative statistics."""
        addresses = np.asarray(addresses, dtype=np.int64)
        for addr in addresses.tolist():
            self.access(addr)
        return self.stats

    def reset(self) -> None:
        """Close all rows and zero statistics."""
        self._open_row.fill(-1)
        self._last_bank = -1
        self.stats = RowBufferStats()
