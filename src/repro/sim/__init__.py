"""Trace-driven, cycle-approximate APU simulator.

The paper adjusts its high-level model with the AMD gem5 APU simulator
for effects the analytic forms miss (Section III). This package is the
equivalent substrate: a discrete-event engine (:mod:`repro.sim.engine`),
a wavefront-level CU model (:mod:`repro.sim.gpu_core`), a cache
hierarchy (:mod:`repro.sim.cache_sim`), and the glue that runs a
synthetic memory trace through CU -> LLC -> (local or remote) DRAM
(:mod:`repro.sim.apu_sim`), including the chiplet organization's extra
hop latency so the Fig. 7 comparison can be cross-checked in simulation.
"""

from repro.sim.engine import Event, EventQueue, Simulator, TupleEventHeap
from repro.sim.cache_sim import CacheLevel, CacheSim
from repro.sim.gpu_core import ComputeUnit, Wavefront, mean_utilization
from repro.sim.apu_sim import ENGINES, ApuSimConfig, ApuSimResult, ApuSimulator

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "TupleEventHeap",
    "CacheLevel",
    "CacheSim",
    "ComputeUnit",
    "Wavefront",
    "mean_utilization",
    "ENGINES",
    "ApuSimConfig",
    "ApuSimResult",
    "ApuSimulator",
]
