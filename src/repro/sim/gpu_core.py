"""Wavefront-level compute-unit model.

Each CU hosts a pool of wavefronts; a wavefront alternates compute
bursts (duration = flops / CU issue rate) with memory requests. While a
wavefront waits on memory, the CU issues from other ready wavefronts —
the latency-hiding mechanism the paper's Section V-A take-away credits
for the chiplet design's small penalty. The CU is busy whenever at
least one wavefront is in a compute burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["Wavefront", "ComputeUnit", "mean_utilization"]


def mean_utilization(busy_times: Sequence[float], elapsed: float) -> float:
    """Mean busy fraction over a set of CUs.

    Shared by both simulator engines: because issue slots serialize, a
    CU's busy time is exactly the sum of its granted burst windows, so
    the array engine can aggregate from flat per-CU accumulators while
    the event engine feeds :attr:`ComputeUnit.busy_time` — the arithmetic
    (clamp, then mean) is identical either way.
    """
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    return float(np.mean([min(1.0, busy / elapsed) for busy in busy_times]))


@dataclass
class Wavefront:
    """One wavefront's remaining work."""

    wf_id: int
    remaining_accesses: int
    flops_per_burst: float
    state: str = "ready"  # ready | computing | waiting | done

    def __post_init__(self) -> None:
        if self.remaining_accesses < 0:
            raise ValueError("remaining_accesses must be non-negative")
        if self.flops_per_burst < 0:
            raise ValueError("flops_per_burst must be non-negative")


@dataclass
class ComputeUnit:
    """A CU: issue rate, wavefront pool, and busy-time accounting."""

    cu_id: int
    flops_per_second: float
    max_wavefronts: int = 40
    wavefronts: dict[int, Wavefront] = field(default_factory=dict)
    busy_time: float = 0.0
    _busy_since: float | None = field(default=None, repr=False)
    _computing: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        if self.max_wavefronts <= 0:
            raise ValueError("max_wavefronts must be positive")

    def add_wavefront(self, wf: Wavefront) -> None:
        """Admit a wavefront; raises when the pool is full."""
        if len(self.wavefronts) >= self.max_wavefronts:
            raise RuntimeError(f"CU{self.cu_id}: wavefront pool full")
        if wf.wf_id in self.wavefronts:
            raise ValueError(f"duplicate wavefront id {wf.wf_id}")
        self.wavefronts[wf.wf_id] = wf

    def burst_duration(self, wf: Wavefront) -> float:
        """Seconds one compute burst of *wf* occupies an issue slot."""
        return wf.flops_per_burst / self.flops_per_second

    # --- busy-time accounting -------------------------------------------
    def start_compute(self, wf: Wavefront, now: float) -> None:
        """Mark *wf* computing; CU becomes busy if it was idle."""
        if wf.state == "computing":
            raise RuntimeError(f"wavefront {wf.wf_id} already computing")
        wf.state = "computing"
        if self._computing == 0:
            self._busy_since = now
        self._computing += 1

    def end_compute(self, wf: Wavefront, now: float) -> None:
        """Mark *wf* done computing; accumulate busy time if CU idles."""
        if wf.state != "computing":
            raise RuntimeError(f"wavefront {wf.wf_id} not computing")
        wf.state = "waiting"
        self._computing -= 1
        if self._computing == 0 and self._busy_since is not None:
            self.busy_time += now - self._busy_since
            self._busy_since = None

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over *elapsed* seconds."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return min(1.0, self.busy_time / elapsed)

    @property
    def active_wavefronts(self) -> int:
        """Wavefronts not yet finished."""
        return sum(1 for w in self.wavefronts.values() if w.state != "done")
