"""Minimal discrete-event simulation engine.

A classic event-queue kernel: events carry a timestamp and a callback;
the simulator pops them in time order, callbacks schedule further
events. Deterministic tie-breaking (insertion order) keeps runs
reproducible.

:class:`TupleEventHeap` is the data-oriented counterpart used by array
fast paths (the vectorized APU engine): no callbacks, no
:class:`Event` objects — just plain tuples whose leading elements *are*
the (time, tie-break...) ordering key, so every heap comparison stays in
C.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["Event", "EventQueue", "Simulator", "TupleEventHeap"]


class TupleEventHeap:
    """A min-heap of plain key tuples for array-style simulators.

    Entries are ordered lexicographically by their own elements —
    ``(time, tiebreak..., payload...)`` — which replaces the
    ``(time, seq)`` ordering of :class:`EventQueue` without allocating an
    :class:`Event` (or a closure) per entry. Mixed tuple lengths are
    fine as long as any shared prefix stays comparable; heterogeneous
    streams whose mutual order is irrelevant can share one heap.
    """

    __slots__ = ("heap",)

    def __init__(self, initial: Iterable[tuple] | None = None):
        self.heap: list[tuple] = list(initial) if initial is not None else []
        if self.heap:
            heapq.heapify(self.heap)

    def push(self, entry: tuple) -> None:
        """Insert one keyed entry."""
        heapq.heappush(self.heap, entry)

    def pop(self) -> tuple:
        """Remove and return the smallest entry."""
        return heapq.heappop(self.heap)

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Time-ordered event heap with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule *action* at *time*; returns a cancellable handle."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Next non-cancelled event, or None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Simulator:
    """Event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* *delay* seconds from the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule at an absolute time (must not be in the past)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        return self.queue.push(time, action)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue (optionally bounded); returns the final time."""
        while True:
            if max_events is not None and self.events_processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self.queue.pop()
            assert event is not None
            self.now = event.time
            event.action()
            self.events_processed += 1
        return self.now
