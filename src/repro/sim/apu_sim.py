"""Trace-driven APU simulation: CUs + caches + DRAM service.

Runs a synthetic memory trace (from
:class:`~repro.workloads.traces.TraceGenerator`) through wavefronts on
CUs, a two-level cache, and a bandwidth-limited DRAM service queue. The
simulator reports achieved FLOP rate, CU utilization, measured cache hit
rates, and mean memory latency — the quantities the analytic model
abstracts — so the two can be compared on the same workload (the paper's
gem5-adjustment role).

Two interchangeable engines execute the same semantics:

``engine="event"``
    The original discrete-event implementation on
    :class:`~repro.sim.engine.Simulator`: three scheduled callbacks per
    access (issue, begin-burst, finish-burst). It is the readable
    specification and the oracle the fast path is tested against.

``engine="array"`` (default)
    A flat-array replay of the identical schedule. The strided wavefront
    partitions are batched into contiguous numpy columns (line ids,
    per-level set/tag indices, burst durations) up front, and the run
    advances a merged frontier of two event streams over those columns:

    * *issue* events grant CU slots — each CU's issue slot is a
      cumulative free-at scalar advanced in grant order, so a burst's
      window is ``[max(ready, free), ...+duration)``;
    * *commit* events walk the set-associative hierarchy (precomputed
      set/tag columns, per-set recency state) and advance the serialized
      DRAM service queue's cumulative free-at time.

    The two streams touch disjoint state (per-CU slots vs cache+DRAM),
    so they commute; within each stream the frontier keys replay the
    event engine's ``(time, insertion)`` order exactly — issues by
    ``(ready, seq)``, commits by ``(finish, begin, ready, seq)``. Every
    shared result field is therefore bit-identical to the oracle, while
    the per-access cost drops from three heap-scheduled closures and a
    dict-of-OrderedDict cache walk to one tuple push/pop pair over
    precomputed integer columns.

Scale note: the simulator runs a scaled-down EHP (default 16 CUs) on a
scaled trace; the analytic comparison normalizes per-CU, which is valid
because both sides share the per-CU abstraction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim.cache_sim import CacheLevel, CacheSim
from repro.sim.engine import Simulator, TupleEventHeap
from repro.sim.gpu_core import ComputeUnit, Wavefront, mean_utilization
from repro.util.units import NS
from repro.workloads.traces import MemoryTrace

__all__ = ["ApuSimConfig", "ApuSimResult", "ApuSimulator", "ENGINES"]

ENGINES = ("array", "event")
"""Valid values for the ``engine`` selector (the first is the default)."""


@dataclass(frozen=True)
class ApuSimConfig:
    """Scaled-down simulation parameters."""

    n_cus: int = 16
    freq_hz: float = 1.0e9
    flops_per_cu_cycle: float = 64.0
    wavefronts_per_cu: int = 8
    dram_bandwidth: float = 150.0e9  # scaled: ~per-chiplet share
    dram_latency: float = 350.0 * NS
    llc_latency: float = 40.0 * NS
    l1_latency: float = 4.0 * NS
    chiplet_extra_latency: float = 0.0
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.n_cus <= 0 or self.wavefronts_per_cu <= 0:
            raise ValueError("CU/wavefront counts must be positive")
        if min(self.freq_hz, self.dram_bandwidth, self.dram_latency) <= 0:
            raise ValueError("rates and latencies must be positive")
        if self.chiplet_extra_latency < 0:
            raise ValueError("chiplet_extra_latency must be non-negative")


@dataclass(frozen=True)
class ApuSimResult:
    """Measured outcome of one simulation."""

    elapsed: float
    total_flops: float
    total_accesses: int
    dram_accesses: int
    cu_utilization: float
    mean_memory_latency: float
    hit_rates: dict

    @property
    def flops_rate(self) -> float:
        """Achieved FLOP/s."""
        return self.total_flops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def dram_fraction(self) -> float:
        """Share of accesses that reached DRAM."""
        if self.total_accesses == 0:
            return 0.0
        return self.dram_accesses / self.total_accesses


class ApuSimulator:
    """Execution of a memory trace on the scaled APU.

    Parameters
    ----------
    config:
        Simulation parameters (defaults to :class:`ApuSimConfig`).
    engine:
        Default execution engine, ``"array"`` (fast path) or ``"event"``
        (the discrete-event oracle). Either can be overridden per call.
    """

    def __init__(self, config: ApuSimConfig | None = None,
                 engine: str = "array"):
        self.config = config or ApuSimConfig()
        self.engine = self._check_engine(engine)

    @staticmethod
    def _check_engine(engine: str) -> str:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        return engine

    def _build_cache(self) -> CacheSim:
        cfg = self.config
        return CacheSim(
            [
                CacheLevel("L1", cfg.n_cus * 16 * 1024, cfg.line_bytes, 8),
                CacheLevel("LLC", 4 * 1024 * 1024, cfg.line_bytes, 16),
            ]
        )

    def run(self, trace: MemoryTrace, engine: str | None = None) -> ApuSimResult:
        """Execute *trace* split round-robin across all wavefronts."""
        engine = self.engine if engine is None else self._check_engine(engine)
        if len(trace) == 0:
            raise ValueError("empty trace")
        with obs_trace.span(
            "apu_sim.run", engine=engine, accesses=len(trace)
        ), obs_metrics.timed("sim.apu.run_seconds"):
            if engine == "event":
                result = self._run_event(trace)
            else:
                result = self._run_array(trace)
        obs_metrics.inc("sim.apu.runs")
        obs_metrics.inc("sim.apu.trace_rows", len(trace))
        obs_metrics.inc("sim.apu.dram_accesses", result.dram_accesses)
        return result

    def run_batch(
        self,
        traces: Iterable[MemoryTrace],
        engine: str | None = None,
    ) -> list[ApuSimResult]:
        """Run several traces through one configuration.

        Each trace gets a cold cache hierarchy (identical to calling
        :meth:`run` per trace), but the config-derived setup — cache
        geometry, per-wavefront CU assignment, derived rates — is
        computed once and shared, which is what calibration sweeps over
        many traces of one kernel profile want.
        """
        engine = self.engine if engine is None else self._check_engine(engine)
        traces = list(traces)
        for trace in traces:
            if len(trace) == 0:
                raise ValueError("empty trace")
        total_rows = sum(len(trace) for trace in traces)
        with obs_trace.span(
            "apu_sim.run_batch", engine=engine, traces=len(traces),
            accesses=total_rows,
        ), obs_metrics.timed("sim.apu.run_seconds"):
            if engine == "event":
                results = [self._run_event(trace) for trace in traces]
            else:
                setup = self._array_setup()
                results = [self._run_array(trace, setup) for trace in traces]
        obs_metrics.inc("sim.apu.runs", len(traces))
        obs_metrics.inc("sim.apu.trace_rows", total_rows)
        obs_metrics.inc(
            "sim.apu.dram_accesses", sum(r.dram_accesses for r in results)
        )
        return results

    # ------------------------------------------------------------------
    # Event-driven oracle (the original implementation, kept verbatim)
    # ------------------------------------------------------------------
    def _run_event(self, trace: MemoryTrace) -> ApuSimResult:
        cfg = self.config
        sim = Simulator()
        cache = self._build_cache()
        cu_rate = cfg.flops_per_cu_cycle * cfg.freq_hz
        cus = [
            ComputeUnit(cu_id=i, flops_per_second=cu_rate,
                        max_wavefronts=cfg.wavefronts_per_cu)
            for i in range(cfg.n_cus)
        ]

        n_wfs = cfg.n_cus * cfg.wavefronts_per_cu
        # Partition the trace across wavefronts (strided, preserving the
        # interleaved-concurrency character of GPU execution).
        partitions = [
            (trace.addresses[w::n_wfs], trace.flops_between[w::n_wfs])
            for w in range(n_wfs)
        ]

        state = {
            "flops": 0.0,
            "accesses": 0,
            "dram": 0,
            "lat_sum": 0.0,
            "dram_free_at": 0.0,
        }
        # One issue slot per CU: compute bursts on the same CU serialize.
        cu_free_at = [0.0] * cfg.n_cus
        line_service = cfg.line_bytes / cfg.dram_bandwidth
        level_latency = {
            0: cfg.l1_latency,
            1: cfg.llc_latency,
        }

        def memory_latency(address: int) -> float:
            level = cache.access(int(address))
            if level < len(level_latency):
                return level_latency[level]
            state["dram"] += 1
            # Shared DRAM service queue: serialized line transfers.
            start = max(sim.now, state["dram_free_at"])
            state["dram_free_at"] = start + line_service
            queue_delay = start - sim.now
            return (
                queue_delay
                + line_service
                + cfg.dram_latency
                + cfg.chiplet_extra_latency
            )

        def step(cu: ComputeUnit, wf: Wavefront, addrs, flops, idx: int):
            if idx >= len(addrs):
                wf.state = "done"
                return
            burst_flops = float(flops[idx])
            # Wait for the CU's issue slot, then occupy it for the burst.
            start = max(sim.now, cu_free_at[cu.cu_id])
            duration = burst_flops / cu.flops_per_second
            cu_free_at[cu.cu_id] = start + duration

            def begin_burst():
                cu.start_compute(wf, sim.now)
                sim.schedule(duration, finish_burst)

            def finish_burst():
                cu.end_compute(wf, sim.now)
                state["flops"] += burst_flops
                state["accesses"] += 1
                latency = memory_latency(addrs[idx])
                state["lat_sum"] += latency
                sim.schedule(
                    latency, lambda: step(cu, wf, addrs, flops, idx + 1)
                )

            sim.schedule_at(start, begin_burst)

        wf_id = 0
        for cu in cus:
            for _ in range(cfg.wavefronts_per_cu):
                addrs, flops = partitions[wf_id]
                wf = Wavefront(
                    wf_id=wf_id,
                    remaining_accesses=len(addrs),
                    flops_per_burst=float(flops.mean()) if len(flops) else 0.0,
                )
                cu.add_wavefront(wf)
                if len(addrs):
                    step(cu, wf, addrs, flops, 0)
                else:
                    wf.state = "done"
                wf_id += 1

        elapsed = sim.run()
        if elapsed <= 0:
            elapsed = 1e-12
        utilization = mean_utilization(
            [cu.busy_time for cu in cus], elapsed
        )
        hit_rates = {
            level.name: level.stats.hit_rate for level in cache.levels
        }
        return ApuSimResult(
            elapsed=elapsed,
            total_flops=state["flops"],
            total_accesses=state["accesses"],
            dram_accesses=state["dram"],
            cu_utilization=utilization,
            mean_memory_latency=(
                state["lat_sum"] / state["accesses"]
                if state["accesses"]
                else 0.0
            ),
            hit_rates=hit_rates,
        )

    # ------------------------------------------------------------------
    # Array fast path
    # ------------------------------------------------------------------
    def _array_setup(self) -> dict:
        """Config-derived constants shared across traces of a batch."""
        cfg = self.config
        n_wfs = cfg.n_cus * cfg.wavefronts_per_cu
        cu_of = [w // cfg.wavefronts_per_cu for w in range(n_wfs)]
        # Geometry comes from the same hierarchy the oracle builds, so
        # the two engines can never disagree about set/tag layout. Only
        # the (stateless) geometry is shared; per-set recency state is
        # rebuilt cold for every run.
        return {
            "n_wfs": n_wfs,
            "cu_of": cu_of,
            "cu_rate": cfg.flops_per_cu_cycle * cfg.freq_hz,
            "levels": self._build_cache().levels,
            "line_service": cfg.line_bytes / cfg.dram_bandwidth,
        }

    def _run_array(self, trace: MemoryTrace, setup: dict | None = None) -> ApuSimResult:
        cfg = self.config
        setup = setup or self._array_setup()
        n = len(trace)
        n_wfs: int = setup["n_wfs"]
        cu_of: list[int] = setup["cu_of"]
        cu_rate: float = setup["cu_rate"]
        level1, level2 = setup["levels"]
        nsets1, assoc1 = level1.n_sets, level1.associativity
        nsets2, assoc2 = level2.n_sets, level2.associativity

        # ---- Batch the strided partitions into flat columns ----------
        # Wavefront w owns trace[w::n_wfs]; a stable sort by (index mod
        # n_wfs) lays every partition out contiguously, wavefront-major,
        # with CSR-style offsets. All address arithmetic (line, per-level
        # set index and tag) happens vectorized here, once.
        owner = np.arange(n, dtype=np.int64) % n_wfs
        order = np.argsort(owner, kind="stable")
        addresses = np.asarray(trace.addresses, dtype=np.int64)[order]
        flops = np.asarray(trace.flops_between, dtype=np.float64)[order]
        ptr = np.zeros(n_wfs + 1, dtype=np.int64)
        np.cumsum(np.bincount(owner, minlength=n_wfs), out=ptr[1:])

        set1_a, tag1_a = level1.index_columns(addresses)
        set2_a, tag2_a = level2.index_columns(addresses)
        tag1, tag2 = tag1_a.tolist(), tag2_a.tolist()
        # Same scalar op the oracle applies per access: flops / cu_rate.
        dur = (flops / cu_rate).tolist()
        flops_l = flops.tolist()
        pos = ptr[:-1].tolist()
        end = ptr[1:].tolist()

        # ---- Mutable run state ---------------------------------------
        # Per-set recency state as plain dicts (insertion-ordered):
        # move-to-back is del+reinsert, LRU eviction pops the first key —
        # the same policy CacheSim's OrderedDicts implement, minus the
        # linked-list overhead. sets1/sets2 pre-resolve each access's
        # home set so the hot loop does one list index, not two.
        cu_free = [0.0] * cfg.n_cus  # cumulative issue-slot free-at
        cu_busy = [0.0] * cfg.n_cus
        l1_state: list[dict] = [{} for _ in range(nsets1)]
        llc_state: list[dict] = [{} for _ in range(nsets2)]
        sets1 = [l1_state[s] for s in set1_a.tolist()]
        sets2 = [llc_state[s] for s in set2_a.tolist()]
        dram_free = 0.0  # cumulative DRAM service free-at
        l1_lat = cfg.l1_latency
        llc_lat = cfg.llc_latency
        dram_lat = cfg.dram_latency
        extra_lat = cfg.chiplet_extra_latency
        line_service: float = setup["line_service"]
        hits1 = miss1 = hits2 = miss2 = dram = 0
        flops_sum = 0.0
        lat_sum = 0.0
        elapsed = 0.0

        # ---- Initial issue epoch: grant first bursts in wf order -----
        # Mirrors the oracle's setup pass at t=0: every wavefront's first
        # burst is granted inline, so same-CU wavefronts serialize
        # back-to-back from time zero. Commit keys are (finish, begin,
        # ready, seq); initial seqs are the wavefront ids, later issue
        # seqs continue the counter above them, reproducing the event
        # queue's insertion order.
        initial: list[tuple] = []
        for w in range(n_wfs):
            k = pos[w]
            if k == end[w]:
                continue
            c = cu_of[w]
            begin = cu_free[c]  # == max(0.0, free): free-at never negative
            finish = begin + dur[k]
            cu_free[c] = finish
            cu_busy[c] += finish - begin
            initial.append((finish, begin, 0.0, w, w))
        frontier = TupleEventHeap(initial)
        heap = frontier.heap
        # Bind the C heap primitives directly: the loop below runs twice
        # per access, so even one Python frame per push/pop matters.
        push = heapq.heappush
        pop = heapq.heappop
        seq = n_wfs

        # ---- Merged frontier loop ------------------------------------
        # Commit entries: (finish, begin, ready, seq, wf)  [5-tuple]
        # Issue entries:  (ready, seq, wf)                 [3-tuple]
        # The streams mutate disjoint state, so only intra-stream order
        # matters; the keys replay the oracle's ordering exactly.
        while heap:
            ev = pop(heap)
            if len(ev) == 5:  # commit: cache walk + DRAM queue
                finish = ev[0]
                w = ev[4]
                k = pos[w]
                flops_sum += flops_l[k]
                t = tag1[k]
                ways = sets1[k]
                if t in ways:
                    del ways[t]
                    ways[t] = None
                    hits1 += 1
                    lat = l1_lat
                else:
                    miss1 += 1
                    if len(ways) >= assoc1:
                        del ways[next(iter(ways))]
                    ways[t] = None
                    t = tag2[k]
                    ways = sets2[k]
                    if t in ways:
                        del ways[t]
                        ways[t] = None
                        hits2 += 1
                        lat = llc_lat
                    else:
                        miss2 += 1
                        if len(ways) >= assoc2:
                            del ways[next(iter(ways))]
                        ways[t] = None
                        dram += 1
                        start = finish if finish > dram_free else dram_free
                        dram_free = start + line_service
                        lat = (start - finish) + line_service \
                            + dram_lat + extra_lat
                lat_sum += lat
                ready = finish + lat
                k += 1
                pos[w] = k
                if k == end[w]:
                    # The oracle still schedules the final (empty) issue
                    # step; its timestamp is what the drained clock
                    # reports, so it defines elapsed.
                    if ready > elapsed:
                        elapsed = ready
                else:
                    seq += 1
                    push(heap, (ready, seq, w))
            else:  # issue: grant the CU slot at ready time
                ready = ev[0]
                w = ev[2]
                k = pos[w]
                c = cu_of[w]
                free = cu_free[c]
                begin = ready if ready > free else free
                finish = begin + dur[k]
                cu_free[c] = finish
                cu_busy[c] += finish - begin
                push(heap, (finish, begin, ready, ev[1], w))

        if elapsed <= 0:
            elapsed = 1e-12
        acc1 = hits1 + miss1
        acc2 = hits2 + miss2
        name1, name2 = level1.name, level2.name
        return ApuSimResult(
            elapsed=elapsed,
            total_flops=flops_sum,
            total_accesses=n,
            dram_accesses=dram,
            cu_utilization=mean_utilization(cu_busy, elapsed),
            mean_memory_latency=lat_sum / n,
            hit_rates={
                name1: hits1 / acc1 if acc1 else 0.0,
                name2: hits2 / acc2 if acc2 else 0.0,
            },
        )
