"""Trace-driven APU simulation: CUs + caches + DRAM service.

Runs a synthetic memory trace (from
:class:`~repro.workloads.traces.TraceGenerator`) through wavefronts on
CUs, a two-level cache, and a bandwidth-limited DRAM service queue, in
the discrete-event engine. The simulator reports achieved FLOP rate, CU
utilization, measured cache hit rates, and mean memory latency — the
quantities the analytic model abstracts — so the two can be compared on
the same workload (the paper's gem5-adjustment role).

Scale note: the simulator runs a scaled-down EHP (default 16 CUs) on a
scaled trace; the analytic comparison normalizes per-CU, which is valid
because both sides share the per-CU abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cache_sim import CacheLevel, CacheSim
from repro.sim.engine import Simulator
from repro.sim.gpu_core import ComputeUnit, Wavefront
from repro.util.units import NS
from repro.workloads.traces import MemoryTrace

__all__ = ["ApuSimConfig", "ApuSimResult", "ApuSimulator"]


@dataclass(frozen=True)
class ApuSimConfig:
    """Scaled-down simulation parameters."""

    n_cus: int = 16
    freq_hz: float = 1.0e9
    flops_per_cu_cycle: float = 64.0
    wavefronts_per_cu: int = 8
    dram_bandwidth: float = 150.0e9  # scaled: ~per-chiplet share
    dram_latency: float = 350.0 * NS
    llc_latency: float = 40.0 * NS
    l1_latency: float = 4.0 * NS
    chiplet_extra_latency: float = 0.0
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.n_cus <= 0 or self.wavefronts_per_cu <= 0:
            raise ValueError("CU/wavefront counts must be positive")
        if min(self.freq_hz, self.dram_bandwidth, self.dram_latency) <= 0:
            raise ValueError("rates and latencies must be positive")
        if self.chiplet_extra_latency < 0:
            raise ValueError("chiplet_extra_latency must be non-negative")


@dataclass(frozen=True)
class ApuSimResult:
    """Measured outcome of one simulation."""

    elapsed: float
    total_flops: float
    total_accesses: int
    dram_accesses: int
    cu_utilization: float
    mean_memory_latency: float
    hit_rates: dict

    @property
    def flops_rate(self) -> float:
        """Achieved FLOP/s."""
        return self.total_flops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def dram_fraction(self) -> float:
        """Share of accesses that reached DRAM."""
        if self.total_accesses == 0:
            return 0.0
        return self.dram_accesses / self.total_accesses


class ApuSimulator:
    """Event-driven execution of a memory trace on the scaled APU."""

    def __init__(self, config: ApuSimConfig | None = None):
        self.config = config or ApuSimConfig()

    def run(self, trace: MemoryTrace) -> ApuSimResult:
        """Execute *trace* split round-robin across all wavefronts."""
        cfg = self.config
        if len(trace) == 0:
            raise ValueError("empty trace")
        sim = Simulator()
        cache = CacheSim(
            [
                CacheLevel("L1", cfg.n_cus * 16 * 1024, cfg.line_bytes, 8),
                CacheLevel("LLC", 4 * 1024 * 1024, cfg.line_bytes, 16),
            ]
        )
        cu_rate = cfg.flops_per_cu_cycle * cfg.freq_hz
        cus = [
            ComputeUnit(cu_id=i, flops_per_second=cu_rate,
                        max_wavefronts=cfg.wavefronts_per_cu)
            for i in range(cfg.n_cus)
        ]

        n_wfs = cfg.n_cus * cfg.wavefronts_per_cu
        # Partition the trace across wavefronts (strided, preserving the
        # interleaved-concurrency character of GPU execution).
        partitions = [
            (trace.addresses[w::n_wfs], trace.flops_between[w::n_wfs])
            for w in range(n_wfs)
        ]

        state = {
            "flops": 0.0,
            "accesses": 0,
            "dram": 0,
            "lat_sum": 0.0,
            "dram_free_at": 0.0,
        }
        # One issue slot per CU: compute bursts on the same CU serialize.
        cu_free_at = [0.0] * cfg.n_cus
        line_service = cfg.line_bytes / cfg.dram_bandwidth
        level_latency = {
            0: cfg.l1_latency,
            1: cfg.llc_latency,
        }

        def memory_latency(address: int) -> float:
            level = cache.access(int(address))
            if level < len(level_latency):
                return level_latency[level]
            state["dram"] += 1
            # Shared DRAM service queue: serialized line transfers.
            start = max(sim.now, state["dram_free_at"])
            state["dram_free_at"] = start + line_service
            queue_delay = start - sim.now
            return (
                queue_delay
                + line_service
                + cfg.dram_latency
                + cfg.chiplet_extra_latency
            )

        def step(cu: ComputeUnit, wf: Wavefront, addrs, flops, idx: int):
            if idx >= len(addrs):
                wf.state = "done"
                return
            burst_flops = float(flops[idx])
            # Wait for the CU's issue slot, then occupy it for the burst.
            start = max(sim.now, cu_free_at[cu.cu_id])
            duration = burst_flops / cu.flops_per_second
            cu_free_at[cu.cu_id] = start + duration

            def begin_burst():
                cu.start_compute(wf, sim.now)
                sim.schedule(duration, finish_burst)

            def finish_burst():
                cu.end_compute(wf, sim.now)
                state["flops"] += burst_flops
                state["accesses"] += 1
                latency = memory_latency(addrs[idx])
                state["lat_sum"] += latency
                sim.schedule(
                    latency, lambda: step(cu, wf, addrs, flops, idx + 1)
                )

            sim.schedule_at(start, begin_burst)

        wf_id = 0
        for cu in cus:
            for _ in range(cfg.wavefronts_per_cu):
                addrs, flops = partitions[wf_id]
                wf = Wavefront(
                    wf_id=wf_id,
                    remaining_accesses=len(addrs),
                    flops_per_burst=float(flops.mean()) if len(flops) else 0.0,
                )
                cu.add_wavefront(wf)
                if len(addrs):
                    step(cu, wf, addrs, flops, 0)
                else:
                    wf.state = "done"
                wf_id += 1

        elapsed = sim.run()
        if elapsed <= 0:
            elapsed = 1e-12
        utilization = float(
            np.mean([cu.utilization(elapsed) for cu in cus])
        )
        hit_rates = {
            level.name: level.stats.hit_rate for level in cache.levels
        }
        return ApuSimResult(
            elapsed=elapsed,
            total_flops=state["flops"],
            total_accesses=state["accesses"],
            dram_accesses=state["dram"],
            cu_utilization=utilization,
            mean_memory_latency=(
                state["lat_sum"] / state["accesses"]
                if state["accesses"]
                else 0.0
            ),
            hit_rates=hit_rates,
        )
