"""Set-associative cache hierarchy simulator.

Functional (hit/miss) cache levels with LRU replacement, composable into
a hierarchy. Used by the trace-driven APU simulator to measure the
locality a synthetic trace actually achieves, cross-checking the
analytic model's ``cache_hit_rate``/``thrash_pressure`` abstraction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheLevel", "CacheSim"]


@dataclass
class _LevelStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheLevel:
    """One set-associative level with LRU replacement."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        line_bytes: int = 64,
        associativity: int = 16,
    ):
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines < associativity:
            raise ValueError(f"{name}: capacity below one set")
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = max(1, n_lines // associativity)
        self._sets: dict[int, OrderedDict[int, None]] = {}
        self.stats = _LevelStats()

    def index_columns(self, addresses) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized (set index, tag) columns for a batch of addresses.

        The integer arithmetic matches :meth:`access` element-for-element
        (``line = address // line_bytes``, ``set = line % n_sets``,
        ``tag = line // n_sets``), so array engines can precompute a
        whole trace's cache geometry in three numpy ops and share the
        exact lookup semantics of the scalar path.
        """
        line = np.asarray(addresses, dtype=np.int64) // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int) -> bool:
        """Look up one address, allocating on miss; True on hit."""
        line = address // self.line_bytes
        set_index = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets.setdefault(set_index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            ways.popitem(last=False)
        ways[tag] = None
        return False

    def flush(self) -> None:
        """Empty the cache, keeping statistics."""
        self._sets.clear()


class CacheSim:
    """A hierarchy of levels searched nearest-first.

    ``access`` returns the index of the level that hit (``len(levels)``
    means DRAM). Misses allocate in every level above the hit point
    (inclusive caching — the first-order model the analytic side
    assumes).
    """

    def __init__(self, levels: list[CacheLevel]):
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = levels
        self.dram_accesses = 0

    @classmethod
    def ehp_default(cls, n_cus: int = 320) -> "CacheSim":
        """The EHP's GPU-side hierarchy: per-CU L1 aggregated, a 16 MB
        LLC slice per chiplet aggregated into one logical LLC."""
        l1_total = n_cus * 16 * 1024
        llc_total = 8 * 16 * 1024 * 1024
        return cls(
            [
                CacheLevel("L1", l1_total, associativity=8),
                CacheLevel("LLC", llc_total, associativity=16),
            ]
        )

    def access(self, address: int) -> int:
        """Access through the hierarchy; returns hit-level index."""
        for i, level in enumerate(self.levels):
            if level.access(address):
                return i
        self.dram_accesses += 1
        return len(self.levels)

    def run_trace(self, addresses) -> dict[str, float]:
        """Stream a trace; returns per-level hit rates and DRAM share."""
        addresses = np.asarray(addresses, dtype=np.int64)
        for addr in addresses.tolist():
            self.access(addr)
        total = len(addresses)
        out = {
            level.name: level.stats.hit_rate for level in self.levels
        }
        out["dram_fraction"] = self.dram_accesses / total if total else 0.0
        return out
