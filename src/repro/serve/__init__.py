"""Asyncio serving front-end over the tensor engine and sharded pool.

See :mod:`repro.serve.service` for the architecture. Quick start::

    import asyncio
    from repro.perf.pool import ShardedPool
    from repro.serve import EvalService
    from repro.workloads.catalog import APPLICATIONS

    async def main():
        with ShardedPool(4) as pool:
            async with EvalService(pool=pool) as service:
                resp = await service.evaluate(
                    APPLICATIONS["CoMD"], 320, 1.0e9, 3.0e12
                )
                print(resp.status, resp.value)

    asyncio.run(main())
"""

from repro.serve.adaptive import AdaptiveBatchPolicy
from repro.serve.batcher import BatcherCore, FixedPolicy
from repro.serve.requests import (
    STATUSES,
    ExperimentRequest,
    PointRequest,
    PointResult,
    ServeResponse,
    SimulateRequest,
    SweepRequest,
)
from repro.serve.service import EvalService, serial_answer

__all__ = [
    "AdaptiveBatchPolicy",
    "BatcherCore",
    "EvalService",
    "ExperimentRequest",
    "FixedPolicy",
    "PointRequest",
    "PointResult",
    "STATUSES",
    "ServeResponse",
    "SimulateRequest",
    "SweepRequest",
    "serial_answer",
]
