"""Request and response types of the serving front-end.

Four request kinds cover the traffic the ROADMAP's service absorbs:

:class:`PointRequest`
    One (profile, CU count, frequency, bandwidth) design point. The
    oracle for its answer is ``NodeModel.evaluate_grid`` on the
    singleton :class:`~repro.core.config.DesignSpace` holding exactly
    that point — the same tensor engine ``explore`` defaults to — so
    coalesced, degraded and cache-hit answers are all bit-identical.
:class:`SweepRequest`
    A small DSE sweep: profiles × a :class:`DesignSpace`, answered with
    the same optima :func:`repro.core.dse.select_optima` picks.
:class:`ExperimentRequest`
    One registered paper artifact by name (``fig8``, ``table2``, ...).
:class:`SimulateRequest`
    One trace-driven APU simulation, answered through the shared
    :class:`~repro.perf.evalcache.SimCache`.

Every request names a ``stream`` — responses within one stream are
released in admission order — and may carry a relative ``deadline_s``;
a request whose deadline cannot be met is *shed* with an explicit
:data:`SHED_DEADLINE` rejection rather than silently queued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.config import DesignSpace, EHPConfig
from repro.workloads.kernels import KernelProfile

__all__ = [
    "STATUSES",
    "OK",
    "SHED_QUEUE_FULL",
    "SHED_DEADLINE",
    "EXPIRED",
    "FAILED",
    "SHUTDOWN",
    "PointRequest",
    "SweepRequest",
    "ExperimentRequest",
    "SimulateRequest",
    "PointResult",
    "ServeResponse",
]

OK = "ok"
SHED_QUEUE_FULL = "shed-queue-full"
SHED_DEADLINE = "shed-deadline"
EXPIRED = "expired"
FAILED = "failed"
SHUTDOWN = "shutdown"

STATUSES = (OK, SHED_QUEUE_FULL, SHED_DEADLINE, EXPIRED, FAILED, SHUTDOWN)
"""Every terminal response status.

``ok``
    Answered; ``value`` holds the result.
``shed-queue-full``
    Rejected at admission: the bounded queue was full (backpressure).
``shed-deadline``
    Rejected at admission: the estimated completion time already
    overruns the request's deadline, so queueing it would only waste
    worker time on an answer nobody is waiting for.
``expired``
    Admitted, but its deadline passed while it waited; dropped at
    dispatch time without being evaluated.
``failed``
    Evaluation raised; ``error`` holds the exception.
``shutdown``
    The service closed while the request was still queued.
"""


@dataclass(frozen=True)
class PointRequest:
    """Evaluate one profile at one design point."""

    profile: KernelProfile
    n_cus: int
    gpu_freq: float
    bandwidth: float
    power_budget: float = 160.0
    stream: str = "default"
    deadline_s: float | None = None

    def to_space(self) -> DesignSpace:
        """The singleton grid holding exactly this design point."""
        return DesignSpace(
            cu_counts=(int(self.n_cus),),
            frequencies=(float(self.gpu_freq),),
            bandwidths=(float(self.bandwidth),),
            power_budget=float(self.power_budget),
        )

    @classmethod
    def from_config(
        cls, profile: KernelProfile, config: EHPConfig, **kwargs
    ) -> "PointRequest":
        """Build from an :class:`EHPConfig`'s swept axes."""
        return cls(
            profile=profile,
            n_cus=config.n_cus,
            gpu_freq=config.gpu_freq,
            bandwidth=config.bandwidth,
            **kwargs,
        )


@dataclass(frozen=True)
class SweepRequest:
    """A small DSE sweep over *profiles* × *space*."""

    profiles: tuple[KernelProfile, ...]
    space: DesignSpace
    stream: str = "default"
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "profiles", tuple(self.profiles))
        if not self.profiles:
            raise ValueError("sweep needs at least one profile")
        names = [p.name for p in self.profiles]
        if len(set(names)) != len(names):
            raise ValueError("profile names must be unique")


@dataclass(frozen=True)
class ExperimentRequest:
    """Run one registered paper artifact by name."""

    name: str
    stream: str = "default"
    deadline_s: float | None = None


@dataclass(frozen=True)
class SimulateRequest:
    """One trace-driven APU simulation (SimCache-fronted)."""

    trace: Any
    config: Any = None
    engine: str | None = None
    stream: str = "default"
    deadline_s: float | None = None


@dataclass(frozen=True)
class PointResult:
    """Answer to a :class:`PointRequest` — one grid cell."""

    performance: float
    node_power: float
    feasible: bool


@dataclass(frozen=True)
class ServeResponse:
    """Terminal outcome of one request.

    ``path`` records how the answer was produced: ``"inline-cache"``
    (answered from EvalCache/SimCache without a worker round-trip),
    ``"coalesced"`` (merged into a multi-request tensor slab batch),
    ``"degraded"`` (evaluated as a solo grid call inside a batch),
    ``"solo"`` (experiment / simulate worker task), or ``""`` for
    requests that never reached evaluation.
    """

    status: str
    value: Any = None
    error: BaseException | None = None
    path: str = ""
    batch_id: int | None = None
    admitted_at: float = 0.0
    completed_at: float = 0.0
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def latency_s(self) -> float:
        """Admission-to-completion wall time."""
        return max(0.0, self.completed_at - self.admitted_at)
