"""Adaptive batch sizing from the obs timing histograms.

The batcher needs two numbers: how many requests to coalesce per
dispatch, and how long one queued request is expected to take (the
deadline-shedding estimate). Both come from the ``serve.*`` metrics the
service already publishes to :mod:`repro.obs.metrics` — specifically
the ``serve.batch_seconds`` timing histogram and the
``serve.batch_requests`` counter, whose ratio is the measured warm
per-request service time.

The sizing rule::

    est  = batch_seconds.total / batch_requests      (measured)
    size = clamp(target_batch_seconds / est, min_batch, max_batch)

i.e. the batch is sized so one dispatch occupies the pool for about
``target_batch_seconds`` — long enough to amortize the pipe round-trip
and tensor-slab setup, short enough that a batch never holds the queue
hostage for a deadline-sized chunk of time. A cold policy (no
observations yet) falls back to ``default_request_seconds``.

Reading the registry takes its lock and copies every counter, so the
estimate is *cached*: the service calls :meth:`refresh` once per
completed batch (not per request), which is both cheap and exactly as
fresh as the data — the histogram only changes when a batch completes.
"""

from __future__ import annotations

from repro.obs import metrics as obs_metrics

__all__ = ["AdaptiveBatchPolicy"]


class AdaptiveBatchPolicy:
    """Histogram-driven sizing policy for :class:`BatcherCore`.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` to read;
        ``None`` uses the process-wide default (what the live service
        publishes into). Tests inject a private registry.
    min_batch / max_batch:
        Clamp bounds on the batch limit.
    target_batch_seconds:
        Desired wall time of one dispatched batch.
    default_request_seconds:
        Cold-start per-request estimate, used until the first batch
        completes.
    dispatch_overhead_s:
        Fixed per-dispatch overhead added to the admission estimate
        (pipe round-trip + planning).
    """

    def __init__(
        self,
        registry: "obs_metrics.MetricsRegistry | None" = None,
        *,
        min_batch: int = 1,
        max_batch: int = 64,
        target_batch_seconds: float = 0.02,
        default_request_seconds: float = 2e-3,
        dispatch_overhead_s: float = 1e-3,
    ):
        if min_batch < 1 or max_batch < min_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if target_batch_seconds <= 0 or default_request_seconds <= 0:
            raise ValueError("time parameters must be positive")
        self._registry = (
            registry
            if registry is not None
            else obs_metrics.default_registry()
        )
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.target_batch_seconds = float(target_batch_seconds)
        self.default_request_seconds = float(default_request_seconds)
        self.dispatch_overhead_s = float(dispatch_overhead_s)
        self._est = self.default_request_seconds

    def refresh(self) -> float:
        """Re-read the registry; returns the new per-request estimate."""
        snap = self._registry.snapshot()
        hist = snap.histograms.get("serve.batch_seconds")
        requests = snap.counter("serve.batch_requests")
        if hist is not None and hist.count and requests > 0:
            self._est = max(1e-9, hist.total / requests)
        return self._est

    def est_request_seconds(self) -> float:
        """Cached measured (or default) per-request service time."""
        return self._est

    def batch_limit(self) -> int:
        """Batch size targeting :attr:`target_batch_seconds` per
        dispatch, clamped to ``[min_batch, max_batch]``."""
        size = int(self.target_batch_seconds / self._est)
        return max(self.min_batch, min(self.max_batch, size))
