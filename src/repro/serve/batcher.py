"""Deterministic batching state machine (sans-io core).

The serving front-end splits into two halves so its decisions are
testable bit-for-bit: this module is the synchronous core — admission,
backpressure, deadline shedding, batch formation, expiry, per-stream
ordered release — driven entirely by explicit ``now`` timestamps, and
:mod:`repro.serve.service` is the thin asyncio driver that feeds it the
real clock. The test harness (``tests/serve_harness.py``) drives the
core with a fake clock instead, so CI replays the exact same decision
sequence for a given arrival trace, every run, on every machine.

Life of a request::

    admit(now) ──► shed-queue-full / shed-deadline   (outcome, no queue)
        │
        ▼ queued (FIFO)
    plan(now) ──► expired                            (deadline passed)
        │
        ▼ PlannedBatch (≤ policy.batch_limit(), grouped by group_key)
    complete(batch_id, results, now) ──► ok / failed
        │
        ▼ per-stream release buffer
    poll_outcomes() ──► outcomes, within-stream admission order

``admit_completed`` is the inline fast path (cache hits): the request
joins the stream's ordering domain and completes in the same call, so
an inline answer still cannot overtake an earlier queued request of
its own stream.

The core never loses, duplicates, or reorders-within-stream a request,
and every shed request gets an explicit rejection outcome — the
hypothesis suite in ``tests/test_serve_properties.py`` hammers exactly
these invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.serve.requests import (
    EXPIRED,
    FAILED,
    OK,
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SHUTDOWN,
)

__all__ = ["Ticket", "Outcome", "PlannedBatch", "FixedPolicy", "BatcherCore"]


@dataclass(frozen=True)
class Ticket:
    """One admitted-or-shed request's identity inside the core.

    ``seq`` is the global admission sequence number (unique, dense);
    ``stream_seq`` is the request's position among *accepted* requests
    of its stream (``-1`` for admission-shed requests, which never join
    the ordering domain).
    """

    seq: int
    stream: str
    stream_seq: int
    request: Any
    group_key: Any
    admitted_at: float
    deadline_at: float | None


@dataclass(frozen=True)
class Outcome:
    """Terminal result of one ticket, released by :meth:`poll_outcomes`."""

    ticket: Ticket
    status: str
    value: Any = None
    error: BaseException | None = None
    batch_id: int | None = None
    completed_at: float = 0.0
    path: str = ""


@dataclass(frozen=True)
class PlannedBatch:
    """One dispatchable batch: tickets grouped by coalescing key."""

    batch_id: int
    tickets: tuple[Ticket, ...]
    groups: Mapping[Any, tuple[Ticket, ...]]


@dataclass
class FixedPolicy:
    """Constant-parameter sizing policy (tests, and the adaptive
    policy's fallback shape).

    The deterministic admission estimate is
    ``now + dispatch_overhead_s + est_request_seconds * (depth + 1)``
    — a serial-drain model: pessimistic about batching speedup,
    which is the right bias for a shed decision (shedding late is
    worse than shedding early under open-loop load).
    """

    batch: int = 8
    est_request_s: float = 2e-3
    dispatch_overhead_s: float = 1e-3

    def batch_limit(self) -> int:
        return max(1, int(self.batch))

    def est_request_seconds(self) -> float:
        return max(1e-9, float(self.est_request_s))


class BatcherCore:
    """The deterministic admission/batching/release state machine.

    Parameters
    ----------
    policy:
        Object with ``batch_limit() -> int``, ``est_request_seconds()
        -> float`` and a ``dispatch_overhead_s`` attribute
        (:class:`FixedPolicy` or
        :class:`repro.serve.adaptive.AdaptiveBatchPolicy`).
    max_queue:
        Bound on queued (admitted, not yet dispatched) requests;
        admission beyond it sheds with :data:`SHED_QUEUE_FULL`.
    """

    def __init__(self, policy=None, *, max_queue: int = 1024):
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self.policy = policy if policy is not None else FixedPolicy()
        self.max_queue = int(max_queue)
        self._seq = 0
        self._batch_ids = 0
        self._queue: list[Ticket] = []
        self._inflight: dict[int, PlannedBatch] = {}
        # Per-stream ordering domain: next stream_seq to assign / emit,
        # and completed-but-unreleased outcomes keyed by stream_seq.
        self._stream_next: dict[str, int] = {}
        self._stream_emit: dict[str, int] = {}
        self._held: dict[str, dict[int, Outcome]] = {}
        self._ready: list[Outcome] = []
        self.stats: dict[str, int] = {
            "admitted": 0,
            "accepted": 0,
            "inline": 0,
            "shed_queue_full": 0,
            "shed_deadline": 0,
            "expired": 0,
            "completed_ok": 0,
            "failed": 0,
            "shutdown": 0,
            "batches": 0,
        }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Queued (not yet dispatched) request count."""
        return len(self._queue)

    def inflight(self) -> int:
        """Dispatched, not yet completed request count."""
        return sum(len(b.tickets) for b in self._inflight.values())

    def _next_ticket(
        self,
        request: Any,
        now: float,
        *,
        stream: str,
        deadline_s: float | None,
        group_key: Any,
        accepted: bool,
    ) -> Ticket:
        seq = self._seq
        self._seq += 1
        if accepted:
            stream_seq = self._stream_next.get(stream, 0)
            self._stream_next[stream] = stream_seq + 1
        else:
            stream_seq = -1
        deadline_at = None if deadline_s is None else now + float(deadline_s)
        return Ticket(
            seq=seq,
            stream=stream,
            stream_seq=stream_seq,
            request=request,
            group_key=group_key,
            admitted_at=now,
            deadline_at=deadline_at,
        )

    def admit(
        self,
        request: Any,
        now: float,
        *,
        stream: str = "default",
        deadline_s: float | None = None,
        group_key: Any = None,
    ) -> Ticket:
        """Admit one request; queues it or sheds it with an explicit
        rejection outcome (poll :meth:`poll_outcomes` either way)."""
        self.stats["admitted"] += 1
        if len(self._queue) >= self.max_queue:
            ticket = self._next_ticket(
                request, now, stream=stream, deadline_s=deadline_s,
                group_key=group_key, accepted=False,
            )
            self.stats["shed_queue_full"] += 1
            self._ready.append(
                Outcome(ticket, SHED_QUEUE_FULL, completed_at=now)
            )
            return ticket
        if deadline_s is not None:
            est = (
                now
                + float(self.policy.dispatch_overhead_s)
                + self.policy.est_request_seconds() * (len(self._queue) + 1)
            )
            if est > now + float(deadline_s):
                ticket = self._next_ticket(
                    request, now, stream=stream, deadline_s=deadline_s,
                    group_key=group_key, accepted=False,
                )
                self.stats["shed_deadline"] += 1
                self._ready.append(
                    Outcome(ticket, SHED_DEADLINE, completed_at=now)
                )
                return ticket
        ticket = self._next_ticket(
            request, now, stream=stream, deadline_s=deadline_s,
            group_key=group_key, accepted=True,
        )
        self.stats["accepted"] += 1
        self._queue.append(ticket)
        return ticket

    def admit_completed(
        self,
        request: Any,
        value: Any,
        now: float,
        *,
        stream: str = "default",
    ) -> Ticket:
        """Inline fast path: admit and complete in one step (cache hit).

        The ticket joins the stream ordering domain, so its outcome is
        held behind any earlier still-pending request of the stream.
        """
        ticket = self._next_ticket(
            request, now, stream=stream, deadline_s=None,
            group_key=None, accepted=True,
        )
        self.stats["admitted"] += 1
        self.stats["accepted"] += 1
        self.stats["inline"] += 1
        self.stats["completed_ok"] += 1
        self._settle(
            Outcome(
                ticket, OK, value=value, completed_at=now,
                path="inline-cache",
            )
        )
        return ticket

    # ------------------------------------------------------------------
    # Batch formation and completion
    # ------------------------------------------------------------------
    def expire(self, now: float) -> int:
        """Drop queued tickets whose deadline has passed; returns the
        number expired."""
        live: list[Ticket] = []
        expired = 0
        for ticket in self._queue:
            if ticket.deadline_at is not None and now > ticket.deadline_at:
                expired += 1
                self.stats["expired"] += 1
                self._settle(Outcome(ticket, EXPIRED, completed_at=now))
            else:
                live.append(ticket)
        self._queue = live
        return expired

    def plan(self, now: float) -> PlannedBatch | None:
        """Form the next batch: expire, then take up to
        ``policy.batch_limit()`` tickets FIFO, grouped by ``group_key``
        (``None`` keys stay solo). Returns ``None`` when idle."""
        self.expire(now)
        if not self._queue:
            return None
        limit = max(1, int(self.policy.batch_limit()))
        taken, self._queue = self._queue[:limit], self._queue[limit:]
        groups: dict[Any, list[Ticket]] = {}
        for ticket in taken:
            key = (
                ("solo", ticket.seq)
                if ticket.group_key is None
                else ticket.group_key
            )
            groups.setdefault(key, []).append(ticket)
        batch_id = self._batch_ids
        self._batch_ids += 1
        planned = PlannedBatch(
            batch_id=batch_id,
            tickets=tuple(taken),
            groups={k: tuple(v) for k, v in groups.items()},
        )
        self._inflight[batch_id] = planned
        self.stats["batches"] += 1
        return planned

    def complete(
        self,
        batch_id: int,
        results: Mapping[int, tuple[str, Any]],
        now: float,
    ) -> None:
        """Resolve a planned batch.

        *results* maps ``ticket.seq`` to ``(status, payload)`` where
        payload is the value for :data:`OK` (and carries the ``path``
        label via a ``(value, path)`` tuple when provided) or the
        exception for :data:`FAILED`. Tickets missing from *results*
        fail with a bookkeeping error — a batch never loses a request
        silently.
        """
        planned = self._inflight.pop(batch_id, None)
        if planned is None:
            raise KeyError(f"unknown or already-completed batch {batch_id}")
        for ticket in planned.tickets:
            entry = results.get(ticket.seq)
            if entry is None:
                status, payload = FAILED, RuntimeError(
                    f"batch {batch_id} returned no result for "
                    f"request {ticket.seq}"
                )
            else:
                status, payload = entry
            value, error, path = None, None, ""
            if status == OK:
                self.stats["completed_ok"] += 1
                if isinstance(payload, tuple) and len(payload) == 2:
                    value, path = payload
                else:
                    value = payload
            elif status == FAILED:
                self.stats["failed"] += 1
                error = payload
            elif status == EXPIRED:
                self.stats["expired"] += 1
            elif status == SHUTDOWN:
                self.stats["shutdown"] += 1
                error = payload if isinstance(payload, BaseException) else None
            else:
                raise ValueError(
                    f"invalid completion status {status!r} for "
                    f"request {ticket.seq}"
                )
            self._settle(
                Outcome(
                    ticket,
                    status,
                    value=value,
                    error=error,
                    batch_id=batch_id,
                    completed_at=now,
                    path=path,
                )
            )

    def flush(self, now: float, status: str = SHUTDOWN) -> int:
        """Resolve every queued and in-flight ticket with *status*
        (service shutdown); returns how many were flushed."""
        flushed = 0
        for ticket in self._queue:
            self.stats["shutdown"] += 1
            self._settle(Outcome(ticket, status, completed_at=now))
            flushed += 1
        self._queue = []
        for planned in list(self._inflight.values()):
            self.complete(
                planned.batch_id,
                {t.seq: (status, None) for t in planned.tickets},
                now,
            )
            flushed += len(planned.tickets)
        return flushed

    # ------------------------------------------------------------------
    # Ordered release
    # ------------------------------------------------------------------
    def _settle(self, outcome: Outcome) -> None:
        """Move a terminal outcome into the release path.

        Accepted tickets are buffered until every earlier accepted
        ticket of their stream has settled; admission-shed tickets
        (stream_seq -1) release immediately — they never joined the
        ordering domain.
        """
        if outcome.ticket.stream_seq < 0:
            self._ready.append(outcome)
            return
        stream = outcome.ticket.stream
        held = self._held.setdefault(stream, {})
        held[outcome.ticket.stream_seq] = outcome
        emit = self._stream_emit.get(stream, 0)
        while emit in held:
            self._ready.append(held.pop(emit))
            emit += 1
        self._stream_emit[stream] = emit

    def poll_outcomes(self) -> list[Outcome]:
        """Drain every releasable outcome (within-stream admission
        order; cross-stream order follows settlement order)."""
        ready, self._ready = self._ready, []
        return ready
