"""Asyncio evaluation service: the serving front-end.

:class:`EvalService` accepts single-point evaluate, small-sweep,
experiment and trace-simulation requests and answers them through three
paths, cheapest first:

1. **Inline cache hit** — the request's exact answer already sits in
   the shared :class:`~repro.perf.evalcache.EvalCache` /
   :class:`SimCache` (or the service's experiment memo): answered on
   the event loop with no worker round-trip. Ordering still holds: the
   hit routes through the batcher core's per-stream release buffer.
2. **Coalesced tensor slab** — misses queue in the deterministic
   :class:`~repro.serve.batcher.BatcherCore`; the dispatcher drains up
   to the adaptive batch limit, merges compatible requests (points
   into a union grid under a waste cap, same-space sweeps into one
   profile batch), CU-slab-splits large grids, and routes the slabs
   through :class:`~repro.perf.pool.ShardedPool`'s affinity scheduler
   — the same ``(batch fingerprint, slab index)`` shard keys
   :func:`repro.perf.parallel.parallel_explore` uses, so the serving
   path warms the same per-worker caches the bulk path owns.
3. **Degraded single-point/solo** — a request that cannot coalesce
   (unique space, no pool, or a union that would waste more tensor
   cells than the cap allows) is evaluated as its own grid call inside
   the batch.

All three paths produce **bit-identical** answers to a direct serial
``evaluate_grid``/``explore`` call on the same request, because every
path evaluates through the same fused tensor kernel and grid
composition is bit-exact along the profile and CU axes (the PR-6
slab identity, extended here to union grids — gated by
``check_serve`` and ``tests/test_serve.py``).

Backpressure and deadlines are the core's job (bounded queue,
admission-time shed, dispatch-time expiry); this module feeds it the
real clock and executes its planned batches on a single worker thread
(``pool.run`` is blocking and non-reentrant).

Observability: ``serve.*`` counters and timing histograms in the
process registry (the adaptive policy reads them back), plus rolling
``serve.slo.*`` health gauges (:class:`~repro.obs.slo.SloTracker`:
window latency quantiles, shed/error rates, error-budget burn), and a
``serve`` section in run manifests while the service is open. When a
tracer is active every request gets a :class:`~repro.obs.trace.
SpanContext` at admission; its queue wait is recorded as a child span
at dispatch, a batch serving exactly one request parents its
``serve.batch`` span under that request (a multi-request batch links
the coalesced request span ids in its args), and the batch's pool
tasks ship child contexts to the workers — one request renders as one
connected admit → queue → batch → worker-slab span tree. An optional
:class:`~repro.obs.export.PeriodicSampler` runs as an asyncio task
while the service is open, streaming interval metric diffs to JSONL.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.config import DesignSpace
from repro.core.dse import DseResult, select_optima
from repro.core.node import GridEvaluation, NodeModel
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import PeriodicSampler
from repro.obs.slo import SloTracker
from repro.perf.evalcache import (
    EvalCache,
    SimCache,
    _digest,
    default_cache,
    default_sim_cache,
    evaluate_grid_cached,
    fingerprint_batch,
    fingerprint_model,
    fingerprint_profile,
    simulate_trace_cached,
)
from repro.perf.pool import PoolTask, ShardedPool, _picklable_exception
from repro.serve.adaptive import AdaptiveBatchPolicy
from repro.serve.batcher import BatcherCore, Outcome, PlannedBatch, Ticket
from repro.serve.requests import (
    FAILED,
    OK,
    SHUTDOWN,
    ExperimentRequest,
    PointRequest,
    PointResult,
    ServeResponse,
    SimulateRequest,
    SweepRequest,
)
from repro.workloads.kernels import KernelProfile, ProfileBatch

__all__ = ["EvalService", "serial_answer"]


# ----------------------------------------------------------------------
# Worker-side task functions (module-level: picklable for the pool).
# Every serve task returns ("ok", payload) / ("err", exception) instead
# of raising, so one bad request fails alone rather than aborting the
# whole pool.run batch.
# ----------------------------------------------------------------------
def _serve_eval_slab(model, batch, space, cu_lo, cu_hi):
    """One CU slab of a serve grid unit: ``(performance, power)``
    columns, bit-identical to the whole grid's."""
    try:
        grid = evaluate_grid_cached(model, batch, space, cu_lo, cu_hi)
        return ("ok", (grid.performance, grid.power))
    except BaseException as exc:  # contained per-unit
        return ("err", _picklable_exception(exc))


def _serve_run_experiment(name):
    """One registered paper artifact (lazy import: the registry pulls
    in every experiment module)."""
    try:
        from repro.experiments.registry import EXPERIMENTS

        return ("ok", EXPERIMENTS[name]())
    except BaseException as exc:
        return ("err", _picklable_exception(exc))


def _serve_simulate(trace, config, engine):
    """One SimCache-fronted trace simulation."""
    try:
        return ("ok", simulate_trace_cached(trace, config=config, engine=engine))
    except BaseException as exc:
        return ("err", _picklable_exception(exc))


# ----------------------------------------------------------------------
# Batch planning: tickets -> execution units
# ----------------------------------------------------------------------
@dataclass
class _GridUnit:
    """One merged ``evaluate_grid`` call and how to carve it back up."""

    tickets: list[Ticket]
    batch: ProfileBatch
    space: DesignSpace
    rows_of: Mapping[int, tuple[int, ...]]  # ticket.seq -> batch rows
    col_of: Mapping[int, int]  # ticket.seq -> flat grid column (points)
    coalesced: bool


def _point_units(
    tickets: Sequence[Ticket], waste_factor: float
) -> list[_GridUnit]:
    """Greedy union grouping of point requests under a waste cap.

    Each group's union grid evaluates ``P x (C*F*B)`` cells for
    ``len(group)`` requested cells; a ticket joins the first group (in
    creation order) whose union stays within ``waste_factor x
    requests``, else opens a new one. Deterministic: tickets arrive in
    seq order and groups are probed in creation order.
    """
    groups: list[dict] = []
    for ticket in tickets:
        req: PointRequest = ticket.request
        fp = fingerprint_profile(req.profile)
        placed = False
        for g in groups:
            cus = g["cus"] | {int(req.n_cus)}
            freqs = g["freqs"] | {float(req.gpu_freq)}
            bws = g["bws"] | {float(req.bandwidth)}
            profs = set(g["profiles"]) | {fp}
            cells = len(profs) * len(cus) * len(freqs) * len(bws)
            name_clash = any(
                p.name == req.profile.name and pfp != fp
                for pfp, p in g["profiles"].items()
            )
            if name_clash or cells > waste_factor * (len(g["tickets"]) + 1):
                continue
            g["cus"], g["freqs"], g["bws"] = cus, freqs, bws
            g["profiles"].setdefault(fp, req.profile)
            g["tickets"].append(ticket)
            placed = True
            break
        if not placed:
            groups.append(
                {
                    "cus": {int(req.n_cus)},
                    "freqs": {float(req.gpu_freq)},
                    "bws": {float(req.bandwidth)},
                    "profiles": {fp: req.profile},
                    "tickets": [ticket],
                }
            )

    units = []
    for g in groups:
        cus = tuple(sorted(g["cus"]))
        freqs = tuple(sorted(g["freqs"]))
        bws = tuple(sorted(g["bws"]))
        space = DesignSpace(
            cu_counts=cus, frequencies=freqs, bandwidths=bws
        )
        row_index = {fp: i for i, fp in enumerate(g["profiles"])}
        batch = ProfileBatch.from_profiles(list(g["profiles"].values()))
        rows_of, col_of = {}, {}
        n_f, n_b = len(freqs), len(bws)
        for ticket in g["tickets"]:
            req = ticket.request
            fp = fingerprint_profile(req.profile)
            rows_of[ticket.seq] = (row_index[fp],)
            col_of[ticket.seq] = (
                cus.index(int(req.n_cus)) * n_f * n_b
                + freqs.index(float(req.gpu_freq)) * n_b
                + bws.index(float(req.bandwidth))
            )
        units.append(
            _GridUnit(
                tickets=g["tickets"],
                batch=batch,
                space=space,
                rows_of=rows_of,
                col_of=col_of,
                coalesced=len(g["tickets"]) > 1,
            )
        )
    return units


def _sweep_units(tickets: Sequence[Ticket]) -> list[_GridUnit]:
    """Merge same-space sweeps into one profile batch (dedup by
    fingerprint; a profile-name clash between different profiles opens
    a new unit)."""
    groups: list[dict] = []
    for ticket in tickets:
        req: SweepRequest = ticket.request
        fps = [fingerprint_profile(p) for p in req.profiles]
        placed = False
        for g in groups:
            clash = any(
                p.name == prof.name and pfp != fp
                for prof, fp in zip(req.profiles, fps)
                for pfp, p in g["profiles"].items()
            )
            if clash:
                continue
            for prof, fp in zip(req.profiles, fps):
                g["profiles"].setdefault(fp, prof)
            g["tickets"].append(ticket)
            placed = True
            break
        if not placed:
            groups.append(
                {
                    "space": req.space,
                    "profiles": dict(zip(fps, req.profiles)),
                    "tickets": [ticket],
                }
            )

    units = []
    for g in groups:
        row_index = {fp: i for i, fp in enumerate(g["profiles"])}
        batch = ProfileBatch.from_profiles(list(g["profiles"].values()))
        rows_of = {}
        for ticket in g["tickets"]:
            req = ticket.request
            rows_of[ticket.seq] = tuple(
                row_index[fingerprint_profile(p)] for p in req.profiles
            )
        units.append(
            _GridUnit(
                tickets=g["tickets"],
                batch=batch,
                space=g["space"],
                rows_of=rows_of,
                col_of={},
                coalesced=len(g["tickets"]) > 1,
            )
        )
    return units


def _singleton_grid(
    profile: KernelProfile, space: DesignSpace, perf: float, power: float
) -> GridEvaluation:
    """A 1x1 GridEvaluation for seeding the cache with one extracted
    point (bit-identical to evaluating the singleton space directly)."""
    p = np.array([[perf]], dtype=float)
    w = np.array([[power]], dtype=float)
    return GridEvaluation(
        names=(profile.name,),
        space=space,
        performance=p,
        power=w,
        feasible=w <= space.power_budget,
    )


def serial_answer(request, model: NodeModel | None = None):
    """The oracle: answer *request* with a direct serial evaluation.

    Point requests evaluate their singleton grid through
    ``NodeModel.evaluate_grid`` (the tensor engine, matching
    ``explore``'s default); sweeps run ``select_optima`` on the grid;
    experiments call their registered function; simulations run the
    simulator directly. The equivalence tests compare every served
    response against this, bit for bit.
    """
    model = model or NodeModel()
    if isinstance(request, PointRequest):
        space = request.to_space()
        grid = model.evaluate_grid([request.profile], space)
        return PointResult(
            performance=float(grid.performance[0, 0]),
            node_power=float(grid.power[0, 0]),
            feasible=bool(grid.feasible[0, 0]),
        )
    if isinstance(request, SweepRequest):
        grid = model.evaluate_grid(list(request.profiles), request.space)
        performance = {n: grid.performance[i] for i, n in enumerate(grid.names)}
        power = {n: grid.power[i] for i, n in enumerate(grid.names)}
        feasible = {n: grid.feasible[i] for i, n in enumerate(grid.names)}
        return select_optima(request.space, performance, power, feasible)
    if isinstance(request, ExperimentRequest):
        from repro.experiments.registry import EXPERIMENTS

        return EXPERIMENTS[request.name]()
    if isinstance(request, SimulateRequest):
        from repro.sim.apu_sim import ApuSimulator

        sim = ApuSimulator(request.config, engine=request.engine or "array")
        return sim.run(request.trace)
    raise TypeError(f"unknown request type {type(request).__name__}")


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class EvalService:
    """Async front-end over the tensor engine, pool and caches.

    Parameters
    ----------
    model:
        The :class:`NodeModel` every evaluation uses (one service, one
        model — matching the pool's cache-affinity assumption).
    pool:
        Optional :class:`~repro.perf.pool.ShardedPool`. ``None``
        evaluates batches inline on the service's worker thread (still
        batched, coalesced and cache-fronted — just no slab fan-out).
    cache / sim_cache:
        Shared caches probed inline; default to the process-wide ones
        so the service sees sweeps other code already paid for.
    policy:
        Batch sizing policy; default is an
        :class:`~repro.serve.adaptive.AdaptiveBatchPolicy` over the
        process metrics registry.
    max_queue:
        Backpressure bound on queued requests.
    batch_window_s:
        How long the dispatcher waits after waking before planning, so
        concurrent arrivals can coalesce. Zero dispatches immediately.
    union_waste_factor:
        Cap on union-grid waste when coalescing points: a union may
        evaluate at most this many tensor cells per requested cell.
    slab_min_points:
        Minimum ``P x G`` cells before a grid unit is CU-slab-split
        across the pool (smaller units run as one task).
    clock:
        Injected monotonic clock (tests use a fake one).
    slo:
        Rolling-window health tracker; defaults to an
        :class:`~repro.obs.slo.SloTracker` on the service clock. Every
        drained outcome is recorded and the derived signals published
        as ``serve.slo.*`` gauges and in the manifest section.
    sampler:
        Optional :class:`~repro.obs.export.PeriodicSampler`; while the
        service is open it runs as an asyncio task streaming interval
        metric diffs (the caller owns ``stop()``).
    thermal_monitor:
        Optional :class:`~repro.thermal.transient.ThermalMonitor`.
        When given, every outcome drain opportunistically advances the
        simulated package up to the service clock (the monitor bounds
        its own catch-up work), so a serving process publishes live
        ``thermal.peak_c`` / ``thermal.dram_peak_c`` gauges alongside
        its SLO health, and ``stats()`` reports the simulated DRAM
        peak.
    """

    def __init__(
        self,
        *,
        model: NodeModel | None = None,
        pool: ShardedPool | None = None,
        cache: EvalCache | None = None,
        sim_cache: SimCache | None = None,
        policy: AdaptiveBatchPolicy | None = None,
        max_queue: int = 1024,
        batch_window_s: float = 0.002,
        union_waste_factor: float = 8.0,
        slab_min_points: int = 2048,
        clock=time.monotonic,
        manifest_name: str = "serve",
        slo: SloTracker | None = None,
        sampler: PeriodicSampler | None = None,
        thermal_monitor=None,
    ):
        self.model = model or NodeModel()
        self.pool = pool
        self.cache = cache if cache is not None else default_cache()
        self.sim_cache = (
            sim_cache if sim_cache is not None else default_sim_cache()
        )
        self.policy = policy if policy is not None else AdaptiveBatchPolicy()
        self.batch_window_s = float(batch_window_s)
        self.union_waste_factor = float(union_waste_factor)
        self.slab_min_points = int(slab_min_points)
        self.clock = clock
        self.manifest_name = manifest_name
        self.slo = slo if slo is not None else SloTracker(clock=clock)
        self.slo_publish_interval_s = 0.05
        self._slo_published_at = float("-inf")
        self.sampler = sampler
        self.thermal_monitor = thermal_monitor
        self._sampler_task: asyncio.Task | None = None
        # seq -> (request SpanContext, tracer-clock admit reading);
        # consumed at batch execution (queue-wait span) or outcome
        # drain (shed/expired/inline), whichever comes first.
        self._req_traces: dict[int, tuple] = {}
        self.core = BatcherCore(self.policy, max_queue=max_queue)
        self._model_fp = fingerprint_model(self.model)
        self._experiment_memo: dict[str, Any] = {}
        # Request-template -> EvalCache grid key. Fingerprinting a
        # batch dominates a warm inline hit, so the key is computed
        # once per template. Memo keys use object ids; the value pins
        # the objects so an id is never recycled under us.
        self._grid_key_memo: dict[tuple, tuple[Any, tuple]] = {}
        self._futures: dict[int, asyncio.Future] = {}
        self._wake: asyncio.Event | None = None
        self._close_event: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closing = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "EvalService":
        """Start the dispatcher; idempotent."""
        if self._started:
            return self
        self._started = True
        self._closing = False
        self._wake = asyncio.Event()
        self._close_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop(), name="repro-serve-dispatch"
        )
        if self.sampler is not None:
            self._sampler_task = asyncio.get_running_loop().create_task(
                self.sampler.run_async(), name="repro-serve-sampler"
            )
        obs_manifest.register_section(
            self.manifest_name, self.manifest_section
        )
        return self

    async def aclose(self) -> None:
        """Drain and stop: in-flight batches finish, queued requests
        resolve with :data:`SHUTDOWN`, and new submissions are refused."""
        if not self._started:
            return
        self._closing = True
        self._wake.set()
        self._close_event.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        self.core.flush(self.clock())
        self._drain_outcomes()
        # Anything still unresolved (shouldn't happen) fails loudly.
        for seq, future in list(self._futures.items()):
            if not future.done():
                future.set_result(
                    ServeResponse(status=SHUTDOWN, completed_at=self.clock())
                )
            del self._futures[seq]
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        obs_manifest.unregister_section(self.manifest_name)
        self._started = False

    async def __aenter__(self) -> "EvalService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    async def evaluate(
        self, profile: KernelProfile, n_cus: int, gpu_freq: float,
        bandwidth: float, **kwargs,
    ) -> ServeResponse:
        """Submit one :class:`PointRequest`."""
        return await self.submit(
            PointRequest(profile, n_cus, gpu_freq, bandwidth, **kwargs)
        )

    async def sweep(
        self, profiles: Sequence[KernelProfile], space: DesignSpace, **kwargs
    ) -> ServeResponse:
        """Submit one :class:`SweepRequest`."""
        return await self.submit(
            SweepRequest(tuple(profiles), space, **kwargs)
        )

    async def experiment(self, name: str, **kwargs) -> ServeResponse:
        """Submit one :class:`ExperimentRequest`."""
        return await self.submit(ExperimentRequest(name, **kwargs))

    async def simulate(
        self, trace, config=None, engine=None, **kwargs
    ) -> ServeResponse:
        """Submit one :class:`SimulateRequest`."""
        return await self.submit(
            SimulateRequest(trace, config, engine, **kwargs)
        )

    async def submit(self, request) -> ServeResponse:
        """Admit one request and await its terminal response."""
        if not self._started or self._closing:
            now = self.clock()
            return ServeResponse(
                status=SHUTDOWN, admitted_at=now, completed_at=now
            )
        kind = type(request).__name__
        obs_metrics.inc("serve.requests")
        tracer = obs_trace.active_tracer()
        # Explicitly a child of the root: concurrent submits interleave
        # on the event-loop thread, so the thread-local "current span"
        # could be another request's still-open span.
        req_ctx = (
            tracer.child_context(parent=tracer.root)
            if tracer is not None
            else None
        )
        with obs_trace.span(
            f"serve.{kind}", cat="serve", context=req_ctx,
            stream=request.stream,
        ):
            now = self.clock()
            try:
                inline = self._peek_inline(request)
            except BaseException:
                # An inline answer that fails to assemble (e.g. a sweep
                # with no feasible point) takes the batch path, which
                # reports the failure as a proper FAILED response.
                inline = None
            if inline is not None:
                obs_metrics.inc("serve.inline_hits")
                ticket = self.core.admit_completed(
                    request, inline, now, stream=request.stream
                )
            else:
                group_key = self._group_key(request)
                ticket = self.core.admit(
                    request,
                    now,
                    stream=request.stream,
                    deadline_s=request.deadline_s,
                    group_key=group_key,
                )
                if tracer is not None:
                    self._req_traces[ticket.seq] = (req_ctx, tracer.now())
            future = asyncio.get_running_loop().create_future()
            self._futures[ticket.seq] = future
            self._drain_outcomes()
            self._wake.set()
            return await future

    # ------------------------------------------------------------------
    # Inline cache path
    # ------------------------------------------------------------------
    def _request_grid_key(self, request) -> tuple:
        """The EvalCache key of the request's grid, memoized per
        template (same profile/space objects -> no re-fingerprinting)."""
        if isinstance(request, PointRequest):
            memo_key = (
                "point", id(request.profile), request.n_cus,
                request.gpu_freq, request.bandwidth,
                request.power_budget,
            )
            pin = request.profile
        else:  # SweepRequest
            memo_key = (
                "sweep", tuple(map(id, request.profiles)),
                id(request.space),
            )
            pin = (request.profiles, request.space)
        entry = self._grid_key_memo.get(memo_key)
        if entry is not None:
            return entry[1]
        if isinstance(request, PointRequest):
            key = self.cache.grid_key(
                self.model, [request.profile], request.to_space()
            )
        else:
            key = self.cache.grid_key(
                self.model, list(request.profiles), request.space
            )
        if len(self._grid_key_memo) >= 8192:
            self._grid_key_memo.clear()
        self._grid_key_memo[memo_key] = (pin, key)
        return key

    def _peek_inline(self, request) -> Any | None:
        """The request's answer if it is already cached, else None."""
        if isinstance(request, PointRequest):
            grid = self.cache.peek_grid_key(self._request_grid_key(request))
            if grid is None:
                return None
            return PointResult(
                performance=float(grid.performance[0, 0]),
                node_power=float(grid.power[0, 0]),
                feasible=bool(grid.feasible[0, 0]),
            )
        if isinstance(request, SweepRequest):
            grid = self.cache.peek_grid_key(self._request_grid_key(request))
            if grid is None:
                return None
            return _optima_from_grid(grid, request.space)
        if isinstance(request, ExperimentRequest):
            return self._experiment_memo.get(request.name)
        if isinstance(request, SimulateRequest):
            return self.sim_cache.peek_run(
                request.trace, request.config, request.engine
            )
        return None

    def _group_key(self, request) -> Any:
        if isinstance(request, PointRequest):
            return ("points", self._model_fp)
        if isinstance(request, SweepRequest):
            return ("sweep", self._model_fp, _digest(repr(request.space)))
        return None  # experiments / simulations run solo

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self._closing:
                # Finish nothing new: aclose() flushes what's queued.
                return
            if self.core.depth() == 0:
                await self._wake.wait()
                self._wake.clear()
                continue
            if self.batch_window_s > 0:
                # Interruptible coalescing window: aclose() must not
                # have to wait a full window out.
                try:
                    await asyncio.wait_for(
                        self._close_event.wait(), self.batch_window_s
                    )
                except asyncio.TimeoutError:
                    pass
                if self._closing:
                    return
            planned = self.core.plan(self.clock())
            self._drain_outcomes()
            if planned is None:
                continue
            started = self.clock()
            try:
                results = await loop.run_in_executor(
                    self._executor, self._execute_batch, planned
                )
            except BaseException as exc:
                status = (
                    SHUTDOWN
                    if isinstance(exc, RuntimeError)
                    and "shut down" in str(exc)
                    else FAILED
                )
                results = {
                    t.seq: (status, _picklable_exception(exc))
                    for t in planned.tickets
                }
            now = self.clock()
            n = len(planned.tickets)
            obs_metrics.observe("serve.batch_seconds", now - started)
            obs_metrics.inc("serve.batch_requests", n)
            obs_metrics.inc("serve.batches")
            self.policy.refresh()
            self.core.complete(planned.batch_id, results, now)
            self._drain_outcomes()

    def _drain_outcomes(self) -> None:
        """Resolve awaiting futures from the core's released outcomes."""
        drained = 0
        for outcome in self.core.poll_outcomes():
            seq = outcome.ticket.seq
            self._req_traces.pop(seq, None)
            future = self._futures.pop(seq, None)
            response = _response_from(outcome)
            if response.status != OK:
                obs_metrics.inc(f"serve.{response.status}")
            obs_metrics.observe(
                "serve.request_latency_seconds", response.latency_s
            )
            self.slo.record(response.latency_s, response.status)
            drained += 1
            if future is not None and not future.done():
                future.set_result(response)
        if drained:
            # Publication (rolling quantiles + gauge writes) is far
            # heavier than recording, so it is throttled: the health
            # gauges only need to be fresh on a human timescale.
            now = self.clock()
            if now - self._slo_published_at >= self.slo_publish_interval_s:
                self._slo_published_at = now
                self.slo.publish()
                if self.thermal_monitor is not None:
                    self.thermal_monitor.advance(now)

    # ------------------------------------------------------------------
    # Batch execution (worker thread)
    # ------------------------------------------------------------------
    def _execute_batch(
        self, planned: PlannedBatch
    ) -> dict[int, tuple[str, Any]]:
        """Evaluate one planned batch; returns seq -> (status, payload).

        Runs on the service's single worker thread: plans execution
        units, fans grid units out over the pool as CU slabs (or runs
        them inline), and carves per-request answers back out of the
        merged tensors.
        """
        tracer = obs_trace.active_tracer()
        batch_parent = None
        span_args: dict[str, Any] = {
            "requests": len(planned.tickets),
            "groups": len(planned.groups),
        }
        if tracer is not None:
            now_raw = tracer.now()
            req_ctxs = []
            for ticket in planned.tickets:
                entry = self._req_traces.pop(ticket.seq, None)
                if entry is None:
                    continue
                ctx, admitted = entry
                req_ctxs.append(ctx)
                # Queue wait (admission to dispatch, including the
                # coalescing window) as a child of the request span.
                tracer.record_span(
                    "serve.queue_wait", admitted, now_raw,
                    cat="serve", parent=ctx, seq=ticket.seq,
                )
            if len(req_ctxs) == 1:
                # A batch serving exactly one request is that request's
                # child: admit -> queue -> batch -> worker slabs render
                # as one connected flame.
                batch_parent = req_ctxs[0]
            elif req_ctxs:
                span_args["request_spans"] = [
                    c.span_id for c in req_ctxs
                ]
        with obs_trace.span(
            "serve.batch", cat="serve", parent=batch_parent, **span_args
        ):
            return self._execute_batch_inner(planned)

    def _execute_batch_inner(
        self, planned: PlannedBatch
    ) -> dict[int, tuple[str, Any]]:
        results: dict[int, tuple[str, Any]] = {}
        grid_units: list[_GridUnit] = []
        solo_tickets: list[Ticket] = []

        for key, tickets in planned.groups.items():
            kind = key[0] if isinstance(key, tuple) and key else None
            try:
                if kind == "points":
                    grid_units.extend(
                        _point_units(tickets, self.union_waste_factor)
                    )
                elif kind == "sweep":
                    grid_units.extend(_sweep_units(tickets))
                else:
                    solo_tickets.extend(tickets)
            except BaseException as exc:
                for t in tickets:
                    results[t.seq] = (FAILED, exc)

        tasks: list[PoolTask] = []
        task_slots: list[tuple[str, Any, int]] = []  # (kind, unit/ticket, part)
        inline_units: list[_GridUnit] = []
        unit_slabs: dict[int, list] = {}

        for ui, unit in enumerate(grid_units):
            n_cells = len(unit.batch) * unit.space.size
            n_cu = len(unit.space.cu_counts)
            if (
                self.pool is not None
                and n_cells >= self.slab_min_points
                and n_cu > 1
            ):
                batch_fp = fingerprint_batch(unit.batch)
                n_slabs = min(self.pool.n_shards, n_cu)
                bounds = np.linspace(0, n_cu, n_slabs + 1).astype(int)
                slabs = [
                    (int(lo), int(hi))
                    for lo, hi in zip(bounds[:-1], bounds[1:])
                    if hi > lo
                ]
                unit_slabs[ui] = slabs
                for si, (lo, hi) in enumerate(slabs):
                    dedup = _digest(
                        repr(
                            (
                                "serve-slab",
                                self._model_fp,
                                batch_fp,
                                repr(unit.space),
                                lo,
                                hi,
                            )
                        )
                    )
                    tasks.append(
                        PoolTask(
                            fn=_serve_eval_slab,
                            args=(self.model, unit.batch, unit.space, lo, hi),
                            shard_key=(batch_fp, si),
                            dedup_key=dedup,
                            label=f"serve-slab-{ui}-{si}",
                        )
                    )
                    task_slots.append(("slab", ui, si))
            elif self.pool is not None:
                tasks.append(
                    PoolTask(
                        fn=_serve_eval_slab,
                        args=(self.model, unit.batch, unit.space, 0, None),
                        shard_key=(fingerprint_batch(unit.batch), 0),
                        label=f"serve-grid-{ui}",
                    )
                )
                task_slots.append(("grid", ui, 0))
            else:
                inline_units.append(unit)

        for ticket in solo_tickets:
            req = ticket.request
            if isinstance(req, ExperimentRequest):
                fn, args = _serve_run_experiment, (req.name,)
                shard_key = ("serve-exp", req.name)
            elif isinstance(req, SimulateRequest):
                fn, args = _serve_simulate, (req.trace, req.config, req.engine)
                shard_key = ("serve-sim", ticket.seq)
            else:
                results[ticket.seq] = (
                    FAILED,
                    TypeError(
                        f"unknown request type {type(req).__name__}"
                    ),
                )
                continue
            if self.pool is not None:
                tasks.append(
                    PoolTask(
                        fn=fn, args=args, shard_key=shard_key,
                        label=f"serve-solo-{ticket.seq}",
                    )
                )
                task_slots.append(("solo", ticket, 0))
            else:
                outcome = fn(*args)
                self._finish_solo(ticket, outcome, results)

        if tasks:
            replies = self.pool.run(tasks)
            slab_parts: dict[int, dict[int, Any]] = {}
            for slot, reply in zip(task_slots, replies):
                kind, target, part = slot
                if kind == "solo":
                    self._finish_solo(target, reply, results)
                else:
                    slab_parts.setdefault(target, {})[part] = reply
            for ui, parts in slab_parts.items():
                unit = grid_units[ui]
                err = next(
                    (p[1] for p in parts.values() if p[0] == "err"), None
                )
                if err is not None:
                    for t in unit.tickets:
                        results[t.seq] = (FAILED, err)
                    continue
                ordered = [parts[i][1] for i in sorted(parts)]
                perf = np.concatenate([p[0] for p in ordered], axis=1)
                power = np.concatenate([p[1] for p in ordered], axis=1)
                grid = GridEvaluation(
                    names=tuple(unit.batch.names),
                    space=unit.space,
                    performance=perf,
                    power=power,
                    feasible=power <= unit.space.power_budget,
                )
                self._finish_grid_unit(unit, grid, results)

        for unit in inline_units:
            try:
                grid = self.cache.evaluate_grid(
                    self.model, unit.batch, unit.space
                )
            except BaseException as exc:
                for t in unit.tickets:
                    results[t.seq] = (FAILED, exc)
                continue
            self._finish_grid_unit(unit, grid, results)

        if self.pool is not None:
            obs_metrics.set_gauge(
                "serve.pool_worker_restarts",
                float(self.pool.stats().worker_restarts),
            )
        return results

    def _finish_solo(self, ticket: Ticket, reply, results) -> None:
        status, payload = reply
        if status == "ok":
            req = ticket.request
            if isinstance(req, ExperimentRequest):
                self._experiment_memo[req.name] = payload
            elif isinstance(req, SimulateRequest):
                # The worker computed (and worker-side cached) it; seed
                # the parent cache so repeats answer inline.
                self.sim_cache.seed_run(
                    req.trace, payload, req.config, req.engine
                )
            results[ticket.seq] = (OK, (payload, "solo"))
        else:
            results[ticket.seq] = (FAILED, payload)

    def _finish_grid_unit(
        self, unit: _GridUnit, grid: GridEvaluation, results
    ) -> None:
        """Carve per-request answers out of one evaluated grid unit and
        seed the cache so repeats hit inline."""
        path = "coalesced" if unit.coalesced else "degraded"
        for ticket in unit.tickets:
            req = ticket.request
            rows = unit.rows_of[ticket.seq]
            try:
                if isinstance(req, PointRequest):
                    col = unit.col_of[ticket.seq]
                    perf = float(grid.performance[rows[0], col])
                    power = float(grid.power[rows[0], col])
                    space = req.to_space()
                    feasible = bool(power <= space.power_budget)
                    value = PointResult(perf, power, feasible)
                    self.cache.seed_grid(
                        self.model,
                        [req.profile],
                        space,
                        _singleton_grid(req.profile, space, perf, power),
                    )
                else:  # SweepRequest
                    idx = np.asarray(rows, dtype=int)
                    sub = GridEvaluation(
                        names=tuple(p.name for p in req.profiles),
                        space=req.space,
                        performance=grid.performance[idx],
                        power=grid.power[idx],
                        feasible=grid.feasible[idx],
                    )
                    self.cache.seed_grid(
                        self.model, list(req.profiles), req.space, sub
                    )
                    value = _optima_from_grid(sub, req.space)
            except BaseException as exc:
                results[ticket.seq] = (FAILED, exc)
                continue
            results[ticket.seq] = (OK, (value, path))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Live serve counters plus the pool's restart count."""
        out = dict(self.core.stats)
        out["queue_depth"] = self.core.depth()
        out["inflight"] = self.core.inflight()
        out["batch_limit"] = self.policy.batch_limit()
        out["est_request_seconds"] = self.policy.est_request_seconds()
        if self.pool is not None:
            pool_stats = self.pool.stats()
            out["pool_worker_restarts"] = pool_stats.worker_restarts
            out["pool_tasks"] = pool_stats.tasks
            out["pool_steals"] = pool_stats.steals
        out["slo"] = self.slo.health()
        if self.thermal_monitor is not None:
            out["thermal_peak_c"] = self.thermal_monitor.peak_c
            out["thermal_dram_peak_c"] = self.thermal_monitor.layer_peak_c
        return out

    def manifest_section(self) -> dict:
        """The ``serve`` section run manifests embed while the service
        is open."""
        return self.stats()


def _response_from(outcome: Outcome) -> ServeResponse:
    """Translate one core outcome into the public response type."""
    return ServeResponse(
        status=outcome.status,
        value=outcome.value,
        error=outcome.error,
        path=outcome.path,
        batch_id=outcome.batch_id,
        admitted_at=outcome.ticket.admitted_at,
        completed_at=outcome.completed_at,
    )


def _optima_from_grid(grid: GridEvaluation, space: DesignSpace) -> DseResult:
    """``select_optima`` over one evaluated grid — the sweep answer."""
    performance = {n: grid.performance[i] for i, n in enumerate(grid.names)}
    power = {n: grid.power[i] for i, n in enumerate(grid.names)}
    feasible = {n: grid.feasible[i] for i, n in enumerate(grid.names)}
    return select_optima(space, performance, power, feasible)
