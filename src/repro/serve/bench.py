"""Serve benchmark: sustained throughput and tail latency under load.

Two measurements, matching the check_serve gate:

* **Capacity (closed-loop burst)** — submit every request at once and
  measure wall time; compared against the *naive baseline* that issues
  one ``pool.run`` round-trip per request with no coalescing, no
  slabs, no inline cache. The gate requires the warm batched service
  to sustain ≥5x the naive rate.
* **Open-loop rated load** — replay a Poisson arrival schedule at a
  configured rate and measure p50/p99 latency, shed and expiry counts.
  The gate requires p99 within the configured deadline with <1% shed.

``python -m repro serve`` / ``--serve-bench`` routes here.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.node import NodeModel
from repro.obs.export import PeriodicSampler
from repro.perf.evalcache import EvalCache, SimCache
from repro.perf.pool import PoolTask, ShardedPool
from repro.serve.adaptive import AdaptiveBatchPolicy
from repro.serve.requests import (
    OK,
    PointRequest,
    ServeResponse,
    SweepRequest,
)
from repro.serve.service import EvalService, _serve_eval_slab
from repro.serve.workload import Arrival, synthetic_arrivals

__all__ = ["ServeBenchReport", "run_arrivals", "run_serve_bench"]


@dataclass(frozen=True)
class ServeBenchReport:
    """Outcome of one serve benchmark run."""

    n_requests: int
    wall_s: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    ok: int
    shed: int
    expired: int
    failed: int
    inline_hits: int
    coalesced: int
    degraded: int
    solo: int
    batches: int
    pool_worker_restarts: int
    baseline_rps: float | None = None
    speedup: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        """Shed + expired share of all requests."""
        if not self.n_requests:
            return 0.0
        return (self.shed + self.expired) / self.n_requests

    def as_dict(self) -> dict:
        out = {
            k: getattr(self, k)
            for k in (
                "n_requests", "wall_s", "throughput_rps", "p50_ms",
                "p99_ms", "ok", "shed", "expired", "failed",
                "inline_hits", "coalesced", "degraded", "solo",
                "batches", "pool_worker_restarts", "baseline_rps",
                "speedup",
            )
        }
        out["shed_fraction"] = self.shed_fraction
        out.update(self.extra)
        return out

    def render(self) -> str:
        lines = [
            "serve bench:",
            f"  requests      {self.n_requests}  "
            f"(ok {self.ok}, shed {self.shed}, expired {self.expired}, "
            f"failed {self.failed})",
            f"  wall          {self.wall_s * 1e3:.1f} ms  "
            f"({self.throughput_rps:.0f} req/s)",
            f"  latency       p50 {self.p50_ms:.2f} ms, "
            f"p99 {self.p99_ms:.2f} ms",
            f"  paths         inline {self.inline_hits}, "
            f"coalesced {self.coalesced}, degraded {self.degraded}, "
            f"solo {self.solo}  ({self.batches} batches)",
        ]
        if self.baseline_rps is not None:
            lines.append(
                f"  naive base    {self.baseline_rps:.0f} req/s  "
                f"-> {self.speedup:.1f}x"
            )
        return "\n".join(lines)


async def _replay(
    service: EvalService, arrivals: Sequence[Arrival]
) -> list[ServeResponse]:
    """Submit *arrivals* on their open-loop schedule; returns responses
    in arrival order."""
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def one(arrival: Arrival) -> ServeResponse:
        delay = arrival.at - (loop.time() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        return await service.submit(arrival.request)

    return list(
        await asyncio.gather(*(one(a) for a in arrivals))
    )


def _report(
    arrivals: Sequence[Arrival],
    responses: Sequence[ServeResponse],
    wall_s: float,
    stats: dict,
) -> ServeBenchReport:
    latencies = [
        r.latency_s for r in responses if r.status == OK
    ]
    lat_ms = (
        np.asarray(latencies) * 1e3 if latencies else np.zeros(1)
    )
    paths = [r.path for r in responses]
    shed = sum(
        1 for r in responses if r.status.startswith("shed")
    )
    return ServeBenchReport(
        n_requests=len(arrivals),
        wall_s=wall_s,
        throughput_rps=len(arrivals) / wall_s if wall_s > 0 else 0.0,
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        ok=sum(1 for r in responses if r.status == OK),
        shed=shed,
        expired=sum(1 for r in responses if r.status == "expired"),
        failed=sum(1 for r in responses if r.status == "failed"),
        inline_hits=paths.count("inline-cache"),
        coalesced=paths.count("coalesced"),
        degraded=paths.count("degraded"),
        solo=paths.count("solo"),
        batches=int(stats.get("batches", 0)),
        pool_worker_restarts=int(stats.get("pool_worker_restarts", 0)),
    )


def run_arrivals(
    arrivals: Sequence[Arrival],
    *,
    model: NodeModel | None = None,
    pool: ShardedPool | None = None,
    cache: EvalCache | None = None,
    sim_cache: SimCache | None = None,
    policy: AdaptiveBatchPolicy | None = None,
    batch_window_s: float = 0.002,
    max_queue: int = 1024,
    sampler: PeriodicSampler | None = None,
) -> ServeBenchReport:
    """Run one arrival trace through a fresh service; returns a report.

    A *sampler* rides inside the service's event loop
    (``PeriodicSampler.run_async``) for the duration of the trace; the
    caller still owns its final ``stop()``.
    """

    async def main() -> ServeBenchReport:
        service = EvalService(
            model=model,
            pool=pool,
            cache=cache,
            sim_cache=sim_cache,
            policy=policy,
            batch_window_s=batch_window_s,
            max_queue=max_queue,
            sampler=sampler,
        )
        async with service:
            start = time.perf_counter()
            responses = await _replay(service, arrivals)
            wall = time.perf_counter() - start
            stats = service.stats()
        return _report(arrivals, responses, wall, stats)

    return asyncio.run(main())


def naive_baseline_rps(
    arrivals: Sequence[Arrival],
    pool: ShardedPool,
    model: NodeModel | None = None,
) -> float:
    """The contrast case: one blocking ``pool.run`` round-trip per
    request, no coalescing, no slab fan-out, no inline cache."""
    model = model or NodeModel()
    start = time.perf_counter()
    for arrival in arrivals:
        req = arrival.request
        if isinstance(req, PointRequest):
            space = req.to_space()
            task = PoolTask(
                fn=_serve_eval_slab,
                args=(model, [req.profile], space, 0, None),
                shard_key=("naive", req.profile.name),
                label="naive-point",
            )
        elif isinstance(req, SweepRequest):
            task = PoolTask(
                fn=_serve_eval_slab,
                args=(model, list(req.profiles), req.space, 0, None),
                shard_key=("naive", req.profiles[0].name),
                label="naive-sweep",
            )
        else:
            continue
        status, payload = pool.run([task])[0]
        if status == "err":
            raise payload
    wall = time.perf_counter() - start
    return len(arrivals) / wall if wall > 0 else 0.0


def run_serve_bench(
    *,
    seed: int = 0,
    n_requests: int = 200,
    rate_hz: float | None = None,
    shards: int = 2,
    deadline_s: float | None = 0.25,
    baseline: bool = False,
    warmup: bool = True,
    batch_window_s: float = 0.002,
    metrics_export: str | None = None,
) -> ServeBenchReport:
    """The full serve benchmark: warm cache pass (optional), measured
    pass, optional naive-baseline contrast on the same pool.

    ``rate_hz=None`` is the closed-loop capacity measurement; a rate
    makes it the open-loop tail-latency measurement. *metrics_export*
    streams interval metric diffs for the measured pass to a JSONL
    path (plus a final cumulative ``.prom`` snapshot next to it).
    """
    arrivals = synthetic_arrivals(
        seed, n_requests, rate_hz=rate_hz, deadline_s=deadline_s
    )
    cache = EvalCache()
    model = NodeModel()
    pool = ShardedPool(shards) if shards > 0 else None
    sampler: PeriodicSampler | None = None
    try:
        if warmup:
            # Warm pass on a private cache-less service state: same
            # requests, so worker-side EvalCaches and the service cache
            # hold every distinct template before measurement.
            run_arrivals(
                [Arrival(0.0, a.request) for a in arrivals],
                model=model,
                pool=pool,
                cache=cache,
                batch_window_s=batch_window_s,
            )
        if metrics_export:
            # Constructed after the warm pass: the sampler's baseline
            # snapshot scopes the export to the measured pass.
            sampler = PeriodicSampler(metrics_export, interval_s=0.25)
        report = run_arrivals(
            arrivals,
            model=model,
            pool=pool,
            cache=cache,
            batch_window_s=batch_window_s,
            sampler=sampler,
        )
        if baseline and pool is not None:
            import dataclasses

            base_rps = naive_baseline_rps(arrivals, pool, model)
            report = dataclasses.replace(
                report,
                baseline_rps=base_rps,
                speedup=(
                    report.throughput_rps / base_rps
                    if base_rps > 0
                    else None
                ),
            )
        return report
    finally:
        if sampler is not None:
            sampler.stop()
        if pool is not None:
            pool.shutdown()
