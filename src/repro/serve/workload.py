"""Seeded synthetic request traffic for the serving layer.

The check_serve gate, the serve benchmarks and the deterministic test
harness all need the same thing: an *open-loop* arrival process —
requests arrive on a schedule that does not care how fast the service
answers (the ExaNeSt lesson: closed-loop clients flatter a slow
server) — over a realistic mix of mostly-small, partly-repeating
requests. Everything here is derived from one ``numpy`` Generator
seeded by the caller, so a (seed, parameters) pair names the exact
trace forever.

The mix: point evaluations dominate (drawn Zipf-style from a template
pool, so some design points repeat and exercise the inline-cache
path), a minority of small sweeps over a handful of shared spaces, and
optional trace simulations. Arrival times are exponential
inter-arrivals at ``rate_hz`` (Poisson process), or all-at-zero for
closed-loop burst tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.config import DesignSpace
from repro.serve.requests import PointRequest, SimulateRequest, SweepRequest
from repro.workloads.catalog import APPLICATIONS

__all__ = ["Arrival", "synthetic_arrivals"]

_CU_AXIS = (192, 256, 320, 384)
_FREQ_AXIS = (0.8e9, 1.0e9, 1.2e9, 1.4e9)
_BW_AXIS = (1.0e12, 2.0e12, 3.0e12, 4.0e12)

_SWEEP_SPACES = (
    DesignSpace(
        cu_counts=(192, 256, 320, 384),
        frequencies=(0.8e9, 1.1e9, 1.4e9),
        bandwidths=(1.0e12, 3.0e12, 5.0e12),
    ),
    DesignSpace(
        cu_counts=(256, 320, 384),
        frequencies=(0.9e9, 1.2e9),
        bandwidths=(2.0e12, 4.0e12, 6.0e12),
    ),
)


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: submit *request* at time *at* (seconds
    from trace start)."""

    at: float
    request: Any


def synthetic_arrivals(
    seed: int,
    n_requests: int,
    *,
    rate_hz: float | None = None,
    point_fraction: float = 0.8,
    simulate_fraction: float = 0.0,
    n_templates: int = 32,
    n_streams: int = 4,
    deadline_s: float | None = 0.25,
    profiles: Sequence | None = None,
) -> list[Arrival]:
    """Generate a deterministic open-loop arrival trace.

    Parameters
    ----------
    seed / n_requests:
        The trace's identity and length.
    rate_hz:
        Mean arrival rate of the Poisson process; ``None`` puts every
        arrival at t=0 (closed-loop burst).
    point_fraction:
        Share of point requests; the remainder (minus
        *simulate_fraction*) is small sweeps.
    simulate_fraction:
        Share of trace-simulation requests (0 by default — they are
        orders of magnitude heavier than a point evaluate).
    n_templates:
        Size of the point-request template pool; templates are drawn
        Zipf-style (p ∝ 1/rank) so popular points repeat.
    n_streams:
        Requests round among ``stream-0..stream-{n-1}`` uniformly.
    deadline_s:
        Relative deadline stamped on every request (``None`` disables
        deadlines).
    profiles:
        Kernel profiles to draw from; defaults to the Table I catalog.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if not 0.0 <= point_fraction <= 1.0:
        raise ValueError("point_fraction must be in [0, 1]")
    if not 0.0 <= simulate_fraction <= 1.0 - point_fraction:
        raise ValueError(
            "simulate_fraction must fit alongside point_fraction"
        )
    rng = np.random.default_rng(seed)
    profiles = (
        list(profiles) if profiles is not None
        else list(APPLICATIONS.values())
    )

    # Point-request template pool, Zipf-weighted.
    templates = []
    for _ in range(max(1, n_templates)):
        templates.append(
            (
                profiles[int(rng.integers(len(profiles)))],
                int(_CU_AXIS[int(rng.integers(len(_CU_AXIS)))]),
                float(_FREQ_AXIS[int(rng.integers(len(_FREQ_AXIS)))]),
                float(_BW_AXIS[int(rng.integers(len(_BW_AXIS)))]),
            )
        )
    ranks = np.arange(1, len(templates) + 1, dtype=float)
    zipf = (1.0 / ranks) / (1.0 / ranks).sum()

    if rate_hz is not None and rate_hz > 0:
        gaps = rng.exponential(1.0 / rate_hz, size=n_requests)
        at = np.cumsum(gaps)
    else:
        at = np.zeros(n_requests)

    sim_trace = None
    arrivals: list[Arrival] = []
    for i in range(n_requests):
        stream = f"stream-{i % max(1, n_streams)}"
        draw = float(rng.random())
        if draw < point_fraction:
            profile, cus, freq, bw = templates[
                int(rng.choice(len(templates), p=zipf))
            ]
            request: Any = PointRequest(
                profile, cus, freq, bw,
                stream=stream, deadline_s=deadline_s,
            )
        elif draw < point_fraction + simulate_fraction:
            if sim_trace is None:
                from repro.workloads.traces import TraceGenerator

                sim_trace = TraceGenerator(
                    profiles[0], seed=seed
                ).generate(2000)
            request = SimulateRequest(
                sim_trace, stream=stream, deadline_s=deadline_s
            )
        else:
            space = _SWEEP_SPACES[int(rng.integers(len(_SWEEP_SPACES)))]
            count = int(rng.integers(1, min(4, len(profiles)) + 1))
            picks = rng.choice(len(profiles), size=count, replace=False)
            request = SweepRequest(
                tuple(profiles[int(p)] for p in sorted(picks)),
                space,
                stream=stream,
                deadline_s=deadline_s,
            )
        arrivals.append(Arrival(at=float(at[i]), request=request))
    return arrivals
