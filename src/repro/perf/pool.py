"""Persistent sharded worker pool with cache-affinity scheduling.

:func:`repro.perf.parallel.parallel_explore` historically created a
fresh ``ProcessPoolExecutor`` per call, so every DSE sweep paid process
spawn plus import cost and every per-worker
:class:`~repro.perf.evalcache.EvalCache` started cold. A
:class:`ShardedPool` is the long-lived alternative: its workers are
spawned once and reused across calls, and *deterministic shard routing*
pins each task to a fixed worker — a stable SHA-1 hash of the task's
``shard_key`` (for DSE tensor slabs: ``(profile-block fingerprint,
CU-slab index)``; for point-engine chunks: ``(profile fingerprint,
grid-chunk index)``) picks the shard, so a given worker always owns the
same slice of the profile×grid space and its warm cache entries are
never recomputed on another worker. The same locality lever work-stealing
runtimes and NUMA-aware schedulers pull to keep hot state resident.

Scheduling policies (``policy=``):

``"affinity"`` (default)
    Tasks go to their shard's worker. An idle worker may *steal* a
    batch — from the tail of the longest backlog — but only when its
    own shard queue is empty, so locality is surrendered exactly when
    the alternative is an idle core.
``"roundrobin"``
    Tasks are dealt to workers by submission index, ignoring shard
    keys. The fallback for workloads without meaningful keys; stealing
    behaves the same.

Mechanics worth knowing:

* **Batched submission.** Tasks travel in batches (one pipe message per
  batch, ``batch_size`` tasks each), cutting IPC round-trips; a worker
  holds at most one batch in flight, which is what keeps stealing and
  death-recovery simple.
* **Result-payload dedup.** A task may carry a ``dedup_key`` — a stable
  digest that uniquely identifies its (pure) result. The parent keeps
  an LRU of previously shipped payloads; when it already holds a key's
  payload the worker executes the task (keeping its cache warm and its
  counters honest) but replies with a tiny reference instead of
  re-pickling megabytes of arrays. Warm repeat sweeps become almost
  pure routing.
* **Restart on death.** A worker that dies (crash, ``os._exit``, OOM
  kill) is respawned and its in-flight batch is re-dispatched to the
  replacement; results stay bit-identical because tasks are pure. A
  per-run restart budget turns a task that kills every worker into an
  error instead of a spawn loop.
* **Observability.** The pool publishes ``pool.tasks``,
  ``pool.batches``, ``pool.steals`` and ``pool.worker_restarts``
  counters; each worker ships a per-batch
  :class:`~repro.obs.metrics.MetricsSnapshot` delta that the parent
  merges (per-shard totals via :meth:`ShardedPool.shard_snapshots`,
  per-shard cache hit rates via :meth:`shard_cache_hit_rates`), worker
  ``proc.rss_bytes`` gauges are republished as
  ``pool.worker<N>.rss_bytes``, and when a tracer is active each task
  envelope ships a :class:`~repro.obs.trace.SpanContext` (a child of
  the run's ``pool.run`` span, allocated in submission order) under
  which the worker opens its task span — the buffered worker events
  merge back into the parent's Chrome trace as one connected
  parent→worker span tree.

Workers default to the ``fork`` start method where available (a forked
worker shares the parent's already-imported module graph, so spawning
is milliseconds, not seconds); pass ``mp_context="spawn"`` for fully
isolated workers. Shutdown is explicit (:meth:`shutdown`, or use the
pool as a context manager) with a ``weakref.finalize`` safety net that
also runs at interpreter exit.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing as mp
import os
import pickle
import weakref
from collections import OrderedDict, deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Mapping, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsSnapshot
from repro.obs.proc import publish_memory_gauges

__all__ = ["POLICIES", "PoolStats", "PoolTask", "ShardedPool", "stable_shard"]

POLICIES = ("affinity", "roundrobin")
"""Valid scheduling policies (the first is the default)."""

_WAIT_TIMEOUT_S = 0.25
"""Upper bound on how long a dispatch-loop wait blocks before it
re-checks worker liveness (deaths usually wake it via the sentinel)."""


def stable_shard(shard_key: Any, n_shards: int) -> int:
    """Deterministic shard index for *shard_key*.

    SHA-1 over ``repr(shard_key)`` — stable across processes and runs
    (unlike the salted builtin ``hash``), which is what makes a task's
    owner worker a property of the task, not of the session.
    """
    digest = hashlib.sha1(repr(shard_key).encode()).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


@dataclass(frozen=True)
class PoolTask:
    """One unit of pool work.

    Attributes
    ----------
    fn:
        Module-level (picklable) callable executed in the worker.
    args / kwargs:
        Its arguments (picklable).
    shard_key:
        Any value; equal keys always land on the same worker under the
        affinity policy. ``None`` falls back to round-robin placement
        for that task.
    dedup_key:
        Optional stable digest uniquely identifying the task's result
        (tasks must be pure for this to be sound). When the parent
        already holds the payload, the worker's reply omits it.
    label:
        Span name / diagnostics label (defaults to the function name).
    """

    fn: Callable
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    shard_key: Any = None
    dedup_key: str | None = None
    label: str = ""


@dataclass(frozen=True)
class PoolStats:
    """Lifetime counters of one :class:`ShardedPool`."""

    tasks: int = 0
    batches: int = 0
    steals: int = 0
    worker_restarts: int = 0


def _picklable_exception(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(worker_id: int, conn) -> None:
    """Worker loop: receive a batch, run its tasks, reply.

    Replies carry per-task ``(index, kind, payload)`` rows — ``kind`` is
    ``"value"`` (payload attached), ``"ref"`` (parent already holds the
    payload under the task's dedup key) or ``"error"`` (payload is the
    exception) — plus, when requested, the worker's metrics delta for
    the batch and the buffered trace events of the per-task spans.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        batch_id, items, want_metrics, want_trace = message
        registry = obs_metrics.default_registry()
        before = registry.snapshot() if want_metrics else None
        tracer = obs_trace.Tracer() if want_trace else None
        tracer_cm = (
            obs_trace.trace(tracer=tracer) if want_trace else nullcontext()
        )
        replies = []
        with tracer_cm:
            for index, fn, args, kwargs, label, skip_payload, ctx in items:
                span_name = label or getattr(fn, "__name__", "task")
                try:
                    with obs_trace.span(
                        span_name, cat="pool", context=ctx, worker=worker_id
                    ):
                        value = fn(*args, **(kwargs or {}))
                except BaseException as exc:
                    replies.append((index, "error", _picklable_exception(exc)))
                else:
                    if skip_payload:
                        replies.append((index, "ref", None))
                    else:
                        replies.append((index, "value", value))
        delta = None
        if want_metrics:
            publish_memory_gauges(registry)
            delta = registry.snapshot().diff(before)
        events = tracer.events if tracer is not None else None
        try:
            conn.send(("done", worker_id, batch_id, replies, delta, events))
        except (BrokenPipeError, OSError):
            break


@dataclass
class _Worker:
    """Parent-side handle on one worker process."""

    index: int
    process: Any
    conn: Any


def _shutdown_workers(registry: dict) -> None:
    """Finalizer body: ask every live worker to exit, then make sure.

    Module-level (not a bound method) so ``weakref.finalize`` holds no
    reference back to the pool.
    """
    for process, conn in list(registry.values()):
        try:
            conn.send(None)
        except Exception:
            pass
    for process, conn in list(registry.values()):
        process.join(timeout=2.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)
        try:
            conn.close()
        except Exception:
            pass
    registry.clear()


class ShardedPool:
    """Long-lived pool of shard-affine worker processes.

    Parameters
    ----------
    n_shards:
        Worker count; shards map 1:1 onto workers. Defaults to
        ``min(cpu_count, 8)``.
    policy:
        ``"affinity"`` (stable-hash routing, steal when idle) or
        ``"roundrobin"``.
    batch_size:
        Tasks per pipe message. ``None`` sizes batches per run as
        roughly a quarter of each worker's fair share, so every worker
        gets several scheduling opportunities (steals need a backlog).
    mp_context:
        A multiprocessing context or start-method name. Defaults to
        ``fork`` where available (fast spawn, inherits the warmed
        import graph), else the platform default.
    result_cache_size:
        LRU bound on the parent's dedup payload store.
    """

    def __init__(
        self,
        n_shards: int | None = None,
        *,
        policy: str = "affinity",
        batch_size: int | None = None,
        mp_context=None,
        result_cache_size: int = 512,
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        if n_shards is None:
            n_shards = max(1, min(os.cpu_count() or 1, 8))
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive or None")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be non-negative")
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = mp.get_context(
                "fork" if "fork" in methods else None
            )
        elif isinstance(mp_context, str):
            mp_context = mp.get_context(mp_context)
        self.n_shards = int(n_shards)
        self.policy = policy
        self.batch_size = batch_size
        self._ctx = mp_context
        self._payload_cap = int(result_cache_size)
        self._payloads: OrderedDict[str, Any] = OrderedDict()
        self._workers: list[_Worker | None] = [None] * self.n_shards
        self._shard_totals = [
            MetricsSnapshot.empty() for _ in range(self.n_shards)
        ]
        self._tasks = 0
        self._batches = 0
        self._steals = 0
        self._restarts = 0
        self._last_assignment = [0] * self.n_shards
        self._closed = False
        self._running = False
        # index -> (process, conn), kept in sync by _spawn; the
        # finalizer tears down whatever the registry holds at exit.
        self._proc_registry: dict[int, tuple] = {}
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._proc_registry
        )
        for index in range(self.n_shards):
            self._spawn(index)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, child_conn),
            daemon=True,
            name=f"repro-pool-{index}",
        )
        process.start()
        child_conn.close()
        worker = _Worker(index, process, parent_conn)
        self._workers[index] = worker
        self._proc_registry[index] = (process, parent_conn)
        return worker

    def _restart(self, index: int) -> _Worker:
        """Replace a dead (or doomed) worker; counts as a restart.

        Refuses once the pool is closed: the ``weakref.finalize``
        teardown has already run (it runs at most once), so a worker
        respawned after shutdown would never be cleaned up — and the
        run that wanted it must fail out instead of silently leaking
        processes and hanging on futures nobody will answer.
        """
        if self._closed:
            raise RuntimeError(
                "pool was shut down while a run was in flight"
            )
        old = self._workers[index]
        if old is not None:
            if old.process.is_alive():
                old.process.terminate()
            old.process.join(timeout=2.0)
            try:
                old.conn.close()
            except OSError:
                pass
        self._restarts += 1
        obs_metrics.inc("pool.worker_restarts")
        return self._spawn(index)

    def _ensure_alive(self, index: int) -> _Worker:
        worker = self._workers[index]
        if worker is None or not worker.process.is_alive():
            worker = self._restart(index)
        return worker

    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker (for death/restart testing); the pool
        respawns it the next time it has work for that shard."""
        worker = self._workers[index]
        if worker is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def shutdown(self) -> None:
        """Stop every worker and close the pool (idempotent).

        Safe to call while a :meth:`run` is in flight (e.g. from
        another thread, as the serving layer's close path can): the
        run fails promptly with a ``RuntimeError`` instead of hanging
        on — or leaking replacement workers for — batches that will
        never be answered.
        """
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "ShardedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_for(self, shard_key: Any) -> int:
        """The worker that owns *shard_key* under the affinity policy."""
        return stable_shard(shard_key, self.n_shards)

    def stats(self) -> PoolStats:
        """Lifetime task/batch/steal/restart counters."""
        return PoolStats(
            tasks=self._tasks,
            batches=self._batches,
            steals=self._steals,
            worker_restarts=self._restarts,
        )

    def last_shard_task_counts(self) -> list[int]:
        """Per-shard task counts of the most recent run's initial
        assignment (before any stealing) — how evenly the shard keys
        spread the work, independent of timing noise."""
        return list(self._last_assignment)

    def assignment_balance(self) -> float:
        """Fair share over the largest shard load of the last run.

        1.0 is a perfectly even key spread; ``check_fleet`` gates its
        deterministic shard-scaling efficiency on this (stealing can
        only improve on it at runtime).
        """
        counts = self._last_assignment
        peak = max(counts, default=0)
        if peak == 0:
            return 1.0
        return (sum(counts) / len(counts)) / peak

    def shard_snapshots(self) -> list[MetricsSnapshot]:
        """Per-shard accumulated worker metrics deltas."""
        return list(self._shard_totals)

    def merged_snapshot(self) -> MetricsSnapshot:
        """All shards' worker metrics merged into one snapshot."""
        merged = MetricsSnapshot.empty()
        for snap in self._shard_totals:
            merged = merged.merge(snap)
        return merged

    def shard_cache_hit_rates(
        self, prefix: str = "cache.eval"
    ) -> list[float]:
        """Per-shard hit rate of one cache namespace (0.0 when idle)."""
        rates = []
        for snap in self._shard_totals:
            hits = snap.counter(f"{prefix}.hits") + snap.counter(
                f"{prefix}.spill_hits"
            )
            lookups = hits + snap.counter(f"{prefix}.misses")
            rates.append(hits / lookups if lookups else 0.0)
        return rates

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[PoolTask],
        *,
        metrics: bool = False,
        batch_size: int | None = None,
    ) -> list | tuple[list, MetricsSnapshot]:
        """Execute *tasks*; returns their results in submission order.

        With ``metrics=True`` returns ``(results, snapshot)`` where the
        snapshot is the merge of every worker's per-batch registry delta
        for this run — the same contract as
        :func:`repro.perf.parallel.parallel_explore`.

        The first task exception (in submission order) is re-raised
        after in-flight batches drain; the pool stays usable.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        if self._running:
            raise RuntimeError("pool.run is not reentrant")
        tasks = list(tasks)
        if not tasks:
            return ([], MetricsSnapshot.empty()) if metrics else []
        self._running = True
        try:
            return self._run(tasks, metrics, batch_size or self.batch_size)
        finally:
            self._running = False

    def _run(
        self, tasks: list[PoolTask], metrics: bool, batch_size: int | None
    ):
        n_tasks = len(tasks)
        want_metrics = metrics or obs_metrics.metrics_enabled()
        tracer = obs_trace.active_tracer()
        want_trace = tracer is not None
        # Trace contexts: one "pool.run" span owns the whole call, each
        # task envelope ships a child context allocated in submission
        # order (so span ids are deterministic regardless of stealing);
        # workers open their task span under the shipped id.
        run_ctx = None
        task_ctxs: list = [None] * n_tasks
        run_start = 0.0
        if tracer is not None:
            run_ctx = tracer.child_context()
            task_ctxs = [
                tracer.child_context(parent=run_ctx) for _ in range(n_tasks)
            ]
            run_start = tracer.now()
        if batch_size is None:
            fair_share = -(-n_tasks // self.n_shards)
            batch_size = max(1, -(-fair_share // 4))

        # --- shard assignment -----------------------------------------
        queues: list[deque[int]] = [deque() for _ in range(self.n_shards)]
        for index, task in enumerate(tasks):
            if self.policy == "roundrobin" or task.shard_key is None:
                shard = index % self.n_shards
            else:
                shard = stable_shard(task.shard_key, self.n_shards)
            queues[shard].append(index)
        self._last_assignment = [len(q) for q in queues]

        # --- payload dedup: pin known payloads for the whole run ------
        pinned: dict[int, Any] = {}
        for index, task in enumerate(tasks):
            if task.dedup_key is not None and task.dedup_key in self._payloads:
                self._payloads.move_to_end(task.dedup_key)
                pinned[index] = self._payloads[task.dedup_key]

        self._tasks += n_tasks
        obs_metrics.inc("pool.tasks", n_tasks)

        results: list[Any] = [None] * n_tasks
        done = [False] * n_tasks
        completed = 0
        errors: list[tuple[int, BaseException]] = []
        merged_delta = MetricsSnapshot.empty()
        inflight: dict[int, tuple[int, list[int]]] = {}
        batch_ids = itertools.count()
        restart_budget = 2 * self.n_shards + 3

        def take_batch(worker_index: int) -> tuple[list[int], bool]:
            queue = queues[worker_index]
            if queue:
                batch = [
                    queue.popleft()
                    for _ in range(min(batch_size, len(queue)))
                ]
                return batch, False
            # Own queue empty: steal from the tail of the longest
            # backlog (lowest shard index on ties, deterministically).
            victim = max(
                range(self.n_shards),
                key=lambda s: (len(queues[s]), -s),
            )
            queue = queues[victim]
            if not queue:
                return [], False
            batch = [
                queue.pop() for _ in range(min(batch_size, len(queue)))
            ]
            batch.reverse()
            return batch, True

        def dispatch(worker_index: int) -> None:
            """Hand the next batch (own shard first, else stolen) to the
            worker, restarting it first if it died while idle."""
            while True:
                batch, stolen = take_batch(worker_index)
                if not batch:
                    return
                worker = self._ensure_alive(worker_index)
                batch_id = next(batch_ids)
                items = [
                    (
                        index,
                        tasks[index].fn,
                        tuple(tasks[index].args),
                        dict(tasks[index].kwargs)
                        if tasks[index].kwargs
                        else None,
                        tasks[index].label,
                        index in pinned,
                        task_ctxs[index],
                    )
                    for index in batch
                ]
                try:
                    worker.conn.send(
                        (batch_id, items, want_metrics, want_trace)
                    )
                except (BrokenPipeError, OSError):
                    # Died between the liveness check and the send: put
                    # the batch back (front, preserving order) and loop.
                    queues[worker_index].extendleft(reversed(batch))
                    self._restart(worker_index)
                    continue
                inflight[worker_index] = (batch_id, batch)
                self._batches += 1
                obs_metrics.inc("pool.batches")
                if stolen:
                    self._steals += len(batch)
                    obs_metrics.inc("pool.steals", len(batch))
                return

        def on_reply(worker_index: int, message) -> None:
            nonlocal completed, merged_delta
            expected_id, _batch = inflight.pop(worker_index, (None, None))
            _kind, _wid, batch_id, replies, delta, events = message
            if batch_id != expected_id:
                return  # stale reply from a pre-restart batch
            for index, reply_kind, payload in replies:
                if done[index]:
                    continue
                done[index] = True
                completed += 1
                if reply_kind == "error":
                    errors.append((index, payload))
                    continue
                value = pinned[index] if reply_kind == "ref" else payload
                results[index] = value
                dedup_key = tasks[index].dedup_key
                if (
                    dedup_key is not None
                    and reply_kind == "value"
                    and self._payload_cap > 0
                ):
                    self._payloads[dedup_key] = value
                    self._payloads.move_to_end(dedup_key)
                    while len(self._payloads) > self._payload_cap:
                        self._payloads.popitem(last=False)
            if delta is not None:
                self._shard_totals[worker_index] = self._shard_totals[
                    worker_index
                ].merge(delta)
                merged_delta = merged_delta.merge(delta)
                for gauge_name, gauge_value in delta.gauges.items():
                    if gauge_name.startswith("proc."):
                        obs_metrics.set_gauge(
                            f"pool.worker{worker_index}."
                            f"{gauge_name[len('proc.'):]}",
                            gauge_value,
                        )
            if events:
                tracer = obs_trace.active_tracer()
                if tracer is not None:
                    tracer.extend(events)

        def on_death(worker_index: int) -> None:
            """Requeue the lost batch at the front of the dead worker's
            own queue and respawn, so the replacement re-runs it."""
            _batch_id, batch = inflight.pop(worker_index, (None, []))
            if batch:
                queues[worker_index].extendleft(reversed(batch))
            if self._restarts - restarts_at_start >= restart_budget:
                raise RuntimeError(
                    f"pool worker {worker_index} died repeatedly "
                    f"({restart_budget} restarts this run); giving up"
                )
            self._restart(worker_index)

        restarts_at_start = self._restarts
        while True:
            if self._closed:
                # shutdown() raced this run: every worker is dead or
                # dying and the finalizer will not run again, so bail
                # out promptly instead of spinning on requeue/respawn.
                remaining = n_tasks - completed
                raise RuntimeError(
                    f"pool was shut down while a run was in flight "
                    f"({remaining} of {n_tasks} tasks unfinished)"
                )
            for worker_index in range(self.n_shards):
                if worker_index not in inflight:
                    dispatch(worker_index)
            if completed >= n_tasks and not inflight:
                break
            if not inflight:
                # Nothing running and nothing dispatchable: every
                # remaining task is lost (cannot happen with a healthy
                # requeue path; guard against an infinite spin).
                raise RuntimeError("pool stalled with unfinished tasks")
            waitables = []
            by_waitable = {}
            for worker_index, _ in inflight.items():
                worker = self._workers[worker_index]
                waitables.append(worker.conn)
                by_waitable[worker.conn] = worker_index
                waitables.append(worker.process.sentinel)
                by_waitable[worker.process.sentinel] = worker_index
            mp_connection.wait(waitables, timeout=_WAIT_TIMEOUT_S)
            for worker_index in list(inflight):
                worker = self._workers[worker_index]
                try:
                    has_reply = worker.conn.poll()
                except (OSError, ValueError):
                    has_reply = False
                if has_reply:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        on_death(worker_index)
                        continue
                    on_reply(worker_index, message)
                elif not worker.process.is_alive():
                    on_death(worker_index)

        if tracer is not None:
            tracer.record_span(
                "pool.run",
                run_start,
                tracer.now(),
                cat="pool",
                context=run_ctx,
                tasks=n_tasks,
            )
        if errors:
            errors.sort(key=lambda pair: pair[0])
            index, exc = errors[0]
            raise RuntimeError(
                f"pool task {index} "
                f"({tasks[index].label or tasks[index].fn.__name__}) failed"
            ) from exc
        if metrics:
            return results, merged_delta
        return results
